"""Arrival processes for request streams.

Every source yields strictly increasing arrival times until a horizon.
Poisson is the default (and what the analytic queueing terms assume); MMPP
adds burstiness for robustness experiments; deterministic and trace sources
support closed-form sanity checks and replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.rng import SeedLike, as_generator


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson process with mean rate ``rate`` (req/s)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"Poisson rate must be positive, got {self.rate}")

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        rng = as_generator(seed)
        # draw in blocks until past the horizon
        out = []
        t = 0.0
        block = max(16, int(self.rate * horizon_s * 1.2) + 16)
        while t < horizon_s:
            gaps = rng.exponential(1.0 / self.rate, size=block)
            times = t + np.cumsum(gaps)
            out.append(times)
            t = float(times[-1])
        arr = np.concatenate(out)
        return arr[arr < horizon_s]


@dataclass(frozen=True)
class DeterministicArrivals:
    """Evenly spaced arrivals (period = 1/rate), starting at one period."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        period = 1.0 / self.rate
        n = int(np.floor(horizon_s / period))
        times = np.arange(1, n + 1) * period
        return times[times < horizon_s]  # arrivals strictly before the horizon


@dataclass(frozen=True)
class MMPPArrivals:
    """2-state Markov-modulated Poisson process (bursty arrivals).

    Alternates between a low-rate and a high-rate phase with exponential
    holding times; overall mean rate is the holding-time-weighted average.
    """

    low_rate: float
    high_rate: float
    mean_low_s: float = 5.0
    mean_high_s: float = 1.0

    def __post_init__(self) -> None:
        if self.low_rate <= 0 or self.high_rate <= 0:
            raise ConfigError("MMPP rates must be positive")
        if self.high_rate < self.low_rate:
            raise ConfigError("high_rate must be >= low_rate")
        if self.mean_low_s <= 0 or self.mean_high_s <= 0:
            raise ConfigError("MMPP holding times must be positive")

    @property
    def mean_rate(self) -> float:
        total = self.mean_low_s + self.mean_high_s
        return (self.low_rate * self.mean_low_s + self.high_rate * self.mean_high_s) / total

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        rng = as_generator(seed)
        out = []
        t = 0.0
        high = bool(rng.integers(2))
        while t < horizon_s:
            hold = float(
                rng.exponential(self.mean_high_s if high else self.mean_low_s)
            )
            phase_end = min(t + hold, horizon_s)
            rate = self.high_rate if high else self.low_rate
            tt = t
            while True:
                tt += float(rng.exponential(1.0 / rate))
                if tt >= phase_end:
                    break
                out.append(tt)
            t = phase_end
            high = not high
        return np.array(out)


def arrival_times(
    rate: float,
    horizon_s: float,
    arrival: str = "poisson",
    burst_factor: float = 4.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Arrival-time vector for one request stream of mean ``rate``.

    Shared by the event-loop and fast-path simulators so both consume the
    exact same draws from ``seed``.  ``arrival`` selects the process; for
    ``"mmpp"`` the low rate is solved so the long-run mean matches ``rate``
    at a high phase of ``burst_factor × rate``.
    """
    if arrival == "poisson":
        return PoissonArrivals(rate).generate(horizon_s, seed)
    if arrival == "deterministic":
        return DeterministicArrivals(rate).generate(horizon_s, seed)
    if arrival != "mmpp":
        raise ConfigError(f"unknown arrival process {arrival!r}")
    high = rate * burst_factor
    mean_low_s, mean_high_s = 5.0, 1.0
    low = (rate * (mean_low_s + mean_high_s) - high * mean_high_s) / mean_low_s
    low = max(low, rate * 0.05)
    return MMPPArrivals(low, high, mean_low_s, mean_high_s).generate(horizon_s, seed)


@dataclass(frozen=True)
class TraceArrivals:
    """Replay explicit arrival timestamps (strictly increasing)."""

    times: Sequence[float]

    def __post_init__(self) -> None:
        arr = np.asarray(self.times, dtype=float)
        if arr.ndim != 1:
            raise ConfigError("trace must be 1-D")
        if arr.size and (np.any(arr < 0) or np.any(np.diff(arr) <= 0)):
            raise ConfigError("trace times must be non-negative, strictly increasing")

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        arr = np.asarray(self.times, dtype=float)
        return arr[arr < horizon_s]
