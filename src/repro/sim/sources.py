"""Arrival processes for request streams.

Every source yields strictly increasing arrival times until a horizon.
Poisson is the default (and what the analytic queueing terms assume); MMPP
adds burstiness for robustness experiments; deterministic and trace sources
support closed-form sanity checks and replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.rng import SeedLike, as_generator


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson process with mean rate ``rate`` (req/s)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"Poisson rate must be positive, got {self.rate}")

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        rng = as_generator(seed)
        # draw in blocks until past the horizon
        out = []
        t = 0.0
        block = max(16, int(self.rate * horizon_s * 1.2) + 16)
        while t < horizon_s:
            gaps = rng.exponential(1.0 / self.rate, size=block)
            times = t + np.cumsum(gaps)
            out.append(times)
            t = float(times[-1])
        arr = np.concatenate(out)
        return arr[arr < horizon_s]


@dataclass(frozen=True)
class DeterministicArrivals:
    """Evenly spaced arrivals (period = 1/rate), starting at one period."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        period = 1.0 / self.rate
        n = int(np.floor(horizon_s / period))
        times = np.arange(1, n + 1) * period
        return times[times < horizon_s]  # arrivals strictly before the horizon


@dataclass(frozen=True)
class MMPPArrivals:
    """2-state Markov-modulated Poisson process (bursty arrivals).

    Alternates between a low-rate and a high-rate phase with exponential
    holding times; overall mean rate is the holding-time-weighted average.
    """

    low_rate: float
    high_rate: float
    mean_low_s: float = 5.0
    mean_high_s: float = 1.0

    def __post_init__(self) -> None:
        if self.low_rate <= 0 or self.high_rate <= 0:
            raise ConfigError("MMPP rates must be positive")
        if self.high_rate < self.low_rate:
            raise ConfigError("high_rate must be >= low_rate")
        if self.mean_low_s <= 0 or self.mean_high_s <= 0:
            raise ConfigError("MMPP holding times must be positive")

    @property
    def mean_rate(self) -> float:
        total = self.mean_low_s + self.mean_high_s
        return (self.low_rate * self.mean_low_s + self.high_rate * self.mean_high_s) / total

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        rng = as_generator(seed)
        out = []
        t = 0.0
        high = bool(rng.integers(2))
        while t < horizon_s:
            hold = float(
                rng.exponential(self.mean_high_s if high else self.mean_low_s)
            )
            phase_end = min(t + hold, horizon_s)
            rate = self.high_rate if high else self.low_rate
            tt = t
            while True:
                tt += float(rng.exponential(1.0 / rate))
                if tt >= phase_end:
                    break
                out.append(tt)
            t = phase_end
            high = not high
        return np.array(out)


def arrival_times(
    rate: float,
    horizon_s: float,
    arrival: str = "poisson",
    burst_factor: float = 4.0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Arrival-time vector for one request stream of mean ``rate``.

    Shared by the event-loop and fast-path simulators so both consume the
    exact same draws from ``seed``.  ``arrival`` selects the process; for
    ``"mmpp"`` the low rate is solved so the long-run mean matches ``rate``
    at a high phase of ``burst_factor × rate``.
    """
    if arrival == "poisson":
        return PoissonArrivals(rate).generate(horizon_s, seed)
    if arrival == "deterministic":
        return DeterministicArrivals(rate).generate(horizon_s, seed)
    if arrival != "mmpp":
        raise ConfigError(f"unknown arrival process {arrival!r}")
    high = rate * burst_factor
    mean_low_s, mean_high_s = 5.0, 1.0
    low = (rate * (mean_low_s + mean_high_s) - high * mean_high_s) / mean_low_s
    low = max(low, rate * 0.05)
    return MMPPArrivals(low, high, mean_low_s, mean_high_s).generate(horizon_s, seed)


class ArrivalStream:
    """Incremental arrival generation for the chunked streaming sweep.

    Yields the *same* arrival times as the one-shot ``arrival_times`` call
    for the same seed, but window by window:  :meth:`take_until` returns the
    arrivals in ``[previous boundary, t_end)`` and can be called with
    increasing boundaries until the horizon.  Bit-identity holds because
    NumPy ``Generator`` draws are stream-sequential — splitting one
    ``rng.exponential(size=n)`` call into several smaller calls consumes the
    identical underlying bit stream and yields the identical values — so the
    gap sequence (and therefore every arrival time) matches the one-shot
    array exactly, independent of the window boundaries.

    Subclasses implement :meth:`_refill`, which extends the internal buffer
    past ``t_end`` (or to the horizon) while consuming the RNG in exactly
    the order the corresponding one-shot generator does.
    """

    def __init__(self, horizon_s: float) -> None:
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        self.horizon_s = horizon_s
        self._buffer = np.empty(0, dtype=np.float64)
        self._cursor = 0.0  # previous window boundary
        self._exhausted = False

    def _refill(self, t_end: float) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def take_until(self, t_end: float) -> np.ndarray:
        """Arrivals in ``[previous boundary, min(t_end, horizon))``."""
        if t_end < self._cursor:
            raise ConfigError(
                f"window end {t_end:.6g} precedes cursor {self._cursor:.6g}"
            )
        t_end = min(t_end, self.horizon_s)
        while not self._exhausted and (
            self._buffer.size == 0 or self._buffer[-1] < t_end
        ):
            self._refill(t_end)
        split = int(np.searchsorted(self._buffer, t_end, side="left"))
        out = self._buffer[:split]
        self._buffer = self._buffer[split:]
        self._cursor = t_end
        return out[out < self.horizon_s]


class PoissonStream(ArrivalStream):
    """Chunked :class:`PoissonArrivals` (identical gap sequence)."""

    #: exponential gaps drawn per refill; any value yields the same arrivals
    #: (stream-sequential draws), this one just amortizes call overhead
    BLOCK = 8192

    def __init__(self, rate: float, horizon_s: float, seed: SeedLike = None) -> None:
        if rate <= 0:
            raise ConfigError(f"Poisson rate must be positive, got {rate}")
        super().__init__(horizon_s)
        self.rate = rate
        self._rng = as_generator(seed)
        self._t = 0.0  # last generated arrival (buffer tail)

    def _refill(self, t_end: float) -> None:
        del t_end
        if self._t >= self.horizon_s:
            self._exhausted = True
            return
        gaps = self._rng.exponential(1.0 / self.rate, size=self.BLOCK)
        times = self._t + np.cumsum(gaps)
        self._t = float(times[-1])
        self._buffer = np.concatenate([self._buffer, times])


class DeterministicStream(ArrivalStream):
    """Chunked :class:`DeterministicArrivals` (pure arithmetic, no RNG)."""

    def __init__(self, rate: float, horizon_s: float, seed: SeedLike = None) -> None:
        del seed
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        super().__init__(horizon_s)
        self.rate = rate
        self._next = 1  # next arrival index (arrival k occurs at k/rate)

    def _refill(self, t_end: float) -> None:
        period = 1.0 / self.rate
        # mirror the one-shot construction exactly: times = arange(...) * period
        last = int(np.floor(self.horizon_s / period))
        hi = min(self._next + 8192, last + 1)
        if self._next > last:
            self._exhausted = True
            return
        times = np.arange(self._next, hi) * period
        self._next = hi
        if hi > last:
            self._exhausted = True
        self._buffer = np.concatenate([self._buffer, times[times < self.horizon_s]])


class MMPPStream(ArrivalStream):
    """Chunked :class:`MMPPArrivals`, consuming draws in the one-shot order.

    The one-shot generator alternates phases (one exponential holding-time
    draw each) and draws per-arrival gaps one at a time, discarding the
    overshoot draw that crosses the phase boundary; this stream replays that
    exact sequence, so the produced arrivals are bit-identical.
    """

    def __init__(self, process: MMPPArrivals, horizon_s: float, seed: SeedLike = None) -> None:
        super().__init__(horizon_s)
        self.process = process
        self._rng = as_generator(seed)
        self._t = 0.0
        self._high = bool(self._rng.integers(2))

    def _refill(self, t_end: float) -> None:
        del t_end
        p = self.process
        if self._t >= self.horizon_s:
            self._exhausted = True
            return
        out = []
        # one phase per refill: the arrivals of a phase share one rate
        hold = float(
            self._rng.exponential(p.mean_high_s if self._high else p.mean_low_s)
        )
        phase_end = min(self._t + hold, self.horizon_s)
        rate = p.high_rate if self._high else p.low_rate
        tt = self._t
        while True:
            tt += float(self._rng.exponential(1.0 / rate))
            if tt >= phase_end:
                break
            out.append(tt)
        self._t = phase_end
        self._high = not self._high
        if out:
            self._buffer = np.concatenate([self._buffer, np.array(out)])
        if self._t >= self.horizon_s:
            self._exhausted = True


def arrival_stream(
    rate: float,
    horizon_s: float,
    arrival: str = "poisson",
    burst_factor: float = 4.0,
    seed: SeedLike = None,
) -> ArrivalStream:
    """Chunked counterpart of :func:`arrival_times`.

    Consuming the returned stream window by window yields exactly the
    arrivals ``arrival_times(rate, horizon_s, arrival, burst_factor, seed)``
    returns in one array, for any window boundaries — the contract the
    streaming sweep's bit-identity rests on.
    """
    if arrival == "poisson":
        return PoissonStream(rate, horizon_s, seed)
    if arrival == "deterministic":
        return DeterministicStream(rate, horizon_s, seed)
    if arrival != "mmpp":
        raise ConfigError(f"unknown arrival process {arrival!r}")
    high = rate * burst_factor
    mean_low_s, mean_high_s = 5.0, 1.0
    low = (rate * (mean_low_s + mean_high_s) - high * mean_high_s) / mean_low_s
    low = max(low, rate * 0.05)
    return MMPPStream(
        MMPPArrivals(low, high, mean_low_s, mean_high_s), horizon_s, seed
    )


@dataclass(frozen=True)
class TraceArrivals:
    """Replay explicit arrival timestamps (strictly increasing)."""

    times: Sequence[float]

    def __post_init__(self) -> None:
        arr = np.asarray(self.times, dtype=float)
        if arr.ndim != 1:
            raise ConfigError("trace must be 1-D")
        if arr.size and (np.any(arr < 0) or np.any(np.diff(arr) <= 0)):
            raise ConfigError("trace times must be non-negative, strictly increasing")

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        arr = np.asarray(self.times, dtype=float)
        return arr[arr < horizon_s]
