"""Discrete-event simulation substrate (the stand-in for the paper's testbed).

The optimizer predicts *expected* latencies analytically; the simulator
replays a solved :class:`~repro.core.plan.JointPlan` against stochastic
arrivals, per-request input difficulties, FIFO resources, and (optionally)
time-varying link bandwidth, producing measured latency distributions,
deadline-miss rates, and accuracy estimates.  Experiments E4/E5/E11/E14 are
simulator-driven; E14 validates the analytic queueing terms against it.
"""

from repro.sim.engine import Simulator
from repro.sim.entities import Request, RequestDemand, RequestRecord
from repro.sim.execution import RealizationTable, realize_request, sample_exit
from repro.sim.metrics import (
    LatencyHistogram,
    MetricsCollector,
    SimCounters,
    SimulationReport,
    StreamingStats,
    merge_reports,
)
from repro.sim.queues import FifoResource, LinkResource
from repro.sim.runner import (
    SimulationConfig,
    run_cells,
    run_replications,
    simulate_plan,
)
from repro.sim.sources import (
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
    arrival_stream,
    arrival_times,
)

__all__ = [
    "DeterministicArrivals",
    "FifoResource",
    "LatencyHistogram",
    "LinkResource",
    "MMPPArrivals",
    "MetricsCollector",
    "PoissonArrivals",
    "RealizationTable",
    "Request",
    "RequestDemand",
    "RequestRecord",
    "SimCounters",
    "SimulationConfig",
    "SimulationReport",
    "Simulator",
    "StreamingStats",
    "TraceArrivals",
    "arrival_stream",
    "arrival_times",
    "merge_reports",
    "realize_request",
    "run_cells",
    "run_replications",
    "sample_exit",
    "simulate_plan",
]
