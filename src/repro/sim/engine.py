"""Minimal deterministic discrete-event engine.

A binary-heap event loop with a monotonically increasing sequence number as
tie-breaker, so simultaneous events fire in scheduling order and runs are
bit-for-bit reproducible.  Events are plain callbacks; entities close over
whatever state they need.

For observability, an optional :attr:`Simulator.on_event` hook fires after
every processed event with ``(now, pending)`` — the telemetry layer uses it
to sample gauges on event boundaries.  It is ``None`` by default and the
loop pays a single identity check per event when unset.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

_heappush = heapq.heappush
_heappop = heapq.heappop

EventFn = Callable[[], None]

#: Post-event observer signature: ``(simulation_now_s, pending_events)``.
EventObserver = Callable[[float, int], None]


class EventHandle:
    """Cancellation token for events scheduled via ``schedule_at_cancellable``.

    Cancelled events still pop off the heap at their scheduled time (and
    count toward ``events_processed``), but their callback is skipped —
    the failure layer uses this for timeout-vs-completion races, where
    exactly one of two scheduled continuations must run.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event loop: ``schedule`` callbacks, then ``run``."""

    def __init__(self, on_event: Optional[EventObserver] = None) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, EventFn]] = []
        self._processed = 0
        self.on_event = on_event

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, fn: EventFn) -> None:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6g}s in the past")
        self.schedule_at(self._now + delay, fn)

    def schedule_at(self, time: float, fn: EventFn) -> None:
        """Schedule ``fn`` at absolute simulation time ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at t={time:.6g} before now={self._now:.6g}"
            )
        _heappush(self._heap, (max(time, self._now), self._seq, fn))
        self._seq += 1

    def schedule_at_cancellable(self, time: float, fn: EventFn) -> EventHandle:
        """Schedule ``fn`` at ``time``; return a handle that can cancel it."""
        handle = EventHandle()

        def guarded() -> None:
            if not handle.cancelled:
                fn()

        self.schedule_at(time, guarded)
        return handle

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Process events in time order.

        Stops when the heap empties, when the next event is after ``until``
        (clock advances to ``until``), or when ``max_events`` is exceeded
        (raises — a runaway model is a bug, not a result).

        The loop is split on whether an :attr:`on_event` observer is
        installed, hoisting that check (and the heap-op attribute lookups)
        out of the per-event path; installing or removing the observer
        mid-run (no caller does) would take effect on the next ``run``.
        """
        heap = self._heap
        pop = _heappop
        observer = self.on_event
        processed = self._processed
        try:
            if observer is None:
                while heap:
                    t, _, fn = heap[0]
                    if until is not None and t > until:
                        self._now = until
                        return self._now
                    pop(heap)
                    self._now = t
                    fn()
                    processed += 1
                    if processed > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; runaway model?"
                        )
            else:
                while heap:
                    t, _, fn = heap[0]
                    if until is not None and t > until:
                        self._now = until
                        return self._now
                    pop(heap)
                    self._now = t
                    fn()
                    processed += 1
                    observer(self._now, len(heap))
                    if processed > max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events; runaway model?"
                        )
        finally:
            self._processed = processed
        if until is not None:
            self._now = max(self._now, until)
        return self._now
