"""Vectorized fast path for :func:`repro.sim.runner.simulate_plan`.

The event loop's work factors into (a) per-request stochastic realization —
arrival times, difficulties, exit positions, correctness draws — and (b) a
device→uplink→server→downlink FIFO pipeline whose only coupling is each
resource's ``busy_until`` horizon.  Neither needs a heap: (a) vectorizes
completely (``RealizationTable`` + :mod:`repro.rng_vec`), and (b) reduces to
per-resource *sweeps* — one lean recurrence per resource over submissions in
the exact order the event loop would have made them.

The hard part is reproducing the event loop **bit for bit**, which pins two
orderings:

- *submission order* per resource: the shared device resource receives
  requests in ``(arrival, global-index)`` order; each per-task stage resource
  receives its task's offloaded requests in the stable sort of the previous
  stage's completion times over the previous stage's processing order (each
  stage event is scheduled while its predecessor fires, so heap sequence
  numbers inherit the predecessor's order);
- *record order*: completion callbacks interleave globally by
  ``(completion time, heap sequence)``, where the sequence comparison
  recurses through each request's scheduling chain.  That collapses to a
  lexicographic key — offloaded: ``(completion, server_done,
  uplink_delivery, device_done, arrival, gidx)``; non-offloaded:
  ``(completion, arrival, -inf, -inf, -inf, gidx)`` (the ``-inf`` padding
  encodes that arrival events always beat same-time dynamic events, since
  all arrivals are scheduled before the run starts and hold the lowest
  sequence numbers).

Eligibility is decided by the caller (:func:`~repro.sim.runner.simulate_plan`):
any telemetry recorder forces the event loop, since gauges sample on event
boundaries the fast path does not visit.  Everything else — bandwidth
traces included (``LinkResource.sweep`` reuses the exact trace integration) —
is fast-path eligible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.plan import JointPlan, TaskSpec
from repro.errors import SimulationError
from repro.rng import derive, derive_material
from repro.rng_vec import first_uniforms
from repro.sim.entities import RequestRecord
from repro.sim.execution import RealizationTable, jitter_factors, jitter_materials
from repro.sim.metrics import SimCounters, StreamingStats
from repro.sim.queues import FifoResource, LinkResource
from repro.sim.sources import arrival_stream, arrival_times
from repro.telemetry.windows import WindowedMetrics

__all__ = ["sweep_pipeline", "sweep_pipeline_streaming"]


class _TaskStream:
    """Realized request stream of one task (all arrays indexed by req_id)."""

    __slots__ = (
        "task", "n", "arrival", "deadline", "positions", "offloaded", "correct",
        "dev_flops", "srv_flops", "up_bytes", "down_bytes",
        "dev_start", "dev_done", "uplink_delivery", "server_done",
        "completion", "srv_busy", "net_busy",
    )

    def __init__(self, task: TaskSpec, plan: JointPlan, cfg) -> None:
        self.task = task
        arrival = arrival_times(
            task.arrival_rate,
            cfg.horizon_s,
            cfg.arrival,
            cfg.burst_factor,
            derive(cfg.seed, "arrivals", task.name),
        )
        diff_rng = derive(cfg.seed, "difficulty", task.name)
        difficulties = np.clip(
            task.model.difficulty.sample(diff_rng, arrival.size), 0.0, 1.0
        )
        n = arrival.size
        self.n = n
        self.arrival = arrival.astype(np.float64)
        self.deadline = self.arrival + task.deadline_s

        table = RealizationTable(task.model, plan.features[task.name].plan)
        pos = table.positions(difficulties)
        uniforms = first_uniforms(
            derive_material(cfg.seed, "exec", task.name), np.arange(n)
        )
        self.positions = pos
        self.offloaded = table.offloaded[pos]
        self.correct = uniforms < table.p_correct(pos, difficulties)
        self.dev_flops = table.dev_flops[pos]
        self.srv_flops = table.srv_flops[pos]
        self.up_bytes = table.up_bytes[pos]
        self.down_bytes = table.down_bytes[pos]
        sigma = getattr(cfg, "service_noise", 0.0)
        if sigma > 0:
            # per-(task, stage) counter-based draws — the same factors the
            # event loop applies per request via jitter_demand
            mats = jitter_materials(cfg.seed, task.name)
            ids = np.arange(n)
            self.dev_flops = self.dev_flops * jitter_factors(mats["dev"], ids, sigma)
            self.srv_flops = self.srv_flops * jitter_factors(mats["srv"], ids, sigma)
            self.up_bytes = self.up_bytes * jitter_factors(mats["up"], ids, sigma)
            self.down_bytes = self.down_bytes * jitter_factors(mats["down"], ids, sigma)

        self.dev_start = np.empty(n)
        self.dev_done = np.empty(n)
        self.uplink_delivery = np.full(n, -np.inf)
        self.server_done = np.full(n, -np.inf)
        self.completion = np.empty(n)
        self.srv_busy = np.zeros(n)
        self.net_busy = np.zeros(n)


def _sweep_devices(
    streams: Sequence[_TaskStream], device_res: Dict[str, FifoResource]
) -> None:
    """Run every shared device resource over its tasks' merged arrivals.

    The event loop submits device work while arrival events fire, i.e. in
    ``(arrival time, global scheduling index)`` order; concatenating the
    device's streams in task order *is* global-index order, so a stable
    argsort by arrival reproduces it exactly.
    """
    by_device: Dict[str, List[_TaskStream]] = {}
    for s in streams:
        by_device.setdefault(s.task.device_name, []).append(s)
    for dname, members in by_device.items():
        arrival = np.concatenate([s.arrival for s in members])
        work = np.concatenate([s.dev_flops for s in members])
        order = np.argsort(arrival, kind="stable")
        starts, finishes = device_res[dname].sweep(arrival[order], work[order])
        all_starts = np.empty_like(arrival)
        all_done = np.empty_like(arrival)
        all_starts[order] = starts
        all_done[order] = finishes
        off = 0
        for s in members:
            s.dev_start = all_starts[off : off + s.n]
            s.dev_done = all_done[off : off + s.n]
            off += s.n


def _sweep_offload_stages(
    stream: _TaskStream,
    task_server_res: Dict[str, FifoResource],
    task_uplink_res: Dict[str, LinkResource],
    task_downlink_res: Dict[str, LinkResource],
) -> None:
    """Uplink → server → downlink for one task's offloaded requests.

    Each stage's submission order is the stable sort of the previous stage's
    completion times over the previous stage's processing order (stage
    events inherit heap-sequence order from their schedulers), so the orders
    chain: ``ord_u`` over device completions in request order, then re-sorts
    by each stage's own finish times.
    """
    name = stream.task.name
    off_idx = np.flatnonzero(stream.offloaded)
    stream.completion = stream.dev_done.copy()
    if off_idx.size == 0:
        return
    ord_u = off_idx[np.argsort(stream.dev_done[off_idx], kind="stable")]
    u_start, u_deliver = task_uplink_res[name].sweep(
        stream.dev_done[ord_u], stream.up_bytes[ord_u]
    )
    stream.uplink_delivery[ord_u] = u_deliver
    stream.net_busy[ord_u] = u_deliver - u_start

    ord_s = ord_u[np.argsort(u_deliver, kind="stable")]
    s_start, s_done = task_server_res[name].sweep(
        stream.uplink_delivery[ord_s], stream.srv_flops[ord_s]
    )
    stream.server_done[ord_s] = s_done
    stream.srv_busy[ord_s] = s_done - s_start

    ord_d = ord_s[np.argsort(s_done, kind="stable")]
    d_start, d_deliver = task_downlink_res[name].sweep(
        stream.server_done[ord_d], stream.down_bytes[ord_d]
    )
    stream.completion[ord_d] = d_deliver
    stream.net_busy[ord_d] += d_deliver - d_start


def _record_order(
    completion: np.ndarray,
    arrival: np.ndarray,
    offloaded: np.ndarray,
    server_done: np.ndarray,
    uplink_delivery: np.ndarray,
    device_done: np.ndarray,
) -> np.ndarray:
    """Global completion-callback order of the event loop.

    Ties in completion time resolve by heap sequence number, which recurses
    through each request's scheduling chain (finish ← downlink ← server ←
    uplink ← arrival for offloaded; finish ← arrival for non-offloaded).
    ``-inf`` in the offload-only key slots encodes that an arrival event
    outranks any same-time dynamic event; remaining full ties fall back to
    lexsort's stability, i.e. global scheduling index.
    """
    neg_inf = np.float64(-np.inf)
    k2 = np.where(offloaded, server_done, arrival)
    k3 = np.where(offloaded, uplink_delivery, neg_inf)
    k4 = np.where(offloaded, device_done, neg_inf)
    k5 = np.where(offloaded, arrival, neg_inf)
    return np.lexsort((k5, k4, k3, k2, completion))


def sweep_pipeline(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cfg,
    device_res: Dict[str, FifoResource],
    task_server_res: Dict[str, FifoResource],
    task_uplink_res: Dict[str, LinkResource],
    task_downlink_res: Dict[str, LinkResource],
    windowed: "WindowedMetrics | None" = None,
) -> Tuple[List[RequestRecord], int, SimCounters]:
    """Vectorized equivalent of the event loop over already-built resources.

    Mutates the resources exactly as the event loop would (busy horizons,
    busy time, job counts) and returns ``(records, discarded, counters)``
    where ``records`` is warmup-filtered and in the event loop's completion
    order.  Bit-identical to the event path by construction.  With
    ``windowed`` set, warmup-filtered completions additionally fold into the
    tumbling-window aggregator (integer state bit-identical to the event
    loop's scalar feed — window/bin indices use the same double ops).
    """
    streams = [_TaskStream(t, plan, cfg) for t in tasks]
    total = sum(s.n for s in streams)
    if total == 0:
        raise SimulationError("no requests generated; horizon or rates too small")

    _sweep_devices(streams, device_res)
    for s in streams:
        _sweep_offload_stages(
            s, task_server_res, task_uplink_res, task_downlink_res
        )
        if windowed is not None:
            keep = s.arrival >= cfg.warmup_s
            comp = s.completion[keep]
            windowed.observe(
                s.task.name,
                comp,
                comp - s.arrival[keep],
                comp <= s.deadline[keep] + 1e-12,
            )

    arrival = np.concatenate([s.arrival for s in streams])
    completion = np.concatenate([s.completion for s in streams])
    offloaded = np.concatenate([s.offloaded for s in streams])
    order = _record_order(
        completion,
        arrival,
        offloaded,
        np.concatenate([s.server_done for s in streams]),
        np.concatenate([s.uplink_delivery for s in streams]),
        np.concatenate([s.dev_done for s in streams]),
    )
    if np.any(completion < arrival):  # pragma: no cover - structural invariant
        bad = int(np.argmax(completion < arrival))
        raise SimulationError(f"request #{bad} completes before it arrives")

    task_names = np.concatenate(
        [np.full(s.n, i, dtype=np.intp) for i, s in enumerate(streams)]
    )
    req_ids = np.concatenate([np.arange(s.n, dtype=np.intp) for s in streams])
    deadline = np.concatenate([s.deadline for s in streams])
    positions = np.concatenate([s.positions for s in streams])
    correct = np.concatenate([s.correct for s in streams])
    dev_busy = np.concatenate([s.dev_done - s.dev_start for s in streams])
    srv_busy = np.concatenate([s.srv_busy for s in streams])
    net_busy = np.concatenate([s.net_busy for s in streams])

    warmup = cfg.warmup_s
    names = [s.task.name for s in streams]
    records: List[RequestRecord] = []
    for g in order.tolist():
        a = arrival[g]
        if a < warmup:
            continue
        records.append(
            RequestRecord(
                task_name=names[task_names[g]],
                req_id=int(req_ids[g]),
                arrival_s=float(a),
                completion_s=float(completion[g]),
                deadline_s=float(deadline[g]),
                exit_position=int(positions[g]),
                offloaded=bool(offloaded[g]),
                correct=bool(correct[g]),
                dev_busy_s=float(dev_busy[g]),
                srv_busy_s=float(srv_busy[g]),
                net_busy_s=float(net_busy[g]),
            )
        )
    discarded = total - len(records)
    n_off = int(np.count_nonzero(offloaded))
    counters = SimCounters(
        requests=total,
        records=len(records),
        discarded_warmup=discarded,
        events=2 * (total - n_off) + 5 * n_off,
        replications=1,
    )
    return records, discarded, counters


# -- chunked streaming sweep ---------------------------------------------------
#
# The streaming sweep replays the exact per-resource recurrences of
# ``sweep_pipeline`` window by window instead of over one giant array.  Three
# facts make the chunking lossless:
#
# 1. Every stochastic column is chunkable: arrival streams replay the
#    one-shot draw order (``repro.sim.sources.ArrivalStream``), difficulty
#    draws are stream-sequential, and exec uniforms are counter-based
#    (addressed by request index), so realizing requests window by window
#    yields bit-identical columns.
# 2. Device submissions are ordered by ``(arrival, task order)``, and window
#    boundaries split by arrival — every submission of window *k* precedes
#    every submission of window *k+1*, so per-window sweeps see the global
#    submission order.
# 3. Offload-stage submissions are ordered by the *previous* stage's finish
#    times, which do not respect window boundaries; each stage therefore
#    buffers pending submissions and only flushes entries whose stage key is
#    strictly below the window edge ``t1``.  That is safe because any
#    request realized in a later window has all stage timestamps ≥ its
#    arrival ≥ ``t1``; within the flush, a stable argsort over
#    ``[sorted carry-over ‖ new batch in request order]`` reproduces the
#    global stable submission order (carry-over entries hold smaller request
#    ids than any new entry, so ties resolve identically).
#
# Each resource's ``sweep`` carries its busy horizon and busy-time
# accumulator across calls with sequential-scalar semantics, so splitting
# one sweep into many changes no bits.  Completed requests fold straight
# into a ``StreamingStats`` accumulator — the event loop's record *order* is
# not reproduced (it only affects the order of observation, not any value),
# which is what lets the sweep retire requests without a global completion
# buffer.


#: per-request payload carried through the offload-stage buffers; a single
#: superset of columns (all float64) keeps the buffers homogeneous
_STAGE_COLS = (
    "req_id", "arrival", "deadline", "position", "correct",
    "dev_busy", "net_busy", "srv_busy", "up_bytes", "srv_flops", "down_bytes",
)


class _StageBuffer:
    """Pending submissions of one pipeline stage, in submission order.

    Holds ``(key, payload)`` rows where ``key`` is the previous stage's
    finish time (= this stage's submission time).  :meth:`push_flush`
    appends a batch in request order, restores global submission order with
    a stable argsort, and splits off every row with ``key < threshold``.
    """

    __slots__ = ("key", "cols")

    def __init__(self) -> None:
        self.key = np.empty(0, dtype=np.float64)
        self.cols = {name: np.empty(0, dtype=np.float64) for name in _STAGE_COLS}

    @property
    def pending(self) -> int:
        return self.key.size

    def push_flush(
        self,
        key: np.ndarray,
        cols: Dict[str, np.ndarray],
        threshold: float,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        if key.size:
            merged_key = np.concatenate([self.key, key])
            merged = {
                name: np.concatenate([self.cols[name], cols[name]])
                for name in _STAGE_COLS
            }
            order = np.argsort(merged_key, kind="stable")
            merged_key = merged_key[order]
            merged = {name: c[order] for name, c in merged.items()}
        else:
            merged_key, merged = self.key, self.cols
        split = int(np.searchsorted(merged_key, threshold, side="left"))
        out_key = merged_key[:split]
        out = {name: c[:split] for name, c in merged.items()}
        self.key = merged_key[split:]
        self.cols = {name: c[split:] for name, c in merged.items()}
        return out_key, out


class _ChunkedTaskStream:
    """Incremental realization of one task's request stream.

    Produces the same columns as :class:`_TaskStream`, window by window:
    arrivals come from the replaying :func:`arrival_stream`, difficulties
    from the same derived generator (stream-sequential draws), and exec
    uniforms from the counter-based :func:`first_uniforms` addressed by
    request index.
    """

    __slots__ = (
        "task", "table", "arrivals", "diff_rng", "exec_material",
        "generated", "offloaded_total", "up_buf", "srv_buf", "down_buf",
        "sigma", "jitter_mats",
    )

    def __init__(self, task: TaskSpec, plan: JointPlan, cfg) -> None:
        self.task = task
        self.table = RealizationTable(task.model, plan.features[task.name].plan)
        self.arrivals = arrival_stream(
            task.arrival_rate,
            cfg.horizon_s,
            cfg.arrival,
            cfg.burst_factor,
            derive(cfg.seed, "arrivals", task.name),
        )
        self.diff_rng = derive(cfg.seed, "difficulty", task.name)
        self.exec_material = derive_material(cfg.seed, "exec", task.name)
        self.generated = 0
        self.offloaded_total = 0
        self.up_buf = _StageBuffer()
        self.srv_buf = _StageBuffer()
        self.down_buf = _StageBuffer()
        self.sigma = getattr(cfg, "service_noise", 0.0)
        self.jitter_mats = (
            jitter_materials(cfg.seed, task.name) if self.sigma > 0 else None
        )

    def realize(self, t_end: float) -> Dict[str, np.ndarray]:
        """Realize the requests arriving in the current window."""
        arrival = self.arrivals.take_until(t_end)
        m = arrival.size
        difficulties = np.clip(
            self.task.model.difficulty.sample(self.diff_rng, m), 0.0, 1.0
        )
        pos = self.table.positions(difficulties)
        req_id = np.arange(self.generated, self.generated + m, dtype=np.int64)
        uniforms = first_uniforms(self.exec_material, req_id)
        self.generated += m
        offloaded = self.table.offloaded[pos]
        self.offloaded_total += int(np.count_nonzero(offloaded))
        dev_flops = self.table.dev_flops[pos]
        srv_flops = self.table.srv_flops[pos]
        up_bytes = self.table.up_bytes[pos]
        down_bytes = self.table.down_bytes[pos]
        if self.jitter_mats is not None:
            # counter-based draws addressed by request id: identical to the
            # one-shot sweep's arange(n) batch regardless of window splits
            dev_flops = dev_flops * jitter_factors(
                self.jitter_mats["dev"], req_id, self.sigma
            )
            srv_flops = srv_flops * jitter_factors(
                self.jitter_mats["srv"], req_id, self.sigma
            )
            up_bytes = up_bytes * jitter_factors(
                self.jitter_mats["up"], req_id, self.sigma
            )
            down_bytes = down_bytes * jitter_factors(
                self.jitter_mats["down"], req_id, self.sigma
            )
        return {
            "req_id": req_id,
            "arrival": arrival.astype(np.float64),
            "deadline": arrival + self.task.deadline_s,
            "positions": pos,
            "offloaded": offloaded,
            "correct": uniforms < self.table.p_correct(pos, difficulties),
            "dev_flops": dev_flops,
            "srv_flops": srv_flops,
            "up_bytes": up_bytes,
            "down_bytes": down_bytes,
        }


def _sweep_devices_window(
    batches: "List[Tuple[_ChunkedTaskStream, Dict[str, np.ndarray]]]",
    device_res: Dict[str, FifoResource],
) -> None:
    """Windowed :func:`_sweep_devices`: merged arrival-order device sweeps.

    Adds ``dev_start`` / ``dev_done`` columns to each batch in place.
    """
    by_device: Dict[str, List[Tuple[_ChunkedTaskStream, Dict[str, np.ndarray]]]] = {}
    for s, batch in batches:
        by_device.setdefault(s.task.device_name, []).append((s, batch))
    for dname, members in by_device.items():
        arrival = np.concatenate([b["arrival"] for _, b in members])
        if arrival.size == 0:
            for _, b in members:
                b["dev_start"] = np.empty(0)
                b["dev_done"] = np.empty(0)
            continue
        work = np.concatenate([b["dev_flops"] for _, b in members])
        order = np.argsort(arrival, kind="stable")
        starts, finishes = device_res[dname].sweep(arrival[order], work[order])
        all_starts = np.empty_like(arrival)
        all_done = np.empty_like(arrival)
        all_starts[order] = starts
        all_done[order] = finishes
        off = 0
        for _, b in members:
            n = b["arrival"].size
            b["dev_start"] = all_starts[off : off + n]
            b["dev_done"] = all_done[off : off + n]
            off += n


def _observe_completions(
    stats: StreamingStats,
    task_name: str,
    warmup_s: float,
    req_ids: np.ndarray,
    arrival: np.ndarray,
    completion: np.ndarray,
    deadline: np.ndarray,
    positions: np.ndarray,
    offloaded: np.ndarray,
    correct: np.ndarray,
    dev_busy: np.ndarray,
    srv_busy: np.ndarray,
    net_busy: np.ndarray,
) -> int:
    """Fold final completions into the accumulator; return warmup discards."""
    keep = arrival >= warmup_s
    kept = int(np.count_nonzero(keep))
    if kept:
        stats.observe(
            task_name,
            req_ids[keep].astype(np.int64),
            arrival[keep],
            completion[keep],
            deadline[keep],
            positions[keep].astype(np.int64),
            offloaded[keep].astype(bool),
            correct[keep].astype(bool),
            dev_busy[keep],
            srv_busy[keep],
            net_busy[keep],
        )
    return int(arrival.size) - kept


def _advance_task_window(
    s: _ChunkedTaskStream,
    batch: Dict[str, np.ndarray],
    threshold: float,
    stats: StreamingStats,
    warmup_s: float,
    task_server_res: Dict[str, FifoResource],
    task_uplink_res: Dict[str, LinkResource],
    task_downlink_res: Dict[str, LinkResource],
) -> int:
    """Advance one task through uplink → server → downlink for one window.

    Locally-completed requests from ``batch`` are observed immediately;
    offloaded ones enter the stage buffers and are flushed stage by stage up
    to ``threshold`` (the window edge, or ``inf`` on the final drain).
    Returns the number of warmup-discarded completions this window.
    """
    name = s.task.name
    discarded = 0
    zeros = lambda m: np.zeros(m)  # noqa: E731 - tiny local helper

    if batch["arrival"].size:
        off = batch["offloaded"]
        loc = ~off
        if np.any(loc):
            discarded += _observe_completions(
                stats, name, warmup_s,
                batch["req_id"][loc], batch["arrival"][loc],
                batch["dev_done"][loc], batch["deadline"][loc],
                batch["positions"][loc], off[loc], batch["correct"][loc],
                batch["dev_done"][loc] - batch["dev_start"][loc],
                zeros(int(np.count_nonzero(loc))), zeros(int(np.count_nonzero(loc))),
            )
        if np.any(off):
            m = int(np.count_nonzero(off))
            cols = {
                "req_id": batch["req_id"][off].astype(np.float64),
                "arrival": batch["arrival"][off],
                "deadline": batch["deadline"][off],
                "position": batch["positions"][off].astype(np.float64),
                "correct": batch["correct"][off].astype(np.float64),
                "dev_busy": batch["dev_done"][off] - batch["dev_start"][off],
                "net_busy": zeros(m),
                "srv_busy": zeros(m),
                "up_bytes": batch["up_bytes"][off],
                "srv_flops": batch["srv_flops"][off],
                "down_bytes": batch["down_bytes"][off],
            }
            key = batch["dev_done"][off]
        else:
            key, cols = _empty_stage_batch()
    else:
        key, cols = _empty_stage_batch()

    # uplink: submissions keyed by device completion
    u_key, u_cols = s.up_buf.push_flush(key, cols, threshold)
    if u_key.size:
        u_start, u_deliver = task_uplink_res[name].sweep(u_key, u_cols["up_bytes"])
        u_cols["net_busy"] = u_deliver - u_start
    else:
        u_deliver = u_key

    # server: submissions keyed by uplink delivery
    s_key, s_cols = s.srv_buf.push_flush(u_deliver, u_cols, threshold)
    if s_key.size:
        s_start, s_done = task_server_res[name].sweep(s_key, s_cols["srv_flops"])
        s_cols["srv_busy"] = s_done - s_start
    else:
        s_done = s_key

    # downlink: submissions keyed by server completion
    d_key, d_cols = s.down_buf.push_flush(s_done, s_cols, threshold)
    if d_key.size:
        d_start, d_deliver = task_downlink_res[name].sweep(
            d_key, d_cols["down_bytes"]
        )
        m = d_key.size
        discarded += _observe_completions(
            stats, name, warmup_s,
            d_cols["req_id"], d_cols["arrival"], d_deliver, d_cols["deadline"],
            d_cols["position"], np.ones(m, dtype=bool), d_cols["correct"],
            d_cols["dev_busy"], d_cols["srv_busy"],
            d_cols["net_busy"] + (d_deliver - d_start),
        )
    return discarded


def _empty_stage_batch() -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    empty = np.empty(0, dtype=np.float64)
    return empty, {name: empty for name in _STAGE_COLS}


def sweep_pipeline_streaming(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cfg,
    device_res: Dict[str, FifoResource],
    task_server_res: Dict[str, FifoResource],
    task_uplink_res: Dict[str, LinkResource],
    task_downlink_res: Dict[str, LinkResource],
    stats: StreamingStats,
) -> Tuple[int, SimCounters]:
    """Chunked, bounded-memory equivalent of :func:`sweep_pipeline`.

    Realizes arrivals in windows of roughly ``cfg.chunk_size`` requests,
    sweeps each resource window by window (bit-identical recurrences — see
    module comment), and folds completions into ``stats`` instead of
    materializing records.  Mutates the resources exactly as the one-shot
    sweep would and returns ``(discarded, counters)``; per-request results
    (and therefore utilizations, counters, and every integer-derived
    aggregate) are bit-identical to the one-shot sweep on the same seed.

    Memory stays O(chunk + in-flight requests): stage buffers only grow
    with queue backlog, which is bounded in any stable configuration.
    """
    streams = [_ChunkedTaskStream(t, plan, cfg) for t in tasks]
    total_rate = sum(t.arrival_rate for t in tasks)
    window_s = max(cfg.chunk_size / total_rate, 1e-9) if total_rate > 0 else cfg.horizon_s
    warmup = cfg.warmup_s
    discarded = 0

    t = 0.0
    while True:
        t1 = t + window_s
        last = t1 >= cfg.horizon_s
        threshold = np.inf if last else t1
        batches = [(s, s.realize(min(t1, cfg.horizon_s))) for s in streams]
        _sweep_devices_window(batches, device_res)
        for s, batch in batches:
            discarded += _advance_task_window(
                s, batch, threshold, stats, warmup,
                task_server_res, task_uplink_res, task_downlink_res,
            )
        if last:
            break
        t = t1

    total = sum(s.generated for s in streams)
    if total == 0 and not getattr(cfg, "allow_empty", False):
        raise SimulationError("no requests generated; horizon or rates too small")
    n_off = sum(s.offloaded_total for s in streams)
    counters = SimCounters(
        requests=total,
        records=total - discarded,
        discarded_warmup=discarded,
        events=2 * (total - n_off) + 5 * n_off,
        replications=1,
    )
    return discarded, counters
