"""Vectorized fast path for :func:`repro.sim.runner.simulate_plan`.

The event loop's work factors into (a) per-request stochastic realization —
arrival times, difficulties, exit positions, correctness draws — and (b) a
device→uplink→server→downlink FIFO pipeline whose only coupling is each
resource's ``busy_until`` horizon.  Neither needs a heap: (a) vectorizes
completely (``RealizationTable`` + :mod:`repro.rng_vec`), and (b) reduces to
per-resource *sweeps* — one lean recurrence per resource over submissions in
the exact order the event loop would have made them.

The hard part is reproducing the event loop **bit for bit**, which pins two
orderings:

- *submission order* per resource: the shared device resource receives
  requests in ``(arrival, global-index)`` order; each per-task stage resource
  receives its task's offloaded requests in the stable sort of the previous
  stage's completion times over the previous stage's processing order (each
  stage event is scheduled while its predecessor fires, so heap sequence
  numbers inherit the predecessor's order);
- *record order*: completion callbacks interleave globally by
  ``(completion time, heap sequence)``, where the sequence comparison
  recurses through each request's scheduling chain.  That collapses to a
  lexicographic key — offloaded: ``(completion, server_done,
  uplink_delivery, device_done, arrival, gidx)``; non-offloaded:
  ``(completion, arrival, -inf, -inf, -inf, gidx)`` (the ``-inf`` padding
  encodes that arrival events always beat same-time dynamic events, since
  all arrivals are scheduled before the run starts and hold the lowest
  sequence numbers).

Eligibility is decided by the caller (:func:`~repro.sim.runner.simulate_plan`):
any telemetry recorder forces the event loop, since gauges sample on event
boundaries the fast path does not visit.  Everything else — bandwidth
traces included (``LinkResource.sweep`` reuses the exact trace integration) —
is fast-path eligible.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.plan import JointPlan, TaskSpec
from repro.errors import SimulationError
from repro.rng import derive, derive_material
from repro.rng_vec import first_uniforms
from repro.sim.entities import RequestRecord
from repro.sim.execution import RealizationTable
from repro.sim.metrics import SimCounters
from repro.sim.queues import FifoResource, LinkResource
from repro.sim.sources import arrival_times

__all__ = ["sweep_pipeline"]


class _TaskStream:
    """Realized request stream of one task (all arrays indexed by req_id)."""

    __slots__ = (
        "task", "n", "arrival", "deadline", "positions", "offloaded", "correct",
        "dev_flops", "srv_flops", "up_bytes", "down_bytes",
        "dev_start", "dev_done", "uplink_delivery", "server_done",
        "completion", "srv_busy", "net_busy",
    )

    def __init__(self, task: TaskSpec, plan: JointPlan, cfg) -> None:
        self.task = task
        arrival = arrival_times(
            task.arrival_rate,
            cfg.horizon_s,
            cfg.arrival,
            cfg.burst_factor,
            derive(cfg.seed, "arrivals", task.name),
        )
        diff_rng = derive(cfg.seed, "difficulty", task.name)
        difficulties = np.clip(
            task.model.difficulty.sample(diff_rng, arrival.size), 0.0, 1.0
        )
        n = arrival.size
        self.n = n
        self.arrival = arrival.astype(np.float64)
        self.deadline = self.arrival + task.deadline_s

        table = RealizationTable(task.model, plan.features[task.name].plan)
        pos = table.positions(difficulties)
        uniforms = first_uniforms(
            derive_material(cfg.seed, "exec", task.name), np.arange(n)
        )
        self.positions = pos
        self.offloaded = table.offloaded[pos]
        self.correct = uniforms < table.p_correct(pos, difficulties)
        self.dev_flops = table.dev_flops[pos]
        self.srv_flops = table.srv_flops[pos]
        self.up_bytes = table.up_bytes[pos]
        self.down_bytes = table.down_bytes[pos]

        self.dev_start = np.empty(n)
        self.dev_done = np.empty(n)
        self.uplink_delivery = np.full(n, -np.inf)
        self.server_done = np.full(n, -np.inf)
        self.completion = np.empty(n)
        self.srv_busy = np.zeros(n)
        self.net_busy = np.zeros(n)


def _sweep_devices(
    streams: Sequence[_TaskStream], device_res: Dict[str, FifoResource]
) -> None:
    """Run every shared device resource over its tasks' merged arrivals.

    The event loop submits device work while arrival events fire, i.e. in
    ``(arrival time, global scheduling index)`` order; concatenating the
    device's streams in task order *is* global-index order, so a stable
    argsort by arrival reproduces it exactly.
    """
    by_device: Dict[str, List[_TaskStream]] = {}
    for s in streams:
        by_device.setdefault(s.task.device_name, []).append(s)
    for dname, members in by_device.items():
        arrival = np.concatenate([s.arrival for s in members])
        work = np.concatenate([s.dev_flops for s in members])
        order = np.argsort(arrival, kind="stable")
        starts, finishes = device_res[dname].sweep(arrival[order], work[order])
        all_starts = np.empty_like(arrival)
        all_done = np.empty_like(arrival)
        all_starts[order] = starts
        all_done[order] = finishes
        off = 0
        for s in members:
            s.dev_start = all_starts[off : off + s.n]
            s.dev_done = all_done[off : off + s.n]
            off += s.n


def _sweep_offload_stages(
    stream: _TaskStream,
    task_server_res: Dict[str, FifoResource],
    task_uplink_res: Dict[str, LinkResource],
    task_downlink_res: Dict[str, LinkResource],
) -> None:
    """Uplink → server → downlink for one task's offloaded requests.

    Each stage's submission order is the stable sort of the previous stage's
    completion times over the previous stage's processing order (stage
    events inherit heap-sequence order from their schedulers), so the orders
    chain: ``ord_u`` over device completions in request order, then re-sorts
    by each stage's own finish times.
    """
    name = stream.task.name
    off_idx = np.flatnonzero(stream.offloaded)
    stream.completion = stream.dev_done.copy()
    if off_idx.size == 0:
        return
    ord_u = off_idx[np.argsort(stream.dev_done[off_idx], kind="stable")]
    u_start, u_deliver = task_uplink_res[name].sweep(
        stream.dev_done[ord_u], stream.up_bytes[ord_u]
    )
    stream.uplink_delivery[ord_u] = u_deliver
    stream.net_busy[ord_u] = u_deliver - u_start

    ord_s = ord_u[np.argsort(u_deliver, kind="stable")]
    s_start, s_done = task_server_res[name].sweep(
        stream.uplink_delivery[ord_s], stream.srv_flops[ord_s]
    )
    stream.server_done[ord_s] = s_done
    stream.srv_busy[ord_s] = s_done - s_start

    ord_d = ord_s[np.argsort(s_done, kind="stable")]
    d_start, d_deliver = task_downlink_res[name].sweep(
        stream.server_done[ord_d], stream.down_bytes[ord_d]
    )
    stream.completion[ord_d] = d_deliver
    stream.net_busy[ord_d] += d_deliver - d_start


def _record_order(
    completion: np.ndarray,
    arrival: np.ndarray,
    offloaded: np.ndarray,
    server_done: np.ndarray,
    uplink_delivery: np.ndarray,
    device_done: np.ndarray,
) -> np.ndarray:
    """Global completion-callback order of the event loop.

    Ties in completion time resolve by heap sequence number, which recurses
    through each request's scheduling chain (finish ← downlink ← server ←
    uplink ← arrival for offloaded; finish ← arrival for non-offloaded).
    ``-inf`` in the offload-only key slots encodes that an arrival event
    outranks any same-time dynamic event; remaining full ties fall back to
    lexsort's stability, i.e. global scheduling index.
    """
    neg_inf = np.float64(-np.inf)
    k2 = np.where(offloaded, server_done, arrival)
    k3 = np.where(offloaded, uplink_delivery, neg_inf)
    k4 = np.where(offloaded, device_done, neg_inf)
    k5 = np.where(offloaded, arrival, neg_inf)
    return np.lexsort((k5, k4, k3, k2, completion))


def sweep_pipeline(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cfg,
    device_res: Dict[str, FifoResource],
    task_server_res: Dict[str, FifoResource],
    task_uplink_res: Dict[str, LinkResource],
    task_downlink_res: Dict[str, LinkResource],
) -> Tuple[List[RequestRecord], int, SimCounters]:
    """Vectorized equivalent of the event loop over already-built resources.

    Mutates the resources exactly as the event loop would (busy horizons,
    busy time, job counts) and returns ``(records, discarded, counters)``
    where ``records`` is warmup-filtered and in the event loop's completion
    order.  Bit-identical to the event path by construction.
    """
    streams = [_TaskStream(t, plan, cfg) for t in tasks]
    total = sum(s.n for s in streams)
    if total == 0:
        raise SimulationError("no requests generated; horizon or rates too small")

    _sweep_devices(streams, device_res)
    for s in streams:
        _sweep_offload_stages(
            s, task_server_res, task_uplink_res, task_downlink_res
        )

    arrival = np.concatenate([s.arrival for s in streams])
    completion = np.concatenate([s.completion for s in streams])
    offloaded = np.concatenate([s.offloaded for s in streams])
    order = _record_order(
        completion,
        arrival,
        offloaded,
        np.concatenate([s.server_done for s in streams]),
        np.concatenate([s.uplink_delivery for s in streams]),
        np.concatenate([s.dev_done for s in streams]),
    )
    if np.any(completion < arrival):  # pragma: no cover - structural invariant
        bad = int(np.argmax(completion < arrival))
        raise SimulationError(f"request #{bad} completes before it arrives")

    task_names = np.concatenate(
        [np.full(s.n, i, dtype=np.intp) for i, s in enumerate(streams)]
    )
    req_ids = np.concatenate([np.arange(s.n, dtype=np.intp) for s in streams])
    deadline = np.concatenate([s.deadline for s in streams])
    positions = np.concatenate([s.positions for s in streams])
    correct = np.concatenate([s.correct for s in streams])
    dev_busy = np.concatenate([s.dev_done - s.dev_start for s in streams])
    srv_busy = np.concatenate([s.srv_busy for s in streams])
    net_busy = np.concatenate([s.net_busy for s in streams])

    warmup = cfg.warmup_s
    names = [s.task.name for s in streams]
    records: List[RequestRecord] = []
    for g in order.tolist():
        a = arrival[g]
        if a < warmup:
            continue
        records.append(
            RequestRecord(
                task_name=names[task_names[g]],
                req_id=int(req_ids[g]),
                arrival_s=float(a),
                completion_s=float(completion[g]),
                deadline_s=float(deadline[g]),
                exit_position=int(positions[g]),
                offloaded=bool(offloaded[g]),
                correct=bool(correct[g]),
                dev_busy_s=float(dev_busy[g]),
                srv_busy_s=float(srv_busy[g]),
                net_busy_s=float(net_busy[g]),
            )
        )
    discarded = total - len(records)
    n_off = int(np.count_nonzero(offloaded))
    counters = SimCounters(
        requests=total,
        records=len(records),
        discarded_warmup=discarded,
        events=2 * (total - n_off) + 5 * n_off,
        replications=1,
    )
    return records, discarded, counters
