"""Per-request plan realization: difficulty -> exit -> resource demands.

The optimizer works with expectations; the simulator needs the *realized*
behaviour of each sampled input.  :func:`sample_exit` applies the exact
threshold semantics of :mod:`repro.models.exits` (exit fires iff difficulty
is below the exit's cutoff), and :func:`realize_request` charges the same
cumulative branch costs and partition accounting as
:func:`repro.core.surgery.evaluate_plan` — by construction, averaging
realized demands over the difficulty distribution reproduces the plan's
:class:`~repro.core.plan.PlanFeatures` (a property test pins this).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.plan import SurgeryPlan
from repro.models.exits import GATE_SHARPNESS, difficulty_cutoffs
from repro.models.multiexit import MultiExitModel
from repro.rng import derive_material
from repro.rng_vec import first_uniforms
from repro.sim.entities import RequestDemand
from repro.telemetry.metrics import MetricsRegistry

#: Jittered pipeline stages, in submission order.  Each (task, stage) pair
#: owns one derived RNG material; request ``req_id`` draws its per-stage
#: factors counter-style from those materials, so the scalar event loop and
#: the vectorized sweep produce bit-identical draws in any evaluation order.
JITTER_STAGES = ("dev", "srv", "up", "down")


def jitter_materials(seed: int, task_name: str) -> Dict[str, List[int]]:
    """Per-stage child-seed materials for one task's service-time jitter."""
    return {
        st: derive_material(seed, "jitter", task_name, st) for st in JITTER_STAGES
    }


def jitter_factors(
    material: List[int], req_ids: np.ndarray, sigma: float
) -> np.ndarray:
    """Mean-one log-normal jitter factors for a batch of request ids.

    Factor ``exp(σ·Φ⁻¹(u) − σ²/2)`` where ``u`` is the request's first
    uniform on the stage's derived stream — multiplicative noise with
    ``E[factor] = 1``, so jittered demands stay centred on the optimizer's
    expectations and ``log`` relative spread matches the solver's
    ``service_noise`` σ exactly.
    """
    from scipy.special import ndtri

    u = first_uniforms(material, np.asarray(req_ids))
    return np.exp(sigma * ndtri(u) - 0.5 * sigma * sigma)


def jitter_demand(
    demand: RequestDemand,
    materials: Dict[str, List[int]],
    req_id: int,
    sigma: float,
) -> RequestDemand:
    """Scalar counterpart of :func:`jitter_factors`: jitter one request.

    Scales the four demand columns by their per-stage factors; each factor
    is the one-element batch draw, so event-loop runs match the vectorized
    sweep bit for bit.
    """
    ids = np.array([req_id])
    f = {
        st: float(jitter_factors(materials[st], ids, sigma)[0])
        for st in JITTER_STAGES
    }
    return dataclasses.replace(
        demand,
        dev_flops=demand.dev_flops * f["dev"],
        srv_flops=demand.srv_flops * f["srv"],
        up_bytes=demand.up_bytes * f["up"],
        down_bytes=demand.down_bytes * f["down"],
    )


def sample_exit(
    model: MultiExitModel, plan: SurgeryPlan, difficulty: float
) -> int:
    """Index (within the plan's kept exits) where this input exits."""
    kept = list(plan.kept_exits)
    comp = model.competences[kept]
    cutoffs = difficulty_cutoffs(comp, np.asarray(plan.thresholds), GATE_SHARPNESS)
    fires = difficulty <= cutoffs
    # final exit has threshold 0 -> cutoff inf -> always fires
    return int(np.argmax(fires))


class RealizationTable:
    """Per-(model, plan) realization precompute for the vectorized fast path.

    Demands depend on the sampled difficulty only through the taken exit
    position, so one plan admits a table of per-position
    :class:`RequestDemand` prototypes plus the exit cutoffs; realizing a
    batch is then an ``argmax`` over cutoffs, a table gather, and one
    vectorized correctness draw.  Every per-position entry is computed with
    the same scalar expressions (and the same summation/clipping order) as
    :func:`realize_request`, so batch realization is bit-identical to the
    per-request path — a pin test asserts this.
    """

    def __init__(self, model: MultiExitModel, plan: SurgeryPlan) -> None:
        from repro.models.quantization import quantization_level

        plan.validate_against(model)
        self.model = model
        self.plan = plan
        lvl = quantization_level(plan.quantization)
        kept = list(plan.kept_exits)
        comp = model.competences[kept]
        self.cutoffs = difficulty_cutoffs(comp, np.asarray(plan.thresholds), GATE_SHARPNESS)
        self.competences = comp

        c = plan.partition_cut
        cut_flops = model.cut_flops
        cut_bytes = model.cut_bytes
        attach = model.exit_cut_indices[kept]
        backbone = np.array([model.exits[k].backbone_flops for k in kept], dtype=float)
        branch = np.array([model.exits[k].branch_flops for k in kept], dtype=float)
        on_device = attach <= c

        n_pos = len(kept)
        self.dev_flops = np.empty(n_pos)
        self.srv_flops = np.empty(n_pos)
        self.up_bytes = np.empty(n_pos)
        self.down_bytes = np.empty(n_pos)
        self.offloaded = np.empty(n_pos, dtype=bool)
        self.accuracy_delta = lvl.accuracy_delta
        for pos in range(n_pos):
            offloaded = int(attach[pos]) > c
            dev_backbone = min(float(backbone[pos]), float(cut_flops[c]))
            srv_backbone = max(float(backbone[pos]) - float(cut_flops[c]), 0.0)
            dev_branch = float(np.sum(np.where(on_device[: pos + 1], branch[: pos + 1], 0.0)))
            srv_branch = float(np.sum(np.where(on_device[: pos + 1], 0.0, branch[: pos + 1])))
            self.dev_flops[pos] = (dev_backbone + dev_branch) / lvl.compute_speedup
            self.srv_flops[pos] = (
                srv_backbone + (srv_branch if offloaded else 0.0)
            ) / lvl.compute_speedup
            self.up_bytes[pos] = float(cut_bytes[c]) * lvl.wire_scale if offloaded else 0.0
            self.down_bytes[pos] = (
                float(model.result_bytes) * lvl.wire_scale if offloaded else 0.0
            )
            self.offloaded[pos] = offloaded

    def positions(self, difficulties: np.ndarray) -> np.ndarray:
        """Vectorized :func:`sample_exit` over a difficulty batch."""
        fires = difficulties[:, None] <= self.cutoffs[None, :]
        return np.argmax(fires, axis=1)

    def p_correct(self, positions: np.ndarray, difficulties: np.ndarray) -> np.ndarray:
        """Clipped per-request correctness probability at the taken exits.

        Same elementwise ops as ``accuracy_model.correctness`` on the
        (competence, difficulty) pairs — computed directly instead of through
        the broadcasting (n, n) matrix the scalar path slices one cell from.
        """
        from repro.models.accuracy import sigmoid

        s = self.model.accuracy_model.difficulty_sensitivity
        probs = sigmoid(s * (self.competences[positions] - difficulties))
        return np.clip(probs + self.accuracy_delta, 0.01, 0.999)


def realize_request(
    model: MultiExitModel,
    plan: SurgeryPlan,
    difficulty: float,
    rng: np.random.Generator,
    metrics: Optional[MetricsRegistry] = None,
) -> RequestDemand:
    """Realized resource demands of one input under ``plan``.

    Correctness is sampled from the accuracy model's per-difficulty
    correctness probability at the taken exit.  With a ``metrics`` registry
    attached, the realization increments ``sim.realized.requests``,
    ``sim.realized.exit<i>`` (taken-exit position within the kept exits), and
    ``sim.realized.offloaded`` work counters.
    """
    from repro.models.quantization import quantization_level

    plan.validate_against(model)
    lvl = quantization_level(plan.quantization)
    kept = list(plan.kept_exits)
    pos = sample_exit(model, plan, difficulty)

    c = plan.partition_cut
    cut_flops = model.cut_flops
    cut_bytes = model.cut_bytes
    attach = model.exit_cut_indices[kept]
    backbone = np.array([model.exits[k].backbone_flops for k in kept], dtype=float)
    branch = np.array([model.exits[k].branch_flops for k in kept], dtype=float)

    on_device = attach <= c
    taken_attach = int(attach[pos])
    offloaded = taken_attach > c

    dev_backbone = min(float(backbone[pos]), float(cut_flops[c]))
    srv_backbone = max(float(backbone[pos]) - float(cut_flops[c]), 0.0)
    dev_branch = float(np.sum(np.where(on_device[: pos + 1], branch[: pos + 1], 0.0)))
    srv_branch = float(np.sum(np.where(on_device[: pos + 1], 0.0, branch[: pos + 1])))

    up = float(cut_bytes[c]) * lvl.wire_scale if offloaded else 0.0
    down = float(model.result_bytes) * lvl.wire_scale if offloaded else 0.0

    comp_taken = float(model.competences[kept][pos])
    p_correct = float(
        model.accuracy_model.correctness(
            np.array([comp_taken]), np.array([difficulty])
        )[0, 0]
    )
    p_correct = float(np.clip(p_correct + lvl.accuracy_delta, 0.01, 0.999))
    correct = bool(rng.random() < p_correct)

    if metrics is not None:
        metrics.counter("sim.realized.requests").inc()
        metrics.counter(f"sim.realized.exit{pos}").inc()
        if offloaded:
            metrics.counter("sim.realized.offloaded").inc()

    return RequestDemand(
        exit_position=pos,
        dev_flops=(dev_backbone + dev_branch) / lvl.compute_speedup,
        srv_flops=(srv_backbone + (srv_branch if offloaded else 0.0)) / lvl.compute_speedup,
        up_bytes=up,
        down_bytes=down,
        offloaded=offloaded,
        correct=correct,
    )
