"""Simulation entities: requests, realized demands, and completion records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class Request:
    """One inference request of a task's stream."""

    task_name: str
    req_id: int
    arrival_s: float
    difficulty: float  # sampled input difficulty in [0, 1]
    deadline_s: float  # absolute deadline (arrival + task deadline)

    def __post_init__(self) -> None:
        if not (0.0 <= self.difficulty <= 1.0):
            raise SimulationError(f"difficulty {self.difficulty} outside [0,1]")
        if self.arrival_s < 0:
            raise SimulationError(f"negative arrival time {self.arrival_s}")


@dataclass(frozen=True)
class RequestDemand:
    """Resource demands of one request under a concrete surgery plan.

    Unlike :class:`~repro.core.plan.PlanFeatures` (expectations over the
    difficulty distribution), this is the *realized* demand for one sampled
    input: which exit it takes, how many FLOPs run on each side, and what
    crosses the wire.
    """

    exit_position: int  # index within the plan's kept exits
    dev_flops: float
    srv_flops: float
    up_bytes: float
    down_bytes: float
    offloaded: bool
    correct: bool  # sampled prediction correctness

    def __post_init__(self) -> None:
        if min(self.dev_flops, self.srv_flops, self.up_bytes, self.down_bytes) < 0:
            raise SimulationError("negative realized demand")
        if not self.offloaded and (self.srv_flops > 0 or self.up_bytes > 0):
            raise SimulationError("non-offloaded request with server/network demand")


@dataclass(frozen=True)
class RequestRecord:
    """Completion record written by the simulator for one request."""

    task_name: str
    req_id: int
    arrival_s: float
    completion_s: float
    deadline_s: float
    exit_position: int
    offloaded: bool
    correct: bool
    dev_busy_s: float
    srv_busy_s: float
    net_busy_s: float
    #: completed via graceful degradation (local early exit after the edge
    #: became unreachable) rather than along the planned path
    degraded: bool = False

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s

    @property
    def met_deadline(self) -> bool:
        return self.completion_s <= self.deadline_s + 1e-12

    @property
    def queueing_s(self) -> float:
        """Time spent waiting (latency minus busy time on all resources)."""
        busy = self.dev_busy_s + self.srv_busy_s + self.net_busy_s
        return max(0.0, self.latency_s - busy)
