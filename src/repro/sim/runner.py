"""End-to-end simulation of a solved :class:`~repro.core.plan.JointPlan`.

Resource model (mirrors the optimizer's allocation semantics so predicted
and measured latencies are comparable):

- each **end device** is one FIFO compute resource shared by all its tasks;
- each **offloading task** owns a dedicated slice of its server — a FIFO
  resource at ``share × server_rate`` (processor-sharing realized as static
  partitioning, which is what the allocator grants) — and a dedicated slice
  of its access link used for both directions;
- a request flows device-compute → uplink → server-compute → downlink, with
  any stage of zero demand skipped.

Arrivals default to Poisson at each task's rate; per-request difficulties
come from each model's difficulty distribution.  A
:class:`~repro.network.wireless.BandwidthTrace` makes every link time-varying
(experiment E11).

Two execution engines produce **bit-identical** reports on a fixed seed:

- the **fast path** (default): all stochastic realization is pre-generated
  as arrays and the FIFO pipeline is swept per resource in the event loop's
  exact submission order (:mod:`repro.sim.fastpath`);
- the **event loop**: the reference discrete-event engine, used whenever a
  telemetry recorder is attached (gauges sample on event boundaries) or
  ``fast_path=False`` forces it.

Replications fan out deterministically via :func:`run_replications`:
replication 0 runs ``cfg.seed`` unchanged (so one replication reproduces a
plain :func:`simulate_plan`), replication ``r`` runs the derived seed
``derive_seed(cfg.seed, "replication", r)`` — identical per-replication
reports whether executed serially or on ``sim_workers`` processes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError, ReproError, SimulationError
from repro.faults.policy import FailurePolicy, PlanUpdate
from repro.faults.schedule import FaultSchedule
from repro.network.wireless import BandwidthTrace
from repro.rng import derive, derive_from, derive_material, derive_seed
from repro.sim.engine import Simulator
from repro.sim.entities import Request, RequestRecord
from repro.sim.execution import jitter_demand, jitter_materials, realize_request
from repro.sim.fastpath import sweep_pipeline, sweep_pipeline_streaming
from repro.sim.metrics import (
    MetricsCollector,
    SimCounters,
    SimulationReport,
    StreamingStats,
    merge_reports,
)
from repro.sim.queues import FifoResource, LinkResource
from repro.sim.sources import arrival_times
from repro.telemetry.timeline import TimelineRecorder
from repro.telemetry.windows import WindowConfig, WindowedMetrics

_ARRIVALS = {"poisson", "deterministic", "mmpp"}


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run."""

    horizon_s: float = 30.0
    warmup_s: float = 2.0
    arrival: str = "poisson"
    #: MMPP burstiness (used when arrival == "mmpp"): high = burst_factor × rate
    burst_factor: float = 4.0
    bandwidth_trace: Optional[BandwidthTrace] = None
    seed: int = 0
    #: record per-request event timelines + queue/utilization gauges into
    #: ``SimulationReport.timeline`` / ``.registry`` (off by default)
    telemetry: bool = False
    #: use the vectorized pipeline sweep when eligible (bit-identical to the
    #: event loop); set False to force the reference event loop.  Fault runs
    #: (``faults`` set) always use the failure-aware event loop regardless —
    #: the sweep cannot represent interrupted service.
    fast_path: bool = True
    #: independent replications to run (see :func:`run_replications`)
    replications: int = 1
    #: worker processes for replication fan-out (1 = serial)
    sim_workers: int = 1
    #: fault schedule to inject (None = fault-free: the base simulator paths
    #: run untouched and fixed-seed outputs are bit-identical)
    faults: Optional[FaultSchedule] = None
    #: recovery ladder for failed offload stages; requires ``faults``.
    #: None under a schedule is the no-policy baseline (failures -> lost)
    failure_policy: Optional[FailurePolicy] = None
    #: bounded-memory mode: sweep the pipeline in chunks and fold completions
    #: into a streaming accumulator instead of materializing one record per
    #: request; the report becomes records-free (see
    #: :class:`repro.sim.metrics.StreamingStats`).  Requires the fast path
    #: and is incompatible with telemetry and fault schedules.
    streaming: bool = False
    #: target requests per streaming window (memory/throughput trade-off;
    #: any value yields identical results)
    chunk_size: int = 65536
    #: reservoir-sampled records to keep on streaming runs (0 = none)
    max_records: int = 0
    #: latency histogram resolution: quantiles are exact within one bin
    hist_bin_s: float = 5e-4
    #: latencies at/above this land in the histogram overflow bucket
    hist_max_s: float = 30.0
    #: tumbling-window SLO aggregation (:class:`~repro.telemetry.windows.
    #: WindowConfig`); unlike per-request telemetry this works on *every*
    #: engine — event loop, one-shot fast path, chunked streaming sweep, and
    #: fault runs — with bit-identical integer state, and lands in
    #: ``SimulationReport.windowed``.  None (default) costs nothing.
    windows: Optional[WindowConfig] = None
    #: internal (set by :func:`run_cells`): a run that generates zero
    #: requests returns an empty report instead of raising — Poisson
    #: thinning across many cells can legitimately leave one cell silent
    #: within the horizon; the fan-out re-checks the *merged* total
    allow_empty: bool = False
    #: log-σ of per-request multiplicative service-time jitter (mean-one
    #: log-normal, drawn per pipeline stage from counter-based streams — see
    #: :func:`repro.sim.execution.jitter_factors`).  0.0 (default) draws
    #: nothing and every engine stays bit-identical to a jitter-free run.
    service_noise: float = 0.0
    #: target tail-violation level ε this run is judged against (reporting
    #: only — the simulator does not change behaviour; the CLI and E18 use
    #: it to compare realized per-task violation rates to the target)
    epsilon: Optional[float] = None

    def __post_init__(self) -> None:
        if self.service_noise < 0:
            raise ConfigError("service_noise must be >= 0")
        if self.epsilon is not None and not (0.0 < self.epsilon < 1.0):
            raise ConfigError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if self.horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        if not (0 <= self.warmup_s < self.horizon_s):
            raise ConfigError("warmup must lie in [0, horizon)")
        if self.arrival not in _ARRIVALS:
            raise ConfigError(f"arrival must be one of {_ARRIVALS}, got {self.arrival}")
        if self.burst_factor < 1.0:
            raise ConfigError("burst_factor must be >= 1")
        if self.replications < 1:
            raise ConfigError("replications must be >= 1")
        if self.sim_workers < 1:
            raise ConfigError("sim_workers must be >= 1")
        if self.failure_policy is not None and self.faults is None:
            raise ConfigError("failure_policy requires a fault schedule")
        if self.chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1")
        if self.max_records < 0:
            raise ConfigError("max_records must be >= 0")
        if self.hist_bin_s <= 0 or self.hist_max_s <= self.hist_bin_s:
            raise ConfigError(
                f"invalid histogram bins: hist_bin_s={self.hist_bin_s} "
                f"hist_max_s={self.hist_max_s}"
            )
        if self.streaming:
            if not self.fast_path:
                raise ConfigError("streaming requires the fast path")
            if self.telemetry:
                raise ConfigError(
                    "streaming is incompatible with per-request telemetry: "
                    "timelines and queue gauges sample on event boundaries "
                    "the chunked sweep does not visit.  Window-granularity "
                    "SLO metrics *are* streaming-compatible — set "
                    "windows=WindowConfig(...) instead of telemetry=True"
                )
            if self.faults is not None:
                raise ConfigError(
                    "streaming is incompatible with fault schedules (fault "
                    "runs use the failure-aware event loop)"
                )
        if self.faults is not None:
            # FaultEvent/FailurePolicy validate their own knobs; here we pin
            # the schedule against *this* run: a window opening at or beyond
            # the horizon can never fire and is almost certainly a typo
            for e in self.faults:
                if e.start_s >= self.horizon_s:
                    raise ConfigError(
                        f"fault {e.kind} on {e.target!r} starts at "
                        f"t={e.start_s:.6g}, at/beyond the horizon "
                        f"{self.horizon_s:.6g}"
                    )


def _build_resources(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cluster: EdgeCluster,
    lm: LatencyModel,
    cfg: SimulationConfig,
    rec: Optional[TimelineRecorder],
) -> Tuple[
    Dict[str, FifoResource],
    Dict[str, FifoResource],
    Dict[str, LinkResource],
    Dict[str, LinkResource],
]:
    """FIFO resources of one run: shared devices + per-task server/link slices."""
    device_res: Dict[str, FifoResource] = {}
    for d in cluster.end_devices:
        device_res[d.name] = FifoResource(
            f"dev:{d.name}", lm.throughput(d), overhead_s=d.overhead_s, recorder=rec
        )
    task_server_res: Dict[str, FifoResource] = {}
    task_uplink_res: Dict[str, LinkResource] = {}
    task_downlink_res: Dict[str, LinkResource] = {}
    for t in tasks:
        s = plan.assignment[t.name]
        if s is None:
            continue
        server = cluster.servers[s]
        link = cluster.link(t.device_name, server.name)
        x = plan.compute_shares[t.name]
        y = plan.bandwidth_shares[t.name]
        task_server_res[t.name] = FifoResource(
            f"srv:{t.name}", lm.throughput(server) * x, overhead_s=server.overhead_s,
            recorder=rec,
        )
        # full-duplex: each direction gets its own serialization queue
        for direction, store in (("up", task_uplink_res), ("down", task_downlink_res)):
            store[t.name] = LinkResource(
                f"link:{t.name}:{direction}",
                link.bandwidth_bps,
                rtt_s=link.rtt_s,
                share=y,
                trace=cfg.bandwidth_trace,
                recorder=rec,
            )
    return device_res, task_server_res, task_uplink_res, task_downlink_res


def _utilizations(
    device_res: Dict[str, FifoResource],
    task_server_res: Dict[str, FifoResource],
    horizon_s: float,
) -> Dict[str, float]:
    utils = {r.name: r.utilization(horizon_s) for r in device_res.values()}
    for r in task_server_res.values():
        utils[r.name] = r.utilization(horizon_s)
    return utils


def simulate_plan(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cluster: EdgeCluster,
    config: Optional[SimulationConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    recorder: Optional[TimelineRecorder] = None,
    plan_updates: Sequence[PlanUpdate] = (),
) -> SimulationReport:
    """Replay ``plan`` under stochastic load; return measured statistics.

    With ``config.telemetry`` (or an explicit ``recorder``), every request's
    lifecycle (enqueue → dequeue → exec-start → transfer → exit-taken →
    complete) lands in ``report.timeline`` and queue-depth / utilization
    gauges sampled on event boundaries land in ``report.registry``; such runs
    always use the event loop.  Otherwise ``config.fast_path`` (default)
    selects the vectorized sweep, which is bit-identical on a fixed seed.

    With ``config.faults`` set, the run dispatches to the failure-aware
    event loop (:func:`repro.faults.runtime.simulate_with_faults`):
    resources go down and recover per the schedule, failed offload stages
    walk the ``config.failure_policy`` recovery ladder, and controller-
    issued ``plan_updates`` re-provision arrivals mid-run.
    """
    cfg = config or SimulationConfig()
    lm = latency_model or LatencyModel()
    if not tasks:
        raise ConfigError("no tasks to simulate")
    for t in tasks:
        if t.name not in plan.features:
            raise ConfigError(f"plan has no entry for task {t.name!r}")

    rec = recorder if recorder is not None else (TimelineRecorder() if cfg.telemetry else None)
    if cfg.faults is not None:
        from repro.faults.runtime import simulate_with_faults

        return simulate_with_faults(tasks, plan, cluster, cfg, lm, rec, plan_updates)
    if plan_updates:
        raise ConfigError("plan_updates require a fault schedule")
    if cfg.streaming and rec is not None:
        raise ConfigError(
            "streaming runs cannot attach a per-request telemetry recorder; "
            "use windows=WindowConfig(...) for streaming-compatible metrics"
        )
    resources = _build_resources(tasks, plan, cluster, lm, cfg, rec)
    device_res, task_server_res, task_uplink_res, task_downlink_res = resources
    wm = (
        WindowedMetrics(cfg.windows, cfg.horizon_s)
        if cfg.windows is not None else None
    )

    if cfg.streaming:
        stats = StreamingStats(
            cfg.hist_bin_s, cfg.hist_max_s, cfg.max_records, seed=cfg.seed,
            windowed=wm,
        )
        discarded, counters = sweep_pipeline_streaming(
            tasks, plan, cfg,
            device_res, task_server_res, task_uplink_res, task_downlink_res,
            stats,
        )
        report = SimulationReport.from_stream(
            stats,
            cfg.horizon_s,
            _utilizations(device_res, task_server_res, cfg.horizon_s),
            discarded=discarded,
        )
        report.counters = counters
        report.windowed = wm
        return report

    if rec is None and cfg.fast_path:
        records, discarded, counters = sweep_pipeline(
            tasks, plan, cfg,
            device_res, task_server_res, task_uplink_res, task_downlink_res,
            windowed=wm,
        )
        report = SimulationReport.from_records(
            records,
            cfg.horizon_s,
            _utilizations(device_res, task_server_res, cfg.horizon_s),
            discarded=discarded,
        )
        report.counters = counters
        report.windowed = wm
        return report

    reg = rec.registry if rec is not None else None
    sim = Simulator()
    if rec is not None:
        sim.on_event = lambda now, pending: rec.sample("sim.pending_events", now, pending)
    metrics = MetricsCollector(warmup_s=cfg.warmup_s)
    # per-task child-seed prefix, cached so each request extends it with its
    # id instead of re-hashing the task tokens (identical derived streams)
    exec_material = {t.name: derive_material(cfg.seed, "exec", t.name) for t in tasks}
    jitter_mats = (
        {t.name: jitter_materials(cfg.seed, t.name) for t in tasks}
        if cfg.service_noise > 0
        else None
    )

    # -- request lifecycle -------------------------------------------------------
    def launch(task: TaskSpec, req: Request) -> None:
        model = task.model
        feats = plan.features[task.name]
        rng = derive_from(exec_material[task.name], req.req_id)
        demand = realize_request(model, feats.plan, req.difficulty, rng, metrics=reg)
        if jitter_mats is not None:
            demand = jitter_demand(
                demand, jitter_mats[task.name], req.req_id, cfg.service_noise
            )
        dres = device_res[task.device_name]

        def finish(completion: float, dev_busy: float, srv_busy: float, net_busy: float) -> None:
            if rec is not None:
                rec.event(completion, "exit_taken", task.name, req.req_id,
                          value=float(demand.exit_position))
                rec.event(completion, "complete", task.name, req.req_id)
                rec.registry.histogram("sim.latency_ms").observe(
                    (completion - req.arrival_s) * 1e3
                )
            metrics.record(
                RequestRecord(
                    task_name=task.name,
                    req_id=req.req_id,
                    arrival_s=req.arrival_s,
                    completion_s=completion,
                    deadline_s=req.deadline_s,
                    exit_position=demand.exit_position,
                    offloaded=demand.offloaded,
                    correct=demand.correct,
                    dev_busy_s=dev_busy,
                    srv_busy_s=srv_busy,
                    net_busy_s=net_busy,
                )
            )
            if wm is not None and req.arrival_s >= cfg.warmup_s:
                # same filter, latency, and met test as the fast-path feeds —
                # the windowed integer state stays bit-identical across engines
                wm.observe_one(
                    task.name,
                    completion,
                    completion - req.arrival_s,
                    completion <= req.deadline_s + 1e-12,
                )

        def stage_device() -> None:
            if rec is not None:
                rec.event(sim.now, "enqueue", task.name, req.req_id, resource=dres.name)
            start, done = dres.submit(sim.now, demand.dev_flops)
            if rec is not None:
                rec.event(start, "dequeue", task.name, req.req_id, resource=dres.name)
                rec.event(start, "exec_start", task.name, req.req_id, resource=dres.name)
            dev_busy = done - start
            if not demand.offloaded:
                sim.schedule_at(done, lambda: finish(done, dev_busy, 0.0, 0.0))
                return
            sim.schedule_at(done, lambda: stage_uplink(dev_busy))

        def stage_uplink(dev_busy: float) -> None:
            lres = task_uplink_res[task.name]
            start, done = lres.submit(sim.now, demand.up_bytes)
            if rec is not None:
                rec.event(start, "transfer_start", task.name, req.req_id, resource=lres.name)
                rec.event(done, "transfer_end", task.name, req.req_id, resource=lres.name)
            net1 = done - start
            sim.schedule_at(done, lambda: stage_server(dev_busy, net1))

        def stage_server(dev_busy: float, net1: float) -> None:
            sres = task_server_res[task.name]
            start, done = sres.submit(sim.now, demand.srv_flops)
            if rec is not None:
                rec.event(start, "exec_start", task.name, req.req_id, resource=sres.name)
            srv_busy = done - start
            sim.schedule_at(done, lambda: stage_downlink(dev_busy, net1, srv_busy))

        def stage_downlink(dev_busy: float, net1: float, srv_busy: float) -> None:
            lres = task_downlink_res[task.name]
            start, done = lres.submit(sim.now, demand.down_bytes)
            if rec is not None:
                rec.event(start, "transfer_start", task.name, req.req_id, resource=lres.name)
                rec.event(done, "transfer_end", task.name, req.req_id, resource=lres.name)
            net = net1 + (done - start)
            sim.schedule_at(done, lambda: finish(done, dev_busy, srv_busy, net))

        stage_device()

    # -- arrivals -------------------------------------------------------------
    total = 0
    for t in tasks:
        times = arrival_times(
            t.arrival_rate, cfg.horizon_s, cfg.arrival, cfg.burst_factor,
            derive(cfg.seed, "arrivals", t.name),
        )
        diff_rng = derive(cfg.seed, "difficulty", t.name)
        difficulties = t.model.difficulty.sample(diff_rng, times.size)
        for i, (at, d) in enumerate(zip(times, difficulties)):
            req = Request(
                task_name=t.name,
                req_id=i,
                arrival_s=float(at),
                difficulty=float(np.clip(d, 0.0, 1.0)),
                deadline_s=float(at) + t.deadline_s,
            )
            sim.schedule_at(float(at), (lambda tt=t, rr=req: launch(tt, rr)))
            total += 1
    if total == 0:
        raise SimulationError("no requests generated; horizon or rates too small")

    sim.run()  # drain everything (all arrivals are bounded by the horizon)

    report = metrics.report(
        cfg.horizon_s,
        _utilizations(device_res, task_server_res, cfg.horizon_s),
        timeline=rec.timeline if rec is not None else None,
        registry=reg,
    )
    report.counters = SimCounters(
        requests=total,
        records=len(metrics.records),
        discarded_warmup=metrics.discarded,
        events=sim.events_processed,
        replications=1,
    )
    report.windowed = wm
    if reg is not None:
        report.counters.publish(reg)
    return report


def _replication_config(cfg: SimulationConfig, rep: int) -> SimulationConfig:
    """Per-replication config: replication 0 keeps ``cfg.seed`` verbatim."""
    seed = cfg.seed if rep == 0 else derive_seed(cfg.seed, "replication", rep)
    return replace(cfg, seed=seed, replications=1, sim_workers=1)


def _replication_worker(args) -> SimulationReport:
    tasks, plan, cluster, cfg, latency_model, plan_updates = args
    return simulate_plan(
        tasks, plan, cluster, cfg, latency_model, plan_updates=plan_updates
    )


def run_replications(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cluster: EdgeCluster,
    config: SimulationConfig,
    latency_model: Optional[LatencyModel] = None,
    plan_updates: Sequence[PlanUpdate] = (),
) -> List[SimulationReport]:
    """Run ``config.replications`` independent simulations, optionally parallel.

    Replication ``r`` uses the derived seed stream
    ``derive_seed(config.seed, "replication", r)`` (replication 0 keeps the
    base seed, so a single replication reproduces :func:`simulate_plan`
    byte-for-byte).  With ``sim_workers > 1`` replications fan out over a
    process pool — results are collected by replication index, so the report
    list is identical to a serial run regardless of completion order.
    Telemetry runs stay serial: recorders hold per-process state that cannot
    cross the pool boundary.
    """
    cfgs = [_replication_config(config, r) for r in range(config.replications)]
    jobs = [
        (tasks, plan, cluster, c, latency_model, tuple(plan_updates)) for c in cfgs
    ]
    return _fan_out(jobs, min(config.sim_workers, len(jobs)), config.telemetry)


def _fan_out(jobs, workers: int, telemetry: bool) -> List[SimulationReport]:
    """Run simulation jobs on a process pool, serially when unavailable."""
    if workers > 1 and not telemetry and len(jobs) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_replication_worker, jobs))
        except ReproError:
            raise  # a job genuinely failed; don't mask it by retrying
        except Exception:
            pass  # pool unavailable (pickling, sandboxing): fall back to serial
    return [_replication_worker(j) for j in jobs]


def _cell_config(cfg: SimulationConfig, cell: int) -> SimulationConfig:
    """Per-cell config: cell 0 keeps ``cfg.seed`` verbatim (one cell ≡ one run)."""
    seed = cfg.seed if cell == 0 else derive_seed(cfg.seed, "cell", cell)
    return replace(
        cfg, seed=seed, streaming=True, replications=1, sim_workers=1,
        allow_empty=True,
    )


def run_cells(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cluster: EdgeCluster,
    config: SimulationConfig,
    cells: int,
    latency_model: Optional[LatencyModel] = None,
) -> SimulationReport:
    """Shard one workload across ``cells`` independent traffic cells.

    Each cell simulates the same plan over its own resource slice with every
    task's arrival rate thinned to ``rate / cells`` — for Poisson arrivals
    this is the exact decomposition of the full-rate stream into independent
    substreams, so the merged report covers the same total offered load.
    Cell ``c`` derives its seed as ``derive_seed(seed, "cell", c)`` (cell 0
    keeps the base seed, so ``cells=1`` reproduces a plain streaming
    :func:`simulate_plan` byte-for-byte); with ``config.sim_workers > 1``
    cells fan out over a process pool, and because the streaming
    accumulators merge exactly, the merged counters, histograms, and integer
    aggregates are identical regardless of worker count or completion order.
    Cells force ``streaming=True``: the bounded accumulator is what makes
    the merge exact and the fan-out worthwhile.
    """
    if cells < 1:
        raise ConfigError("cells must be >= 1")
    scaled = [replace(t, arrival_rate=t.arrival_rate / cells) for t in tasks]
    jobs = [
        (scaled, plan, cluster, _cell_config(config, c), latency_model, ())
        for c in range(cells)
    ]
    merged = merge_reports(_fan_out(jobs, min(config.sim_workers, cells), False))
    if merged.counters.requests == 0:
        raise SimulationError("no requests generated; horizon or rates too small")
    return merged
