"""Metrics collection and simulation reports.

With telemetry enabled (``SimulationConfig(telemetry=True)``), the report
additionally carries the per-request event :attr:`SimulationReport.timeline`
and the :attr:`SimulationReport.registry` of sampled queue-depth /
utilization gauges and realized-work counters — both ``None`` on ordinary
runs, so the default path allocates nothing extra.

Streaming runs (``SimulationConfig(streaming=True)``) never materialize one
:class:`~repro.sim.entities.RequestRecord` per request; instead a
:class:`StreamingStats` accumulator folds each completed chunk into
fixed-bin latency histograms and per-task running sums, so memory stays
bounded at millions of requests.  The resulting
:class:`SimulationReport` is *records-free*: scalar aggregates (mean
latency, miss rate, accuracy, goodput, counters) are exact, latency
quantiles are exact within one histogram bin, and ``records`` holds at most
``max_records`` reservoir-sampled requests kept for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.rng import derive
from repro.sim.entities import RequestRecord
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeline import Timeline
from repro.telemetry.windows import KahanSum, LatencyHistogram, WindowedMetrics

#: back-compat alias: the compensated sum moved to repro.telemetry.windows
_KahanSum = KahanSum


@dataclass
class SimCounters:
    """Deterministic work counters of one (or several merged) simulation runs.

    Mirrors :class:`~repro.profiling.counters.PerfCounters` for the
    simulator: machine-independent counts that benchmarks and the perf gate
    can assert on.  ``events`` is the number of event-loop callbacks the run
    processed — the fast path reports the *equivalent* count
    (``2·non-offloaded + 5·offloaded`` requests), which is exactly what the
    event loop executes for the same workload, so the two paths stay
    comparable and reports stay equal.
    """

    requests: int = 0
    records: int = 0
    discarded_warmup: int = 0
    events: int = 0
    replications: int = 0
    # -- failure accounting (all zero on fault-free runs) ---------------------
    #: fault-schedule events applied by the injector
    faults_injected: int = 0
    #: offload attempts re-submitted after a failed/timed-out attempt
    retries: int = 0
    #: attempts redirected to the failover server slice
    failovers: int = 0
    #: requests completed locally at a fallback exit (edge unreachable)
    degraded_completions: int = 0
    #: requests that never completed (no policy, or retries exhausted)
    lost: int = 0
    #: requests dropped at arrival by overload shedding (admission repair)
    shed: int = 0

    def merge(self, other: "SimCounters") -> "SimCounters":
        """Accumulate ``other`` into ``self`` (returns self for chaining)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @classmethod
    def merged(cls, by_stream: Mapping[int, "SimCounters"]) -> "SimCounters":
        """Order-independent merge of per-replication counters.

        Replications record into their own instances keyed by replication
        index; merging in sorted index order makes the result independent of
        worker completion order, so serial and parallel fan-outs report
        byte-identical counters.
        """
        out = cls()
        for stream in sorted(by_stream):
            out.merge(by_stream[stream])
        return out

    def conserved(self) -> bool:
        """Request conservation: no request may silently vanish.

        Every launched request must end up completed (recorded or
        warmup-discarded), lost, or shed — across all arrival modes, fault
        schedules, and policies.  A property test pins this.
        """
        return self.requests == (
            self.records + self.discarded_warmup + self.lost + self.shed
        )

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """JSON-friendly snapshot (benchmark ``extra_info`` / gate payload)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def publish(self, registry: MetricsRegistry, prefix: str = "sim") -> None:
        """Register these counts as ``{prefix}.{field}`` monotonic counters."""
        for f in fields(self):
            registry.counter(f"{prefix}.{f.name}").inc(getattr(self, f.name))


@dataclass
class TaskStats:
    """Measured statistics of one task's request stream."""

    count: int
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    miss_rate: float
    accuracy: float
    offload_fraction: float
    mean_exit_position: float
    mean_queueing_s: float


class StreamingTaskStats:
    """Bounded-memory running statistics of one task's request stream."""

    __slots__ = (
        "hist", "count", "met", "correct", "offloaded", "exit_sum",
        "lat_sum", "queue_sum", "max_latency_s",
    )

    def __init__(self, bin_s: float, max_s: float) -> None:
        self.hist = LatencyHistogram(bin_s, max_s)
        self.count = 0
        self.met = 0
        self.correct = 0
        self.offloaded = 0
        self.exit_sum = 0  # integer positions: the sum is exact
        self.lat_sum = _KahanSum()
        self.queue_sum = _KahanSum()
        self.max_latency_s = float("-inf")

    def observe(
        self,
        latency: np.ndarray,
        met: np.ndarray,
        correct: np.ndarray,
        offloaded: np.ndarray,
        positions: np.ndarray,
        queueing: np.ndarray,
    ) -> None:
        if latency.size == 0:
            return
        self.count += int(latency.size)
        self.met += int(np.count_nonzero(met))
        self.correct += int(np.count_nonzero(correct))
        self.offloaded += int(np.count_nonzero(offloaded))
        self.exit_sum += int(positions.sum())
        self.lat_sum.add(float(latency.sum()))
        self.queue_sum.add(float(queueing.sum()))
        self.max_latency_s = max(self.max_latency_s, float(latency.max()))
        self.hist.observe(latency)

    def merge(self, other: "StreamingTaskStats") -> "StreamingTaskStats":
        self.count += other.count
        self.met += other.met
        self.correct += other.correct
        self.offloaded += other.offloaded
        self.exit_sum += other.exit_sum
        self.lat_sum.add(other.lat_sum.value)
        self.queue_sum.add(other.queue_sum.value)
        self.max_latency_s = max(self.max_latency_s, other.max_latency_s)
        self.hist.merge(other.hist)
        return self

    def to_task_stats(self) -> TaskStats:
        n = self.count
        if n == 0:
            raise SimulationError("no completions to summarize")
        return TaskStats(
            count=n,
            mean_latency_s=self.lat_sum.value / n,
            p50_latency_s=self.hist.quantile(50),
            p95_latency_s=self.hist.quantile(95),
            p99_latency_s=self.hist.quantile(99),
            max_latency_s=self.max_latency_s,
            miss_rate=(n - self.met) / n,
            accuracy=self.correct / n,
            offload_fraction=self.offloaded / n,
            mean_exit_position=self.exit_sum / n,
            mean_queueing_s=self.queue_sum.value / n,
        )


class StreamingStats:
    """Columnar metrics accumulator for the chunked streaming sweep.

    Consumes completed requests chunk by chunk as NumPy columns — no
    per-request Python objects — and keeps per-task running sums, fixed-bin
    latency histograms, and (optionally) a seeded reservoir sample of up to
    ``max_records`` :class:`RequestRecord` objects for debugging.  Integer-
    derived aggregates (counts, miss/accuracy/offload ratios, goodput) are
    exact; latency/queueing means are compensated sums (equal to the
    record-backed values within accumulation rounding, ~1 ulp); quantiles
    are exact within one histogram bin.  Accumulators from independent
    shards :meth:`merge` exactly (counts add, histograms add bin-wise).
    """

    def __init__(
        self,
        bin_s: float = 5e-4,
        max_s: float = 30.0,
        max_records: int = 0,
        seed: Union[int, None] = 0,
        windowed: Optional[WindowedMetrics] = None,
    ) -> None:
        if max_records < 0:
            raise SimulationError("max_records must be >= 0")
        self.bin_s = bin_s
        self.max_s = max_s
        self.max_records = max_records
        self.per_task: Dict[str, StreamingTaskStats] = {}
        self.reservoir: List[RequestRecord] = []
        self._seen = 0  # completions offered to the reservoir so far
        self._rng = derive(seed, "reservoir") if max_records > 0 else None
        #: optional tumbling-window SLO aggregator fed alongside the running
        #: sums (owned by the caller; not merged by :meth:`merge`)
        self.windowed = windowed

    # -- accumulation ---------------------------------------------------------

    def observe(
        self,
        task_name: str,
        req_ids: np.ndarray,
        arrival: np.ndarray,
        completion: np.ndarray,
        deadline: np.ndarray,
        positions: np.ndarray,
        offloaded: np.ndarray,
        correct: np.ndarray,
        dev_busy: np.ndarray,
        srv_busy: np.ndarray,
        net_busy: np.ndarray,
    ) -> None:
        """Fold one completed (already warmup-filtered) chunk of one task."""
        if arrival.size == 0:
            return
        if np.any(completion < arrival):
            bad = int(np.argmax(completion < arrival))
            raise SimulationError(
                f"request {task_name}#{int(req_ids[bad])} completes before it arrives"
            )
        latency = completion - arrival
        met = completion <= deadline + 1e-12  # matches RequestRecord.met_deadline
        queueing = np.maximum(0.0, latency - (dev_busy + srv_busy + net_busy))
        stats = self.per_task.get(task_name)
        if stats is None:
            stats = self.per_task[task_name] = StreamingTaskStats(self.bin_s, self.max_s)
        stats.observe(latency, met, correct, offloaded, positions, queueing)
        if self.windowed is not None:
            self.windowed.observe(task_name, completion, latency, met)
        if self._rng is not None:
            self._sample(
                task_name, req_ids, arrival, completion, deadline, positions,
                offloaded, correct, dev_busy, srv_busy, net_busy,
            )

    def _sample(self, task_name, req_ids, arrival, completion, deadline,
                positions, offloaded, correct, dev_busy, srv_busy, net_busy) -> None:
        """Algorithm-R reservoir over the accumulation order (seeded)."""

        def make(i: int) -> RequestRecord:
            return RequestRecord(
                task_name=task_name,
                req_id=int(req_ids[i]),
                arrival_s=float(arrival[i]),
                completion_s=float(completion[i]),
                deadline_s=float(deadline[i]),
                exit_position=int(positions[i]),
                offloaded=bool(offloaded[i]),
                correct=bool(correct[i]),
                dev_busy_s=float(dev_busy[i]),
                srv_busy_s=float(srv_busy[i]),
                net_busy_s=float(net_busy[i]),
            )

        k = self.max_records
        m = int(arrival.size)
        start = 0
        while len(self.reservoir) < k and start < m:
            self.reservoir.append(make(start))
            self._seen += 1
            start += 1
        if start >= m:
            return
        # vectorized accept test: item t (0-based overall) replaces a random
        # slot with probability k/(t+1)
        t = self._seen + np.arange(m - start, dtype=np.int64)
        slots = self._rng.integers(0, t + 1)
        for offset in np.flatnonzero(slots < k).tolist():
            self.reservoir[int(slots[offset])] = make(start + offset)
        self._seen += m - start

    # -- aggregates -----------------------------------------------------------

    @property
    def count(self) -> int:
        return sum(s.count for s in self.per_task.values())

    @property
    def met(self) -> int:
        return sum(s.met for s in self.per_task.values())

    @property
    def correct_count(self) -> int:
        return sum(s.correct for s in self.per_task.values())

    @property
    def latency_sum_s(self) -> float:
        total = _KahanSum()
        for name in sorted(self.per_task):
            total.add(self.per_task[name].lat_sum.value)
        return total.value

    def quantile(self, q: float) -> float:
        """Global latency quantile from the bin-wise sum of task histograms."""
        merged: Optional[LatencyHistogram] = None
        for name in sorted(self.per_task):
            h = self.per_task[name].hist
            if merged is None:
                merged = LatencyHistogram(h.bin_s, h.max_s)
            merged.merge(h)
        if merged is None:
            return float("nan")
        return merged.quantile(q)

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Exact shard merge: counts/histograms add, reservoirs concatenate.

        The concatenated reservoir is a per-shard (not globally uniform)
        sample, truncated to ``max_records`` — it exists for debugging, not
        statistics.
        """
        if self.bin_s != other.bin_s or self.max_s != other.max_s:
            raise SimulationError("cannot merge streaming stats with different binning")
        for name, stats in other.per_task.items():
            mine = self.per_task.get(name)
            if mine is None:
                mine = self.per_task[name] = StreamingTaskStats(self.bin_s, self.max_s)
            mine.merge(stats)
        self.max_records = max(self.max_records, other.max_records)
        self.reservoir = (self.reservoir + other.reservoir)[: self.max_records]
        self._seen += other._seen
        return self


class MetricsCollector:
    """Accumulates :class:`RequestRecord` objects during a run."""

    def __init__(self, warmup_s: float = 0.0) -> None:
        if warmup_s < 0:
            raise SimulationError("warmup must be >= 0")
        self.warmup_s = warmup_s
        self.records: List[RequestRecord] = []
        self.discarded = 0

    def record(self, rec: RequestRecord) -> None:
        if rec.completion_s < rec.arrival_s:
            raise SimulationError(
                f"request {rec.task_name}#{rec.req_id} completes before it arrives"
            )
        if rec.arrival_s < self.warmup_s:
            self.discarded += 1
            return
        self.records.append(rec)

    def report(
        self,
        horizon_s: float,
        utilizations: Optional[Dict[str, float]] = None,
        timeline: Optional[Timeline] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "SimulationReport":
        return SimulationReport.from_records(
            self.records, horizon_s, utilizations or {}, self.discarded,
            timeline=timeline, registry=registry,
        )


@dataclass
class SimulationReport:
    """Aggregated outcome of one simulation run.

    Comes in two flavors.  *Record-backed* reports carry every completed
    request in :attr:`records` and compute aggregates from cached columnar
    arrays.  *Streaming* reports (``stream`` is set) carry the bounded
    :class:`StreamingStats` accumulator instead; :attr:`records` then holds
    at most the reservoir sample, and aggregates dispatch to the
    accumulator's running sums and histograms.
    """

    horizon_s: float
    records: List[RequestRecord]
    per_task: Dict[str, TaskStats]
    utilizations: Dict[str, float] = field(default_factory=dict)
    discarded_warmup: int = 0
    #: per-request event timeline (telemetry runs only, else None)
    timeline: Optional[Timeline] = None
    #: sampled gauges + realized-work counters (telemetry runs only, else None)
    registry: Optional[MetricsRegistry] = None
    #: deterministic work counters (requests/records/events/replications);
    #: identical between the event-loop and fast paths by construction
    counters: SimCounters = field(default_factory=SimCounters)
    #: streaming accumulator (records-free runs only, else None)
    stream: Optional[StreamingStats] = None
    #: tumbling-window SLO aggregates (``SimulationConfig(windows=...)`` runs
    #: only, else None); feeds :func:`repro.telemetry.slo.evaluate_slos`
    windowed: Optional[WindowedMetrics] = None
    #: lazily built columnar arrays over ``records`` (latency/met/correct/…)
    _cache: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def from_records(
        cls,
        records: List[RequestRecord],
        horizon_s: float,
        utilizations: Dict[str, float],
        discarded: int = 0,
        timeline: Optional[Timeline] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "SimulationReport":
        per_task: Dict[str, TaskStats] = {}
        by_task: Dict[str, List[RequestRecord]] = {}
        for r in records:
            by_task.setdefault(r.task_name, []).append(r)
        for name, recs in by_task.items():
            lat = np.array([r.latency_s for r in recs])
            per_task[name] = TaskStats(
                count=len(recs),
                mean_latency_s=float(lat.mean()),
                p50_latency_s=float(np.percentile(lat, 50)),
                p95_latency_s=float(np.percentile(lat, 95)),
                p99_latency_s=float(np.percentile(lat, 99)),
                max_latency_s=float(lat.max()),
                miss_rate=float(np.mean([not r.met_deadline for r in recs])),
                accuracy=float(np.mean([r.correct for r in recs])),
                offload_fraction=float(np.mean([r.offloaded for r in recs])),
                mean_exit_position=float(np.mean([r.exit_position for r in recs])),
                mean_queueing_s=float(np.mean([r.queueing_s for r in recs])),
            )
        return cls(
            horizon_s=horizon_s,
            records=records,
            per_task=per_task,
            utilizations=utilizations,
            discarded_warmup=discarded,
            timeline=timeline,
            registry=registry,
        )

    @classmethod
    def from_stream(
        cls,
        stream: StreamingStats,
        horizon_s: float,
        utilizations: Dict[str, float],
        discarded: int = 0,
        timeline: Optional[Timeline] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "SimulationReport":
        """Records-free report over a :class:`StreamingStats` accumulator.

        ``records`` holds only the (possibly empty) reservoir sample; every
        aggregate dispatches to the accumulator's running sums.
        """
        per_task = {
            name: stats.to_task_stats()
            for name, stats in sorted(stream.per_task.items())
            if stats.count
        }
        return cls(
            horizon_s=horizon_s,
            records=list(stream.reservoir),
            per_task=per_task,
            utilizations=utilizations,
            discarded_warmup=discarded,
            timeline=timeline,
            registry=registry,
            stream=stream,
        )

    # -- aggregates -----------------------------------------------------------

    @property
    def streaming(self) -> bool:
        """True when this report is records-free (streaming accumulator)."""
        return self.stream is not None

    @property
    def total_requests(self) -> int:
        if self.stream is not None:
            return self.stream.count
        return len(self.records)

    def _columns(self) -> Dict[str, np.ndarray]:
        """Columnar views over ``records``, built once and cached."""
        cols = self._cache.get("columns")
        if cols is None:
            n = len(self.records)
            lat = np.empty(n, dtype=np.float64)
            met = np.empty(n, dtype=bool)
            correct = np.empty(n, dtype=bool)
            for i, r in enumerate(self.records):
                lat[i] = r.latency_s
                met[i] = r.met_deadline
                correct[i] = r.correct
            cols = {"latency": lat, "met": met, "correct": correct}
            self._cache["columns"] = cols
        return cols

    def latencies(self) -> np.ndarray:
        """Per-request latency column (cached; record-backed reports only)."""
        if self.stream is not None:
            raise SimulationError(
                "streaming reports keep no per-request latencies; use "
                "mean_latency_s / percentile_latency_s or rerun with "
                "streaming=False"
            )
        return self._columns()["latency"]

    @property
    def mean_latency_s(self) -> float:
        if self.stream is not None:
            n = self.stream.count
            return self.stream.latency_sum_s / n if n else float("nan")
        lat = self.latencies()
        return float(lat.mean()) if lat.size else float("nan")

    def percentile_latency_s(self, q: float) -> float:
        if self.stream is not None:
            return self.stream.quantile(q)
        lat = self.latencies()
        return float(np.percentile(lat, q)) if lat.size else float("nan")

    @property
    def miss_rate(self) -> float:
        if self.stream is not None:
            n = self.stream.count
            return (n - self.stream.met) / n if n else float("nan")
        if not self.records:
            return float("nan")
        return float(np.mean(~self._columns()["met"]))

    @property
    def lost(self) -> int:
        """Requests that never completed (fault runs without/after policy)."""
        return self.counters.lost

    @property
    def shed(self) -> int:
        """Requests dropped at arrival by overload shedding."""
        return self.counters.shed

    @property
    def degraded_completions(self) -> int:
        """Requests completed locally at a fallback exit."""
        return self.counters.degraded_completions

    def goodput(self) -> float:
        """Deadline-met completions per second of horizon."""
        if self.stream is not None:
            return self.stream.met / self.horizon_s
        met = int(np.count_nonzero(self._columns()["met"]))
        return met / self.horizon_s

    @property
    def accuracy(self) -> float:
        if self.stream is not None:
            n = self.stream.count
            return self.stream.correct_count / n if n else float("nan")
        if not self.records:
            return float("nan")
        return float(np.mean(self._columns()["correct"]))

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"simulated {self.total_requests} requests over {self.horizon_s:.1f}s "
            f"(+{self.discarded_warmup} warmup-discarded)",
            f"mean={self.mean_latency_s * 1e3:.2f}ms "
            f"p95={self.percentile_latency_s(95) * 1e3:.2f}ms "
            f"p99={self.percentile_latency_s(99) * 1e3:.2f}ms "
            f"miss={self.miss_rate * 100:.1f}% acc={self.accuracy:.3f}",
        ]
        for name in sorted(self.per_task):
            s = self.per_task[name]
            lines.append(
                f"  {name:>10s}: n={s.count:<6d} mean={s.mean_latency_s * 1e3:7.2f}ms "
                f"p99={s.p99_latency_s * 1e3:7.2f}ms miss={s.miss_rate * 100:5.1f}% "
                f"acc={s.accuracy:.3f} off={s.offload_fraction:.2f}"
            )
        return "\n".join(lines)


def merge_reports(reports: Sequence[SimulationReport]) -> SimulationReport:
    """Pool replication (or traffic-cell shard) reports into one aggregate.

    Record-backed reports concatenate records in replication order (the
    caller supplies reports indexed by replication, so serial and parallel
    fan-outs merge identically) and recompute per-task statistics over the
    pool; streaming reports merge their accumulators exactly (counts and
    histograms add bin-wise).  Mixing the two modes is an error.
    Utilizations are averaged per resource, counters merge
    order-independently via :meth:`SimCounters.merged`, and the merged
    counters are checked for request conservation — a failed merge must not
    silently drop requests.

    Edge cases: an empty sequence raises :class:`SimulationError`
    immediately (``from_records([])`` would otherwise yield a report whose
    aggregates are all NaN with no hint why); reports whose records are all
    empty merge into an explicit empty report that still carries the pooled
    utilizations, warmup-discard count, and counters.
    """
    if not reports:
        raise SimulationError(
            "merge_reports() needs at least one report; got an empty sequence"
        )
    if len(reports) == 1:
        return reports[0]
    horizon = reports[0].horizon_s
    if any(r.horizon_s != horizon for r in reports):
        raise SimulationError("cannot merge reports with different horizons")
    n_streaming = sum(1 for r in reports if r.stream is not None)
    if 0 < n_streaming < len(reports):
        raise SimulationError(
            "cannot merge streaming and record-backed reports: "
            f"{n_streaming} of {len(reports)} are streaming"
        )
    util_keys = list(reports[0].utilizations)
    utils = {
        k: float(np.mean([r.utilizations[k] for r in reports])) for k in util_keys
    }
    discarded = sum(r.discarded_warmup for r in reports)
    if n_streaming:
        first = reports[0].stream
        pooled = StreamingStats(first.bin_s, first.max_s, max_records=0)
        for r in reports:
            pooled.merge(r.stream)
        merged = SimulationReport.from_stream(pooled, horizon, utils, discarded)
    else:
        records: List[RequestRecord] = []
        for r in reports:
            records.extend(r.records)
        merged = SimulationReport.from_records(
            records, horizon, utils, discarded=discarded
        )
    n_windowed = sum(1 for r in reports if r.windowed is not None)
    if 0 < n_windowed < len(reports):
        raise SimulationError(
            "cannot merge windowed and window-free reports: "
            f"{n_windowed} of {len(reports)} carry windowed metrics"
        )
    if n_windowed:
        pooled_w = WindowedMetrics(reports[0].windowed.config, horizon)
        for r in reports:
            pooled_w.merge(r.windowed)
        merged.windowed = pooled_w
    merged.counters = SimCounters.merged(
        {i: r.counters for i, r in enumerate(reports)}
    )
    if not merged.counters.conserved():
        c = merged.counters
        raise SimulationError(
            "merged counters violate request conservation: "
            f"requests={c.requests} != records={c.records} + "
            f"discarded={c.discarded_warmup} + lost={c.lost} + shed={c.shed}"
        )
    return merged
