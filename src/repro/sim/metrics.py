"""Metrics collection and simulation reports.

With telemetry enabled (``SimulationConfig(telemetry=True)``), the report
additionally carries the per-request event :attr:`SimulationReport.timeline`
and the :attr:`SimulationReport.registry` of sampled queue-depth /
utilization gauges and realized-work counters — both ``None`` on ordinary
runs, so the default path allocates nothing extra.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.sim.entities import RequestRecord
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeline import Timeline


@dataclass
class SimCounters:
    """Deterministic work counters of one (or several merged) simulation runs.

    Mirrors :class:`~repro.profiling.counters.PerfCounters` for the
    simulator: machine-independent counts that benchmarks and the perf gate
    can assert on.  ``events`` is the number of event-loop callbacks the run
    processed — the fast path reports the *equivalent* count
    (``2·non-offloaded + 5·offloaded`` requests), which is exactly what the
    event loop executes for the same workload, so the two paths stay
    comparable and reports stay equal.
    """

    requests: int = 0
    records: int = 0
    discarded_warmup: int = 0
    events: int = 0
    replications: int = 0
    # -- failure accounting (all zero on fault-free runs) ---------------------
    #: fault-schedule events applied by the injector
    faults_injected: int = 0
    #: offload attempts re-submitted after a failed/timed-out attempt
    retries: int = 0
    #: attempts redirected to the failover server slice
    failovers: int = 0
    #: requests completed locally at a fallback exit (edge unreachable)
    degraded_completions: int = 0
    #: requests that never completed (no policy, or retries exhausted)
    lost: int = 0
    #: requests dropped at arrival by overload shedding (admission repair)
    shed: int = 0

    def merge(self, other: "SimCounters") -> "SimCounters":
        """Accumulate ``other`` into ``self`` (returns self for chaining)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @classmethod
    def merged(cls, by_stream: Mapping[int, "SimCounters"]) -> "SimCounters":
        """Order-independent merge of per-replication counters.

        Replications record into their own instances keyed by replication
        index; merging in sorted index order makes the result independent of
        worker completion order, so serial and parallel fan-outs report
        byte-identical counters.
        """
        out = cls()
        for stream in sorted(by_stream):
            out.merge(by_stream[stream])
        return out

    def conserved(self) -> bool:
        """Request conservation: no request may silently vanish.

        Every launched request must end up completed (recorded or
        warmup-discarded), lost, or shed — across all arrival modes, fault
        schedules, and policies.  A property test pins this.
        """
        return self.requests == (
            self.records + self.discarded_warmup + self.lost + self.shed
        )

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """JSON-friendly snapshot (benchmark ``extra_info`` / gate payload)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def publish(self, registry: MetricsRegistry, prefix: str = "sim") -> None:
        """Register these counts as ``{prefix}.{field}`` monotonic counters."""
        for f in fields(self):
            registry.counter(f"{prefix}.{f.name}").inc(getattr(self, f.name))


@dataclass
class TaskStats:
    """Measured statistics of one task's request stream."""

    count: int
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    miss_rate: float
    accuracy: float
    offload_fraction: float
    mean_exit_position: float
    mean_queueing_s: float


class MetricsCollector:
    """Accumulates :class:`RequestRecord` objects during a run."""

    def __init__(self, warmup_s: float = 0.0) -> None:
        if warmup_s < 0:
            raise SimulationError("warmup must be >= 0")
        self.warmup_s = warmup_s
        self.records: List[RequestRecord] = []
        self.discarded = 0

    def record(self, rec: RequestRecord) -> None:
        if rec.completion_s < rec.arrival_s:
            raise SimulationError(
                f"request {rec.task_name}#{rec.req_id} completes before it arrives"
            )
        if rec.arrival_s < self.warmup_s:
            self.discarded += 1
            return
        self.records.append(rec)

    def report(
        self,
        horizon_s: float,
        utilizations: Optional[Dict[str, float]] = None,
        timeline: Optional[Timeline] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "SimulationReport":
        return SimulationReport.from_records(
            self.records, horizon_s, utilizations or {}, self.discarded,
            timeline=timeline, registry=registry,
        )


@dataclass
class SimulationReport:
    """Aggregated outcome of one simulation run."""

    horizon_s: float
    records: List[RequestRecord]
    per_task: Dict[str, TaskStats]
    utilizations: Dict[str, float] = field(default_factory=dict)
    discarded_warmup: int = 0
    #: per-request event timeline (telemetry runs only, else None)
    timeline: Optional[Timeline] = None
    #: sampled gauges + realized-work counters (telemetry runs only, else None)
    registry: Optional[MetricsRegistry] = None
    #: deterministic work counters (requests/records/events/replications);
    #: identical between the event-loop and fast paths by construction
    counters: SimCounters = field(default_factory=SimCounters)

    @classmethod
    def from_records(
        cls,
        records: List[RequestRecord],
        horizon_s: float,
        utilizations: Dict[str, float],
        discarded: int = 0,
        timeline: Optional[Timeline] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "SimulationReport":
        per_task: Dict[str, TaskStats] = {}
        by_task: Dict[str, List[RequestRecord]] = {}
        for r in records:
            by_task.setdefault(r.task_name, []).append(r)
        for name, recs in by_task.items():
            lat = np.array([r.latency_s for r in recs])
            per_task[name] = TaskStats(
                count=len(recs),
                mean_latency_s=float(lat.mean()),
                p50_latency_s=float(np.percentile(lat, 50)),
                p95_latency_s=float(np.percentile(lat, 95)),
                p99_latency_s=float(np.percentile(lat, 99)),
                max_latency_s=float(lat.max()),
                miss_rate=float(np.mean([not r.met_deadline for r in recs])),
                accuracy=float(np.mean([r.correct for r in recs])),
                offload_fraction=float(np.mean([r.offloaded for r in recs])),
                mean_exit_position=float(np.mean([r.exit_position for r in recs])),
                mean_queueing_s=float(np.mean([r.queueing_s for r in recs])),
            )
        return cls(
            horizon_s=horizon_s,
            records=records,
            per_task=per_task,
            utilizations=utilizations,
            discarded_warmup=discarded,
            timeline=timeline,
            registry=registry,
        )

    # -- aggregates -----------------------------------------------------------

    @property
    def total_requests(self) -> int:
        return len(self.records)

    def latencies(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.records])

    @property
    def mean_latency_s(self) -> float:
        lat = self.latencies()
        return float(lat.mean()) if lat.size else float("nan")

    def percentile_latency_s(self, q: float) -> float:
        lat = self.latencies()
        return float(np.percentile(lat, q)) if lat.size else float("nan")

    @property
    def miss_rate(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([not r.met_deadline for r in self.records]))

    @property
    def lost(self) -> int:
        """Requests that never completed (fault runs without/after policy)."""
        return self.counters.lost

    @property
    def shed(self) -> int:
        """Requests dropped at arrival by overload shedding."""
        return self.counters.shed

    @property
    def degraded_completions(self) -> int:
        """Requests completed locally at a fallback exit."""
        return self.counters.degraded_completions

    def goodput(self) -> float:
        """Deadline-met completions per second of horizon."""
        met = sum(1 for r in self.records if r.met_deadline)
        return met / self.horizon_s

    @property
    def accuracy(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.correct for r in self.records]))

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"simulated {self.total_requests} requests over {self.horizon_s:.1f}s "
            f"(+{self.discarded_warmup} warmup-discarded)",
            f"mean={self.mean_latency_s * 1e3:.2f}ms "
            f"p95={self.percentile_latency_s(95) * 1e3:.2f}ms "
            f"p99={self.percentile_latency_s(99) * 1e3:.2f}ms "
            f"miss={self.miss_rate * 100:.1f}% acc={self.accuracy:.3f}",
        ]
        for name in sorted(self.per_task):
            s = self.per_task[name]
            lines.append(
                f"  {name:>10s}: n={s.count:<6d} mean={s.mean_latency_s * 1e3:7.2f}ms "
                f"p99={s.p99_latency_s * 1e3:7.2f}ms miss={s.miss_rate * 100:5.1f}% "
                f"acc={s.accuracy:.3f} off={s.offload_fraction:.2f}"
            )
        return "\n".join(lines)


def merge_reports(reports: Sequence[SimulationReport]) -> SimulationReport:
    """Pool replication reports into one aggregate report.

    Records are concatenated in replication order (the caller supplies
    reports indexed by replication, so serial and parallel fan-outs merge
    identically), per-task statistics are recomputed over the pooled
    records, utilizations are averaged per resource, and counters merge
    order-independently via :meth:`SimCounters.merged`.
    """
    if not reports:
        raise SimulationError("nothing to merge")
    if len(reports) == 1:
        return reports[0]
    horizon = reports[0].horizon_s
    if any(r.horizon_s != horizon for r in reports):
        raise SimulationError("cannot merge reports with different horizons")
    records: List[RequestRecord] = []
    for r in reports:
        records.extend(r.records)
    util_keys = list(reports[0].utilizations)
    utils = {
        k: float(np.mean([r.utilizations[k] for r in reports])) for k in util_keys
    }
    merged = SimulationReport.from_records(
        records,
        horizon,
        utils,
        discarded=sum(r.discarded_warmup for r in reports),
    )
    merged.counters = SimCounters.merged(
        {i: r.counters for i, r in enumerate(reports)}
    )
    return merged
