"""FIFO resources: compute queues and (possibly time-varying) links.

Both resources serialize jobs in submission order.  Because service times are
computable at start-of-service, the implementation tracks a single
``busy_until`` horizon instead of an explicit queue — submission returns the
(start, finish) pair and the caller schedules its continuation at ``finish``.

:class:`LinkResource` additionally supports a piecewise-constant
:class:`~repro.network.wireless.BandwidthTrace`: a transfer spanning trace
change-points is integrated segment by segment, so dynamic-bandwidth
experiments are exact rather than sampled.

Both resources accept an optional
:class:`~repro.telemetry.timeline.TimelineRecorder`; with one attached they
track in-flight job counts and sample ``sim.queue_depth.<name>`` /
``sim.utilization.<name>`` gauges at every submission boundary.  Without a
recorder (the default) none of that bookkeeping runs.

**Failure state** (driven by :mod:`repro.faults`): both resources can be
marked down (:meth:`FifoResource.fail`) and back up
(:meth:`FifoResource.recover`).  Going down abandons all queued/in-flight
work — the busy horizon is clamped to the failure instant and the abandoned
residual is removed from the utilization accounting (interrupted requests
re-drive their own recovery via the failure policy layer).  Submitting to a
downed resource raises :class:`~repro.errors.ResourceUnavailableError`; the
failure-aware request path checks :meth:`FifoResource.available` first, so
the raise only fires on policy-layer bugs.  A ``speed_factor`` (straggler
slowdowns, link degradation) scales the effective service rate for jobs
*starting* under it; at the default factor of 1.0 the arithmetic is
bit-identical to the pre-fault code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import FaultError, ResourceUnavailableError, SimulationError
from repro.network.wireless import BandwidthTrace
from repro.telemetry.timeline import TimelineRecorder


class _FailureStateMixin:
    """Up/down lifecycle shared by compute and link resources.

    Host classes provide ``name``, ``_busy_until`` and ``busy_time``.
    """

    def _init_failure_state(self) -> None:
        self._down_since: Optional[float] = None
        self.outages: List[Tuple[float, float]] = []  # closed [fail, recover]
        self.speed_factor = 1.0

    @property
    def is_down(self) -> bool:
        return self._down_since is not None

    def available(self, now: float) -> bool:
        """True when the resource can accept work at ``now``."""
        del now  # state-based: the injector toggles us exactly at boundaries
        return self._down_since is None

    def fail(self, now: float) -> None:
        """Take the resource down at ``now``, abandoning queued work.

        The busy horizon is clamped to ``now`` and the un-served residual is
        subtracted from ``busy_time`` so utilization reflects work actually
        performed.  Interrupted requests are the caller's problem — the
        failure policy layer re-submits, fails over, or degrades them.
        """
        if self._down_since is not None:
            raise FaultError(f"{self.name}: fail() while already down")
        if now < 0:
            raise FaultError(f"{self.name}: negative failure time {now}")
        self._down_since = now
        if self._busy_until > now:
            self.busy_time -= self._busy_until - now
            self._busy_until = now

    def recover(self, now: float) -> None:
        """Bring the resource back up at ``now`` with an empty queue."""
        if self._down_since is None:
            raise FaultError(f"{self.name}: recover() while not down")
        if now < self._down_since:
            raise FaultError(
                f"{self.name}: recovery at t={now:.6g} precedes failure at "
                f"t={self._down_since:.6g}"
            )
        self.outages.append((self._down_since, now))
        self._down_since = None
        self._busy_until = max(self._busy_until, now)

    def set_speed_factor(self, factor: float) -> None:
        """Scale the effective service rate (stragglers / degradation).

        Applies to jobs *starting* service from now on; a job spanning the
        change keeps the factor it started under.
        """
        if factor <= 0:
            raise FaultError(f"{self.name}: speed factor must be positive")
        self.speed_factor = factor

    def _raise_down(self, now: float) -> None:
        raise ResourceUnavailableError(
            f"{self.name}: submit at t={now:.6g} while down since "
            f"t={self._down_since:.6g}"
        )


#: chained-sweep tuning: segments at least this long count as "saturated";
#: two consecutive shorter segments hand the remainder to the scalar loop
_CHAIN_MIN_SEGMENT = 4096
#: cumsum window per chained attempt (bounds worst-case re-scan cost)
_CHAIN_WINDOW = 65536


def _chained_sweep(
    now: np.ndarray, svc: np.ndarray, busy: float
) -> Tuple[np.ndarray, np.ndarray, float]:
    """FIFO busy-chain recurrence over jobs in submission order.

    Computes ``start_i = max(now_i, busy_{i-1}); busy_i = start_i + svc_i``
    with float arithmetic **bit-identical** to the sequential loop: while the
    resource stays continuously busy the recurrence is a running sum, and
    ``np.cumsum`` performs the identical sequence of additions (seeded by
    prepending the segment's start), so whole busy segments vectorize.  The
    segment boundary test (``now_j > busy_{j-1}``) uses those exact values,
    so segmentation decisions can never diverge from the loop.  Saturated
    sweeps (one long busy segment — the regime the streaming simulator
    targets) collapse to a handful of cumsum passes; when segments turn
    short (lightly loaded queue, where vectorization cannot win) the
    remainder falls back to the scalar loop.
    """
    n = now.shape[0]
    starts = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    i = 0
    short_segments = 0
    while i < n and short_segments < 2:
        start0 = busy if busy > now[i] else now[i]
        hi = min(n, i + _CHAIN_WINDOW)
        chain = np.cumsum(np.concatenate(([start0], svc[i:hi])))[1:]
        breaks = np.flatnonzero(now[i + 1 : hi] > chain[:-1])
        k = (int(breaks[0]) + 1) if breaks.size else (hi - i)
        starts[i] = start0
        starts[i + 1 : i + k] = chain[: k - 1]
        finishes[i : i + k] = chain[:k]
        busy = float(chain[k - 1])
        i += k
        short_segments = 0 if k >= _CHAIN_MIN_SEGMENT else short_segments + 1
    if i < n:
        now_tail = now[i:].tolist()
        svc_tail = svc[i:].tolist()
        for j, (t, s) in enumerate(zip(now_tail, svc_tail), start=i):
            start = busy if busy > t else t
            busy = start + s
            starts[j] = start
            finishes[j] = busy
    return starts, finishes, busy


def _sequential_total(initial: float, values: np.ndarray) -> float:
    """``((initial + v0) + v1) + ...`` — the scalar accumulation order."""
    if values.size == 0:
        return initial
    return float(np.cumsum(np.concatenate(([initial], values)))[-1])


class FifoResource(_FailureStateMixin):
    """Single FIFO server with a fixed service rate (FLOP/s or B/s)."""

    def __init__(
        self,
        name: str,
        rate: float,
        overhead_s: float = 0.0,
        recorder: Optional[TimelineRecorder] = None,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"{name}: rate must be positive")
        if overhead_s < 0:
            raise SimulationError(f"{name}: overhead must be >= 0")
        self.name = name
        self.rate = rate
        self.overhead_s = overhead_s
        self.recorder = recorder
        self._busy_until = 0.0
        self.busy_time = 0.0  # total service time (utilization accounting)
        self.jobs = 0
        self._inflight: List[float] = []  # finish times (recorder only)
        self._init_failure_state()

    def depth(self, now: float) -> int:
        """Jobs submitted but not yet finished (tracked only with a recorder)."""
        self._inflight = [f for f in self._inflight if f > now]
        return len(self._inflight)

    def _observe(self, now: float, finish: float) -> None:
        rec = self.recorder
        assert rec is not None
        self._inflight.append(finish)
        rec.sample(f"sim.queue_depth.{self.name}", now, self.depth(now))
        if now > 0:
            rec.sample(f"sim.utilization.{self.name}", now, min(1.0, self.busy_time / now))

    def submit(self, now: float, amount: float) -> Tuple[float, float]:
        """Enqueue ``amount`` of work at time ``now``; return (start, finish).

        Zero-amount jobs pass through instantly without paying overhead.
        """
        if amount < 0:
            raise SimulationError(f"{self.name}: negative work {amount}")
        if now < 0:
            raise SimulationError(f"{self.name}: negative submit time")
        if self._down_since is not None:
            self._raise_down(now)
        if amount == 0:
            return now, now
        start = max(now, self._busy_until)
        service = amount / (self.rate * self.speed_factor) + self.overhead_s
        finish = start + service
        self._busy_until = finish
        self.busy_time += service
        self.jobs += 1
        if self.recorder is not None:
            self._observe(now, finish)
        return start, finish

    def sweep(self, times: np.ndarray, amounts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`submit` over jobs already in submission order.

        Performs the identical float arithmetic and state updates as ``len(times)``
        sequential :meth:`submit` calls — bit-for-bit, including the
        zero-amount pass-through — in one lean recurrence loop.  Only valid
        without a recorder (the event loop owns gauge sampling).
        """
        if self.recorder is not None:  # pragma: no cover - guarded by caller
            raise SimulationError(f"{self.name}: sweep requires no recorder")
        if self.is_down or self.outages or self.speed_factor != 1.0:
            # pragma: no cover - fault runs force the event loop
            raise SimulationError(f"{self.name}: sweep is incompatible with faults")
        times = np.asarray(times, dtype=np.float64)
        amounts = np.asarray(amounts, dtype=np.float64)
        if np.any(amounts < 0):
            bad = float(amounts[amounts < 0][0])
            raise SimulationError(f"{self.name}: negative work {bad}")
        if np.any(times < 0):
            raise SimulationError(f"{self.name}: negative submit time")
        starts = np.empty(times.shape[0], dtype=np.float64)
        finishes = np.empty(times.shape[0], dtype=np.float64)
        nz = np.flatnonzero(amounts > 0)
        if nz.size < times.shape[0]:  # zero-amount jobs pass through instantly
            zero = amounts == 0
            starts[zero] = times[zero]
            finishes[zero] = times[zero]
        if nz.size:
            svc = amounts[nz] / self.rate + self.overhead_s
            s_nz, f_nz, busy = _chained_sweep(times[nz], svc, self._busy_until)
            starts[nz] = s_nz
            finishes[nz] = f_nz
            self._busy_until = busy
            self.busy_time = _sequential_total(self.busy_time, svc)
            self.jobs += int(nz.size)
        return starts, finishes

    def utilization(self, horizon_s: float) -> float:
        """Fraction of ``[0, horizon]`` this resource spent serving."""
        if horizon_s <= 0:
            raise SimulationError("horizon must be positive")
        return min(1.0, self.busy_time / horizon_s)


class LinkResource(_FailureStateMixin):
    """FIFO link with fixed or trace-driven bandwidth.

    With a trace, a transfer starting at ``t`` finishes when the integral of
    bandwidth over ``[t, finish]`` equals the transfer size — computed
    exactly by walking the piecewise-constant segments.
    """

    def __init__(
        self,
        name: str,
        bandwidth_bps: float,
        rtt_s: float = 0.0,
        share: float = 1.0,
        trace: Optional[BandwidthTrace] = None,
        recorder: Optional[TimelineRecorder] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive")
        if not (0.0 < share <= 1.0 + 1e-12):
            raise SimulationError(f"{name}: share must be in (0,1]")
        if rtt_s < 0:
            raise SimulationError(f"{name}: rtt must be >= 0")
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.rtt_s = rtt_s
        self.share = share
        self.trace = trace
        self.recorder = recorder
        self._busy_until = 0.0
        self.busy_time = 0.0
        self.transfers = 0
        self._inflight: List[float] = []  # serialization-finish times (recorder only)
        self._init_failure_state()

    def depth(self, now: float) -> int:
        """Transfers submitted but not fully serialized (recorder only)."""
        self._inflight = [f for f in self._inflight if f > now]
        return len(self._inflight)

    def _serialization_finish(self, start: float, nbytes: float) -> float:
        if self.trace is None:
            return start + nbytes / (self.bandwidth_bps * self.share * self.speed_factor)
        # integrate share-scaled trace bandwidth over time
        times, values = self.trace.times, self.trace.values
        remaining = nbytes
        t = start
        idx = int(np.searchsorted(times, t, side="right")) - 1
        while True:
            rate = float(values[idx]) * self.share * self.speed_factor
            seg_end = float(times[idx + 1]) if idx + 1 < len(times) else np.inf
            span = seg_end - t
            capacity = rate * span
            if capacity >= remaining or not np.isfinite(seg_end):
                return t + remaining / rate
            remaining -= capacity
            t = seg_end
            idx += 1

    def submit(self, now: float, nbytes: float) -> Tuple[float, float]:
        """Enqueue a transfer; returns (start, delivery) where delivery
        includes one-way propagation (rtt/2).

        Propagation does **not** occupy the channel: the link is free for the
        next transfer as soon as serialization ends (bits in flight don't
        block the sender).  Zero-byte transfers complete instantly.
        """
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer {nbytes}")
        if self._down_since is not None:
            self._raise_down(now)
        if nbytes == 0:
            return now, now
        start = max(now, self._busy_until)
        serialized = self._serialization_finish(start, nbytes)
        if serialized < start:  # pragma: no cover - defensive
            raise SimulationError(f"{self.name}: negative transfer duration")
        self._busy_until = serialized
        self.busy_time += serialized - start
        self.transfers += 1
        if self.recorder is not None:
            self._inflight.append(serialized)
            self.recorder.sample(f"sim.queue_depth.{self.name}", now, self.depth(now))
            if now > 0:
                self.recorder.sample(
                    f"sim.utilization.{self.name}", now, min(1.0, self.busy_time / now)
                )
        return start, serialized + self.rtt_s / 2.0

    def sweep(self, times: np.ndarray, nbytes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`submit` over transfers already in submission order.

        Same float arithmetic and state updates as sequential :meth:`submit`
        calls (including trace-segment integration via
        :meth:`_serialization_finish`); returns (starts, deliveries).  Only
        valid without a recorder.
        """
        if self.recorder is not None:  # pragma: no cover - guarded by caller
            raise SimulationError(f"{self.name}: sweep requires no recorder")
        if self.is_down or self.outages or self.speed_factor != 1.0:
            # pragma: no cover - fault runs force the event loop
            raise SimulationError(f"{self.name}: sweep is incompatible with faults")
        times = np.asarray(times, dtype=np.float64)
        nbytes = np.asarray(nbytes, dtype=np.float64)
        if np.any(nbytes < 0):
            bad = float(nbytes[nbytes < 0][0])
            raise SimulationError(f"{self.name}: negative transfer {bad}")
        starts = np.empty(times.shape[0], dtype=np.float64)
        deliveries = np.empty(times.shape[0], dtype=np.float64)
        half_rtt = self.rtt_s / 2.0
        if self.trace is not None:
            # trace integration is inherently per-transfer: keep the loop
            busy = self._busy_until
            busy_time = self.busy_time
            transfers = self.transfers
            for i, (now, nb) in enumerate(zip(times.tolist(), nbytes.tolist())):
                if nb == 0:
                    starts[i] = now
                    deliveries[i] = now
                    continue
                start = busy if busy > now else now  # == max(now, busy)
                serialized = self._serialization_finish(start, nb)
                busy = serialized
                busy_time += serialized - start
                transfers += 1
                starts[i] = start
                deliveries[i] = serialized + half_rtt
            self._busy_until = busy
            self.busy_time = busy_time
            self.transfers = transfers
            return starts, deliveries
        nz = np.flatnonzero(nbytes > 0)
        if nz.size < times.shape[0]:  # zero-byte transfers complete instantly
            zero = nbytes == 0
            starts[zero] = times[zero]
            deliveries[zero] = times[zero]
        if nz.size:
            svc = nbytes[nz] / (self.bandwidth_bps * self.share)
            s_nz, serialized, busy = _chained_sweep(times[nz], svc, self._busy_until)
            starts[nz] = s_nz
            deliveries[nz] = serialized + half_rtt
            self._busy_until = busy
            self.busy_time = _sequential_total(self.busy_time, serialized - s_nz)
            self.transfers += int(nz.size)
        return starts, deliveries
