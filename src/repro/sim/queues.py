"""FIFO resources: compute queues and (possibly time-varying) links.

Both resources serialize jobs in submission order.  Because service times are
computable at start-of-service, the implementation tracks a single
``busy_until`` horizon instead of an explicit queue — submission returns the
(start, finish) pair and the caller schedules its continuation at ``finish``.

:class:`LinkResource` additionally supports a piecewise-constant
:class:`~repro.network.wireless.BandwidthTrace`: a transfer spanning trace
change-points is integrated segment by segment, so dynamic-bandwidth
experiments are exact rather than sampled.

Both resources accept an optional
:class:`~repro.telemetry.timeline.TimelineRecorder`; with one attached they
track in-flight job counts and sample ``sim.queue_depth.<name>`` /
``sim.utilization.<name>`` gauges at every submission boundary.  Without a
recorder (the default) none of that bookkeeping runs.

**Failure state** (driven by :mod:`repro.faults`): both resources can be
marked down (:meth:`FifoResource.fail`) and back up
(:meth:`FifoResource.recover`).  Going down abandons all queued/in-flight
work — the busy horizon is clamped to the failure instant and the abandoned
residual is removed from the utilization accounting (interrupted requests
re-drive their own recovery via the failure policy layer).  Submitting to a
downed resource raises :class:`~repro.errors.ResourceUnavailableError`; the
failure-aware request path checks :meth:`FifoResource.available` first, so
the raise only fires on policy-layer bugs.  A ``speed_factor`` (straggler
slowdowns, link degradation) scales the effective service rate for jobs
*starting* under it; at the default factor of 1.0 the arithmetic is
bit-identical to the pre-fault code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import FaultError, ResourceUnavailableError, SimulationError
from repro.network.wireless import BandwidthTrace
from repro.telemetry.timeline import TimelineRecorder


class _FailureStateMixin:
    """Up/down lifecycle shared by compute and link resources.

    Host classes provide ``name``, ``_busy_until`` and ``busy_time``.
    """

    def _init_failure_state(self) -> None:
        self._down_since: Optional[float] = None
        self.outages: List[Tuple[float, float]] = []  # closed [fail, recover]
        self.speed_factor = 1.0

    @property
    def is_down(self) -> bool:
        return self._down_since is not None

    def available(self, now: float) -> bool:
        """True when the resource can accept work at ``now``."""
        del now  # state-based: the injector toggles us exactly at boundaries
        return self._down_since is None

    def fail(self, now: float) -> None:
        """Take the resource down at ``now``, abandoning queued work.

        The busy horizon is clamped to ``now`` and the un-served residual is
        subtracted from ``busy_time`` so utilization reflects work actually
        performed.  Interrupted requests are the caller's problem — the
        failure policy layer re-submits, fails over, or degrades them.
        """
        if self._down_since is not None:
            raise FaultError(f"{self.name}: fail() while already down")
        if now < 0:
            raise FaultError(f"{self.name}: negative failure time {now}")
        self._down_since = now
        if self._busy_until > now:
            self.busy_time -= self._busy_until - now
            self._busy_until = now

    def recover(self, now: float) -> None:
        """Bring the resource back up at ``now`` with an empty queue."""
        if self._down_since is None:
            raise FaultError(f"{self.name}: recover() while not down")
        if now < self._down_since:
            raise FaultError(
                f"{self.name}: recovery at t={now:.6g} precedes failure at "
                f"t={self._down_since:.6g}"
            )
        self.outages.append((self._down_since, now))
        self._down_since = None
        self._busy_until = max(self._busy_until, now)

    def set_speed_factor(self, factor: float) -> None:
        """Scale the effective service rate (stragglers / degradation).

        Applies to jobs *starting* service from now on; a job spanning the
        change keeps the factor it started under.
        """
        if factor <= 0:
            raise FaultError(f"{self.name}: speed factor must be positive")
        self.speed_factor = factor

    def _raise_down(self, now: float) -> None:
        raise ResourceUnavailableError(
            f"{self.name}: submit at t={now:.6g} while down since "
            f"t={self._down_since:.6g}"
        )


class FifoResource(_FailureStateMixin):
    """Single FIFO server with a fixed service rate (FLOP/s or B/s)."""

    def __init__(
        self,
        name: str,
        rate: float,
        overhead_s: float = 0.0,
        recorder: Optional[TimelineRecorder] = None,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"{name}: rate must be positive")
        if overhead_s < 0:
            raise SimulationError(f"{name}: overhead must be >= 0")
        self.name = name
        self.rate = rate
        self.overhead_s = overhead_s
        self.recorder = recorder
        self._busy_until = 0.0
        self.busy_time = 0.0  # total service time (utilization accounting)
        self.jobs = 0
        self._inflight: List[float] = []  # finish times (recorder only)
        self._init_failure_state()

    def depth(self, now: float) -> int:
        """Jobs submitted but not yet finished (tracked only with a recorder)."""
        self._inflight = [f for f in self._inflight if f > now]
        return len(self._inflight)

    def _observe(self, now: float, finish: float) -> None:
        rec = self.recorder
        assert rec is not None
        self._inflight.append(finish)
        rec.sample(f"sim.queue_depth.{self.name}", now, self.depth(now))
        if now > 0:
            rec.sample(f"sim.utilization.{self.name}", now, min(1.0, self.busy_time / now))

    def submit(self, now: float, amount: float) -> Tuple[float, float]:
        """Enqueue ``amount`` of work at time ``now``; return (start, finish).

        Zero-amount jobs pass through instantly without paying overhead.
        """
        if amount < 0:
            raise SimulationError(f"{self.name}: negative work {amount}")
        if now < 0:
            raise SimulationError(f"{self.name}: negative submit time")
        if self._down_since is not None:
            self._raise_down(now)
        if amount == 0:
            return now, now
        start = max(now, self._busy_until)
        service = amount / (self.rate * self.speed_factor) + self.overhead_s
        finish = start + service
        self._busy_until = finish
        self.busy_time += service
        self.jobs += 1
        if self.recorder is not None:
            self._observe(now, finish)
        return start, finish

    def sweep(self, times: np.ndarray, amounts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`submit` over jobs already in submission order.

        Performs the identical float arithmetic and state updates as ``len(times)``
        sequential :meth:`submit` calls — bit-for-bit, including the
        zero-amount pass-through — in one lean recurrence loop.  Only valid
        without a recorder (the event loop owns gauge sampling).
        """
        if self.recorder is not None:  # pragma: no cover - guarded by caller
            raise SimulationError(f"{self.name}: sweep requires no recorder")
        if self.is_down or self.outages or self.speed_factor != 1.0:
            # pragma: no cover - fault runs force the event loop
            raise SimulationError(f"{self.name}: sweep is incompatible with faults")
        starts = np.empty(times.shape[0], dtype=np.float64)
        finishes = np.empty(times.shape[0], dtype=np.float64)
        busy = self._busy_until
        busy_time = self.busy_time
        jobs = self.jobs
        rate = self.rate
        overhead = self.overhead_s
        for i, (now, amount) in enumerate(zip(times.tolist(), amounts.tolist())):
            if amount < 0:
                raise SimulationError(f"{self.name}: negative work {amount}")
            if now < 0:
                raise SimulationError(f"{self.name}: negative submit time")
            if amount == 0:
                starts[i] = now
                finishes[i] = now
                continue
            start = busy if busy > now else now  # == max(now, busy)
            service = amount / rate + overhead
            busy = start + service
            busy_time += service
            jobs += 1
            starts[i] = start
            finishes[i] = busy
        self._busy_until = busy
        self.busy_time = busy_time
        self.jobs = jobs
        return starts, finishes

    def utilization(self, horizon_s: float) -> float:
        """Fraction of ``[0, horizon]`` this resource spent serving."""
        if horizon_s <= 0:
            raise SimulationError("horizon must be positive")
        return min(1.0, self.busy_time / horizon_s)


class LinkResource(_FailureStateMixin):
    """FIFO link with fixed or trace-driven bandwidth.

    With a trace, a transfer starting at ``t`` finishes when the integral of
    bandwidth over ``[t, finish]`` equals the transfer size — computed
    exactly by walking the piecewise-constant segments.
    """

    def __init__(
        self,
        name: str,
        bandwidth_bps: float,
        rtt_s: float = 0.0,
        share: float = 1.0,
        trace: Optional[BandwidthTrace] = None,
        recorder: Optional[TimelineRecorder] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise SimulationError(f"{name}: bandwidth must be positive")
        if not (0.0 < share <= 1.0 + 1e-12):
            raise SimulationError(f"{name}: share must be in (0,1]")
        if rtt_s < 0:
            raise SimulationError(f"{name}: rtt must be >= 0")
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.rtt_s = rtt_s
        self.share = share
        self.trace = trace
        self.recorder = recorder
        self._busy_until = 0.0
        self.busy_time = 0.0
        self.transfers = 0
        self._inflight: List[float] = []  # serialization-finish times (recorder only)
        self._init_failure_state()

    def depth(self, now: float) -> int:
        """Transfers submitted but not fully serialized (recorder only)."""
        self._inflight = [f for f in self._inflight if f > now]
        return len(self._inflight)

    def _serialization_finish(self, start: float, nbytes: float) -> float:
        if self.trace is None:
            return start + nbytes / (self.bandwidth_bps * self.share * self.speed_factor)
        # integrate share-scaled trace bandwidth over time
        times, values = self.trace.times, self.trace.values
        remaining = nbytes
        t = start
        idx = int(np.searchsorted(times, t, side="right")) - 1
        while True:
            rate = float(values[idx]) * self.share * self.speed_factor
            seg_end = float(times[idx + 1]) if idx + 1 < len(times) else np.inf
            span = seg_end - t
            capacity = rate * span
            if capacity >= remaining or not np.isfinite(seg_end):
                return t + remaining / rate
            remaining -= capacity
            t = seg_end
            idx += 1

    def submit(self, now: float, nbytes: float) -> Tuple[float, float]:
        """Enqueue a transfer; returns (start, delivery) where delivery
        includes one-way propagation (rtt/2).

        Propagation does **not** occupy the channel: the link is free for the
        next transfer as soon as serialization ends (bits in flight don't
        block the sender).  Zero-byte transfers complete instantly.
        """
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer {nbytes}")
        if self._down_since is not None:
            self._raise_down(now)
        if nbytes == 0:
            return now, now
        start = max(now, self._busy_until)
        serialized = self._serialization_finish(start, nbytes)
        if serialized < start:  # pragma: no cover - defensive
            raise SimulationError(f"{self.name}: negative transfer duration")
        self._busy_until = serialized
        self.busy_time += serialized - start
        self.transfers += 1
        if self.recorder is not None:
            self._inflight.append(serialized)
            self.recorder.sample(f"sim.queue_depth.{self.name}", now, self.depth(now))
            if now > 0:
                self.recorder.sample(
                    f"sim.utilization.{self.name}", now, min(1.0, self.busy_time / now)
                )
        return start, serialized + self.rtt_s / 2.0

    def sweep(self, times: np.ndarray, nbytes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`submit` over transfers already in submission order.

        Same float arithmetic and state updates as sequential :meth:`submit`
        calls (including trace-segment integration via
        :meth:`_serialization_finish`); returns (starts, deliveries).  Only
        valid without a recorder.
        """
        if self.recorder is not None:  # pragma: no cover - guarded by caller
            raise SimulationError(f"{self.name}: sweep requires no recorder")
        if self.is_down or self.outages or self.speed_factor != 1.0:
            # pragma: no cover - fault runs force the event loop
            raise SimulationError(f"{self.name}: sweep is incompatible with faults")
        starts = np.empty(times.shape[0], dtype=np.float64)
        deliveries = np.empty(times.shape[0], dtype=np.float64)
        busy = self._busy_until
        busy_time = self.busy_time
        transfers = self.transfers
        half_rtt = self.rtt_s / 2.0
        fixed_rate = None if self.trace is not None else self.bandwidth_bps * self.share
        for i, (now, nb) in enumerate(zip(times.tolist(), nbytes.tolist())):
            if nb < 0:
                raise SimulationError(f"{self.name}: negative transfer {nb}")
            if nb == 0:
                starts[i] = now
                deliveries[i] = now
                continue
            start = busy if busy > now else now  # == max(now, busy)
            if fixed_rate is not None:
                serialized = start + nb / fixed_rate
            else:
                serialized = self._serialization_finish(start, nb)
            busy = serialized
            busy_time += serialized - start
            transfers += 1
            starts[i] = start
            deliveries[i] = serialized + half_rtt
        self._busy_until = busy
        self.busy_time = busy_time
        self.transfers = transfers
        return starts, deliveries
