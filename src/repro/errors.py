"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers can
catch library failures with a single ``except`` clause while letting genuine
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """Malformed model graph: cycles, dangling edges, shape mismatches."""


class ShapeError(ModelError):
    """A layer received an input shape it cannot process."""


class ProfileError(ReproError):
    """Missing or inconsistent profiling data for a (model, device) pair."""


class PlanError(ReproError):
    """An invalid surgery or allocation plan (e.g. cut point not in model,
    exit threshold out of range, compute share outside (0, 1])."""


class InfeasibleError(ReproError):
    """The optimization instance admits no feasible solution (e.g. the
    accuracy floor exceeds the model's best attainable accuracy)."""


class SimulationError(ReproError):
    """Internal inconsistency detected by the discrete-event simulator
    (events scheduled in the past, negative service times, ...)."""


class FaultError(SimulationError):
    """Invalid fault schedule or fault-injection state transition (overlapping
    outages on one target, recovering a resource that is not down, ...)."""


class ResourceUnavailableError(FaultError):
    """Work was submitted to a resource that is currently down.

    The failure-aware request path checks availability before submitting and
    turns unavailability into timeouts/retries/failover; this exception firing
    therefore indicates a policy-layer bug, not a simulated outcome."""


class ConvergenceError(ReproError):
    """An iterative solver exceeded its iteration budget without
    satisfying its convergence criterion."""


class ConfigError(ReproError):
    """Invalid configuration value."""
