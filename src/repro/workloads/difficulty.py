"""Input-difficulty presets.

The exit-rate of a multi-exit model is driven by how hard the deployment's
inputs are.  These presets name the three regimes the paper family's
motivation sections describe.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.models.exits import DifficultyDistribution

#: Named difficulty regimes (Beta(alpha, beta) over [0, 1]).
DIFFICULTY_PRESETS: Dict[str, DifficultyDistribution] = {
    # surveillance-style: mostly empty/easy frames, rare hard ones
    "easy": DifficultyDistribution(alpha=1.5, beta=6.0),
    # balanced benchmark-like mix
    "mixed": DifficultyDistribution(alpha=2.0, beta=5.0),
    # cluttered scenes / fine-grained classes: early exits rarely confident
    "hard": DifficultyDistribution(alpha=4.0, beta=2.5),
}


def difficulty_preset(name: str) -> DifficultyDistribution:
    """Look up a difficulty regime by name."""
    try:
        return DIFFICULTY_PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown difficulty preset {name!r}; available: {sorted(DIFFICULTY_PRESETS)}"
        ) from None
