"""Workload generation: scenarios, task mixes, difficulty and traces.

Builds the evaluation instances: an :class:`~repro.devices.cluster.EdgeCluster`
plus a list of :class:`~repro.core.plan.TaskSpec` with deadlines, accuracy
floors, arrival rates, and input-difficulty distributions drawn from named
application scenarios (video analytics, industrial inspection, AR) or fully
randomized (experiment E6's 200-scenario sweep).
"""

from repro.workloads.difficulty import DIFFICULTY_PRESETS, difficulty_preset
from repro.workloads.generator import RandomScenarioConfig, random_scenario
from repro.workloads.scenarios import Scenario, build_scenario, SCENARIOS

__all__ = [
    "DIFFICULTY_PRESETS",
    "RandomScenarioConfig",
    "SCENARIOS",
    "Scenario",
    "build_scenario",
    "difficulty_preset",
    "random_scenario",
]
