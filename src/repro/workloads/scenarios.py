"""Named application scenarios.

Each scenario fixes the cluster shape (device classes, server mix, access
bandwidth) and the task mix (models, deadlines, accuracy floors, rates,
difficulty regimes), parameterized by the number of tasks.  Scenario
parameters follow the workloads the paper family's introductions motivate:
city-scale video analytics, industrial visual inspection, and mobile AR.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.plan import TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.presets import SERVER_PRESETS, device_preset, heterogeneous_servers
from repro.errors import ConfigError
from repro.models import zoo
from repro.models.multiexit import MultiExitModel, insert_exits
from repro.network.link import Link
from repro.rng import SeedLike, as_generator, derive
from repro.units import mbps
from repro.workloads.difficulty import difficulty_preset


@dataclass(frozen=True)
class Scenario:
    """Declarative description of one evaluation scenario."""

    name: str
    #: (model, device preset, deadline_s, accuracy floor, rate, difficulty)
    task_templates: Tuple[Tuple[str, str, float, float, float, str], ...]
    server_names: Tuple[str, ...] = ("edge_cpu", "edge_gpu")
    access_mbps: float = 40.0
    rtt_s: float = 10e-3
    num_exits: int = 4

    def __post_init__(self) -> None:
        if not self.task_templates:
            raise ConfigError(f"scenario {self.name}: no task templates")
        if not self.server_names:
            raise ConfigError(f"scenario {self.name}: no servers")
        if self.access_mbps <= 0:
            raise ConfigError(f"scenario {self.name}: bandwidth must be positive")


#: The three named scenarios used by the examples and several experiments.
SCENARIOS: Dict[str, Scenario] = {
    # city-scale camera analytics: many cheap cameras, mostly easy frames,
    # soft 200 ms deadlines, heavyweight backbones
    "smart_city": Scenario(
        name="smart_city",
        task_templates=(
            ("resnet50", "raspberry_pi4", 0.20, 0.65, 4.0, "easy"),
            ("vgg16", "raspberry_pi4", 0.25, 0.62, 2.0, "easy"),
            ("resnet18", "raspberry_pi3", 0.20, 0.60, 5.0, "mixed"),
        ),
        server_names=("edge_cpu", "edge_gpu"),
        access_mbps=40.0,
    ),
    # factory-floor defect inspection: hard inputs, strict accuracy floors,
    # tight 80 ms deadlines, wired links
    "industrial": Scenario(
        name="industrial",
        task_templates=(
            ("resnet34", "jetson_nano", 0.08, 0.70, 10.0, "hard"),
            ("inception_v1", "jetson_nano", 0.08, 0.66, 8.0, "hard"),
            ("mobilenet_v2", "raspberry_pi4", 0.06, 0.64, 15.0, "mixed"),
        ),
        server_names=("edge_gpu", "edge_gpu"),
        access_mbps=200.0,
        rtt_s=2e-3,
    ),
    # mobile AR: phones over wireless, 50 ms budgets, lightweight models
    "mobile_ar": Scenario(
        name="mobile_ar",
        task_templates=(
            ("mobilenet_v2", "smartphone", 0.05, 0.62, 12.0, "mixed"),
            ("mobilenet_v1", "smartphone", 0.05, 0.60, 12.0, "mixed"),
            ("resnet18", "smartphone", 0.07, 0.62, 8.0, "easy"),
        ),
        server_names=("edge_tx2", "edge_gpu"),
        access_mbps=25.0,
        rtt_s=15e-3,
    ),
}

#: cache of multi-exit transforms, keyed by (model, exits, difficulty preset)
_MODEL_CACHE: Dict[Tuple[str, int, str], MultiExitModel] = {}


def multiexit_model(model_name: str, num_exits: int, difficulty: str) -> MultiExitModel:
    """Build (and cache) the multi-exit transform of a zoo model.

    The transform is deterministic, so caching is safe and saves the graph
    construction + competence calibration on repeated scenario builds.
    """
    key = (model_name, num_exits, difficulty)
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = insert_exits(
            zoo.build(model_name),
            num_exits=num_exits,
            difficulty=difficulty_preset(difficulty),
        )
    return _MODEL_CACHE[key]


def build_scenario(
    scenario: "Scenario | str",
    num_tasks: int = 6,
    num_servers: Optional[int] = None,
    access_mbps: Optional[float] = None,
    server_spread: Optional[float] = None,
    seed: SeedLike = None,
) -> Tuple[EdgeCluster, List[TaskSpec]]:
    """Instantiate a scenario: cluster + ``num_tasks`` tasks.

    Tasks cycle through the scenario's templates; each task gets its own end
    device (named ``dev<i>``).  ``num_servers``/``server_spread`` override the
    scenario's server list with a generated heterogeneous set; ``access_mbps``
    overrides the access bandwidth (the experiment sweep knobs).
    """
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise ConfigError(
                f"unknown scenario {scenario!r}; available: {sorted(SCENARIOS)}"
            ) from None
    if num_tasks < 1:
        raise ConfigError("num_tasks must be >= 1")

    rng = as_generator(seed)
    # servers
    if num_servers is not None or server_spread is not None:
        n_srv = num_servers if num_servers is not None else len(scenario.server_names)
        spread = server_spread if server_spread is not None else 4.0
        servers = heterogeneous_servers(n_srv, spread=spread, base="edge_cpu", seed=rng)
    else:
        servers = []
        for i, sn in enumerate(scenario.server_names):
            proto = SERVER_PRESETS[sn]
            servers.append(dataclasses.replace(proto, name=f"{sn}_{i}"))

    bw = access_mbps if access_mbps is not None else scenario.access_mbps
    link = Link(mbps(bw), rtt_s=scenario.rtt_s)

    devices = []
    tasks: List[TaskSpec] = []
    for i in range(num_tasks):
        model_name, dev_preset, deadline, floor, rate, diff = scenario.task_templates[
            i % len(scenario.task_templates)
        ]
        dev = dataclasses.replace(device_preset(dev_preset), name=f"dev{i}")
        devices.append(dev)
        model = multiexit_model(model_name, scenario.num_exits, diff)
        tasks.append(
            TaskSpec(
                name=f"t{i}",
                model=model,
                device_name=dev.name,
                deadline_s=deadline,
                accuracy_floor=floor,
                arrival_rate=rate,
            )
        )
    cluster = EdgeCluster.star(devices, servers, link)
    return cluster, tasks
