"""Workload traces: diurnal rate patterns and trace persistence.

Real request streams are not stationary: camera analytics follow traffic
cycles, AR follows human activity.  This module generates non-homogeneous
arrival processes from a rate *envelope* and round-trips traces through
simple CSV files so experiments can replay recorded workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.rng import SeedLike, as_generator


@dataclass(frozen=True)
class DiurnalPattern:
    """Sinusoidal day/night rate envelope.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t/period + phase)))``,
    clipped below at ``floor_fraction * base``.  Amplitude in [0, 1).
    """

    base_rate: float
    amplitude: float = 0.6
    period_s: float = 86400.0
    phase: float = 0.0
    floor_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ConfigError("base_rate must be positive")
        if not (0.0 <= self.amplitude < 1.0):
            raise ConfigError("amplitude must be in [0, 1)")
        if self.period_s <= 0:
            raise ConfigError("period must be positive")
        if not (0.0 < self.floor_fraction <= 1.0):
            raise ConfigError("floor_fraction must be in (0, 1]")

    def rate(self, t: "np.ndarray | float") -> np.ndarray:
        """Instantaneous arrival rate at time(s) ``t``."""
        t = np.asarray(t, dtype=float)
        r = self.base_rate * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * (t / self.period_s + self.phase))
        )
        return np.maximum(r, self.base_rate * self.floor_fraction)

    def peak_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)

    def generate(self, horizon_s: float, seed: SeedLike = None) -> np.ndarray:
        """Sample arrivals by thinning a homogeneous Poisson process.

        Standard non-homogeneous Poisson sampling: draw candidates at the
        peak rate, accept each with probability ``rate(t)/peak``.
        """
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        rng = as_generator(seed)
        peak = self.peak_rate()
        n_cand = rng.poisson(peak * horizon_s)
        cand = np.sort(rng.uniform(0.0, horizon_s, size=n_cand))
        accept = rng.uniform(0.0, 1.0, size=n_cand) < self.rate(cand) / peak
        return cand[accept]


def windowed_rates(
    arrivals: np.ndarray, horizon_s: float, window_s: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical arrival rate per window — what an online controller measures.

    Returns (window start times, rates).  Used to drive
    :class:`~repro.core.online.OnlineController` from a recorded trace.
    """
    if horizon_s <= 0 or window_s <= 0:
        raise ConfigError("horizon and window must be positive")
    arrivals = np.asarray(arrivals, dtype=float)
    if arrivals.size and (arrivals.min() < 0 or arrivals.max() >= horizon_s):
        raise ConfigError("arrivals must lie in [0, horizon)")
    n_win = int(np.ceil(horizon_s / window_s))
    edges = np.arange(n_win + 1) * window_s
    counts, _ = np.histogram(arrivals, bins=np.minimum(edges, horizon_s))
    widths = np.diff(np.minimum(edges, horizon_s))
    with np.errstate(divide="ignore", invalid="ignore"):
        rates = np.where(widths > 0, counts / widths, 0.0)
    return edges[:-1], rates


def save_trace(arrivals: Sequence[float], path: str) -> None:
    """Write arrival timestamps, one per line."""
    arr = np.asarray(arrivals, dtype=float)
    if arr.size and np.any(np.diff(arr) <= 0):
        raise ConfigError("trace must be strictly increasing")
    with open(path, "w") as fh:
        fh.write("# arrival_s\n")
        for t in arr:
            fh.write(f"{t:.9f}\n")


def load_trace(path: str) -> np.ndarray:
    """Read a trace written by :func:`save_trace`."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            out.append(float(line))
    arr = np.array(out)
    if arr.size and np.any(np.diff(arr) <= 0):
        raise ConfigError(f"trace in {path} is not strictly increasing")
    return arr
