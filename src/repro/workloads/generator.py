"""Randomized scenario generation (experiment E6's 200-scenario sweep).

Samples clusters and task mixes from wide but physically sensible ranges so
speedup distributions are measured across the deployment space rather than at
one cherry-picked operating point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.plan import TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.presets import DEVICE_PRESETS, device_preset, heterogeneous_servers
from repro.errors import ConfigError
from repro.models import zoo
from repro.network.link import Link
from repro.rng import SeedLike, as_generator
from repro.units import mbps
from repro.workloads.difficulty import DIFFICULTY_PRESETS
from repro.workloads.scenarios import multiexit_model


@dataclass(frozen=True)
class RandomScenarioConfig:
    """Sampling ranges for :func:`random_scenario`."""

    num_tasks: Tuple[int, int] = (3, 10)
    num_servers: Tuple[int, int] = (1, 4)
    server_spread: Tuple[float, float] = (1.0, 8.0)
    access_mbps: Tuple[float, float] = (5.0, 150.0)
    rtt_ms: Tuple[float, float] = (2.0, 30.0)
    deadline_ms: Tuple[float, float] = (40.0, 400.0)
    accuracy_floor: Tuple[float, float] = (0.55, 0.70)
    arrival_rate: Tuple[float, float] = (1.0, 12.0)
    num_exits: int = 4
    models: Tuple[str, ...] = (
        "alexnet",
        "resnet18",
        "resnet34",
        "resnet50",
        "vgg16",
        "mobilenet_v1",
        "mobilenet_v2",
        "inception_v1",
    )

    def __post_init__(self) -> None:
        for lo, hi in (
            self.num_tasks,
            self.num_servers,
            self.server_spread,
            self.access_mbps,
            self.rtt_ms,
            self.deadline_ms,
            self.accuracy_floor,
            self.arrival_rate,
        ):
            if lo > hi:
                raise ConfigError(f"range ({lo}, {hi}) is inverted")
        unknown = set(self.models) - set(zoo.available_models())
        if unknown:
            raise ConfigError(f"unknown models in config: {sorted(unknown)}")


def random_scenario(
    seed: SeedLike, config: RandomScenarioConfig = RandomScenarioConfig()
) -> Tuple[EdgeCluster, List[TaskSpec]]:
    """Sample one randomized (cluster, tasks) instance."""
    rng = as_generator(seed)
    n_tasks = int(rng.integers(config.num_tasks[0], config.num_tasks[1] + 1))
    n_servers = int(rng.integers(config.num_servers[0], config.num_servers[1] + 1))
    spread = float(rng.uniform(*config.server_spread))
    bw = float(rng.uniform(*config.access_mbps))
    rtt = float(rng.uniform(*config.rtt_ms)) * 1e-3

    servers = heterogeneous_servers(n_servers, spread=spread, seed=rng)
    device_names = list(DEVICE_PRESETS)
    difficulty_names = sorted(DIFFICULTY_PRESETS)

    devices = []
    tasks: List[TaskSpec] = []
    for i in range(n_tasks):
        dp = device_names[int(rng.integers(len(device_names)))]
        dev = dataclasses.replace(device_preset(dp), name=f"dev{i}")
        devices.append(dev)
        model_name = config.models[int(rng.integers(len(config.models)))]
        diff = difficulty_names[int(rng.integers(len(difficulty_names)))]
        model = multiexit_model(model_name, config.num_exits, diff)
        floor = float(rng.uniform(*config.accuracy_floor))
        # clamp the floor below this model's best attainable accuracy
        floor = min(floor, model.accuracy_model.final_accuracy - 0.02)
        tasks.append(
            TaskSpec(
                name=f"t{i}",
                model=model,
                device_name=dev.name,
                deadline_s=float(rng.uniform(*config.deadline_ms)) * 1e-3,
                accuracy_floor=floor,
                arrival_rate=float(rng.uniform(*config.arrival_rate)),
            )
        )
    cluster = EdgeCluster.star(devices, servers, Link(mbps(bw), rtt_s=rtt))
    return cluster, tasks
