"""Candidate plan sets: array-of-structs view + dominance pruning.

A :class:`CandidateSet` packs a task's enumerated plan features into parallel
NumPy arrays so the joint optimizer evaluates *all* candidates under a given
allocation with a single vectorized expression, then argmins.

Pruning removes plans dominated in the 5-dimensional feature space
(dev_flops, srv_flops, wire_bytes, p_offload | accuracy): if plan B costs at
least as much as plan A on every resource and achieves no more accuracy, no
allocation can ever make B preferable, so B can be dropped *before* any
allocation is known.  This typically shrinks ~10^3 enumerated plans to a few
dozen undominated ones and is what keeps the joint solver fast.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import PlanFeatures, SurgeryPlan, TaskSpec
from repro.core.surgery import (
    DEFAULT_MAX_CUTS,
    DEFAULT_THRESHOLD_GRID,
    enumerate_features,
    plan_latency,
)
from repro.devices.device import DeviceSpec
from repro.devices.latency import LatencyModel
from repro.errors import InfeasibleError, PlanError
from repro.network.link import Link

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.risk import RiskConfig

#: Parallel-array attributes of :class:`CandidateSet`, in construction order.
#: Derived sets are produced by slicing these (see :meth:`CandidateSet._take`)
#: instead of re-listing features and rebuilding every array from Python.
_ARRAY_FIELDS: Tuple[str, ...] = (
    "dev_flops",
    "srv_flops",
    "wire_bytes",
    "p_offload",
    "accuracy",
    "dev_flops_sq",
    "srv_flops_sq",
    "wire_bytes_sq",
)


@dataclass
class CandidateSet:
    """Parallel-array view over a task's candidate plans."""

    task: TaskSpec
    features: List[PlanFeatures]
    dev_flops: np.ndarray = field(init=False)
    srv_flops: np.ndarray = field(init=False)
    wire_bytes: np.ndarray = field(init=False)
    p_offload: np.ndarray = field(init=False)
    accuracy: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if not self.features:
            raise PlanError(f"{self.task.name}: empty candidate set")
        self.dev_flops = np.array([f.dev_flops for f in self.features])
        self.srv_flops = np.array([f.srv_flops for f in self.features])
        self.wire_bytes = np.array([f.wire_bytes for f in self.features])
        self.p_offload = np.array([f.p_offload for f in self.features])
        self.accuracy = np.array([f.accuracy for f in self.features])
        self.dev_flops_sq = np.array([f.dev_flops_sq for f in self.features])
        self.srv_flops_sq = np.array([f.srv_flops_sq for f in self.features])
        self.wire_bytes_sq = np.array([f.wire_bytes_sq for f in self.features])

    def __len__(self) -> int:
        return len(self.features)

    # -- transformations -----------------------------------------------------

    def _take(self, indices: Sequence[int]) -> "CandidateSet":
        """Derived set holding ``features[i] for i in indices``.

        Shares no mutable state with ``self``: the feature list is re-listed
        (cheap — it holds frozen objects) and every parallel array is sliced,
        skipping the per-feature Python attribute walk of ``__post_init__``.
        """
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            raise PlanError(f"{self.task.name}: empty candidate set")
        obj = object.__new__(CandidateSet)
        obj.task = self.task
        obj.features = [self.features[int(i)] for i in idx]
        for name in _ARRAY_FIELDS:
            setattr(obj, name, getattr(self, name)[idx])
        return obj

    def position_of(self, feats: PlanFeatures) -> Optional[int]:
        """Index of ``feats`` in this set, or ``None`` if absent.

        Identity is resolved through a lazily built id→index map (tasks of
        one template share a features list, so the map is built once per
        list, not once per lookup), then equality as a fallback — the same
        identity-then-equality semantics as a linear ``is`` scan followed by
        ``list.index``, at amortized O(1) instead of O(candidates).
        """
        cached = self.__dict__.get("_pos_by_id")
        if cached is None or cached[0] != len(self.features):
            pos: Dict[int, int] = {}
            for j, f in enumerate(self.features):
                pos.setdefault(id(f), j)
            cached = (len(self.features), pos)
            self.__dict__["_pos_by_id"] = cached
        j = cached[1].get(id(feats))
        if j is not None:
            return j
        try:
            return self.features.index(feats)
        except ValueError:
            return None

    def _with_task(self, task: TaskSpec) -> "CandidateSet":
        """Rebind a cached set to another task, sharing features and arrays.

        Safe because features are frozen and no caller mutates the parallel
        arrays (derived sets always copy via :meth:`_take`).
        """
        obj = object.__new__(CandidateSet)
        obj.task = task
        obj.features = self.features
        for name in _ARRAY_FIELDS:
            setattr(obj, name, getattr(self, name))
        return obj

    def filter_accuracy(self, floor: float) -> "CandidateSet":
        """Keep plans meeting the accuracy floor; raise if none do."""
        mask = self.accuracy >= floor - 1e-12
        if not mask.any():
            raise InfeasibleError(
                f"{self.task.name}: no plan reaches accuracy {floor:.3f} "
                f"(best attainable {float(self.accuracy.max()):.3f})"
            )
        return self._take(np.flatnonzero(mask))

    def local_only(self) -> "CandidateSet":
        """Subset of plans that never use a server."""
        mask = (self.p_offload <= 0.0) & (self.srv_flops <= 0.0)
        if not mask.any():
            raise InfeasibleError(f"{self.task.name}: no fully-local plan available")
        return self._take(np.flatnonzero(mask))

    def pruned(self) -> "CandidateSet":
        """Drop plans dominated on every resource at no accuracy gain.

        The pairwise dominance tests run as one blocked NumPy pass (the block
        bounds the broadcast temporaries); only the order-dependent keep scan
        — a kept plan cannot be disqualified by a plan dropped earlier —
        remains a Python loop, over precomputed booleans.
        """
        n = len(self.features)
        if n <= 1:
            return self._take(np.arange(n))
        cost = np.stack(
            [self.dev_flops, self.srv_flops, self.wire_bytes, self.p_offload], axis=1
        )
        acc = self.accuracy
        # dom[a, b]: a weakly dominates b on accuracy and every resource, and
        # is strictly better somewhere (same tolerances as the scalar test)
        dom = np.empty((n, n), dtype=bool)
        block = max(1, (1 << 22) // n)
        for start in range(0, n, block):
            sl = slice(start, min(start + block, n))
            dom[:, sl] = (
                (acc[:, None] >= (acc[sl] - 1e-12)[None, :])
                & np.all(cost[:, None, :] <= (cost[sl] + 1e-9)[None, :, :], axis=2)
                & (
                    (acc[:, None] > (acc[sl] + 1e-12)[None, :])
                    | np.any(cost[:, None, :] < (cost[sl] - 1e-9)[None, :, :], axis=2)
                )
            )
        keep_mask = np.ones(n, dtype=bool)
        kept_sofar = np.zeros(n, dtype=bool)
        # scan by accuracy descending so dominators are examined first
        for idx in np.argsort(-acc, kind="stable"):
            if np.any(dom[:, idx] & kept_sofar):
                keep_mask[idx] = False
            else:
                kept_sofar[idx] = True
        return self._take(np.flatnonzero(keep_mask))

    def subsample(self, k: int) -> "CandidateSet":
        """Evenly thin the set to at most ``k`` plans (accuracy-ordered).

        Used where the candidate count itself is the complexity driver
        (exhaustive enumeration in experiment E8).  Keeps both accuracy
        extremes; deterministic.
        """
        if k < 1:
            raise PlanError(f"subsample size must be >= 1, got {k}")
        n = len(self.features)
        if n <= k:
            return self._take(np.arange(n))
        order = np.argsort(self.accuracy, kind="stable")
        picks = np.unique(np.linspace(0, n - 1, k).round().astype(int))
        return self._take(order[picks])

    # -- evaluation ------------------------------------------------------------

    def latencies(
        self,
        device: DeviceSpec,
        latency_model: LatencyModel,
        server: Optional[DeviceSpec] = None,
        link: Optional[Link] = None,
        compute_share: float = 1.0,
        bandwidth_share: float = 1.0,
        server_wait_s: float = 0.0,
        arrival_rate: Optional[float] = None,
        risk: Optional["RiskConfig"] = None,
    ) -> np.ndarray:
        """Expected latency of every candidate under one allocation.

        With ``server=None`` only local-only candidates get finite latency;
        offloading candidates are reported as ``inf``.  Passing
        ``arrival_rate`` adds the per-stage M/G/1 congestion terms (same
        model as :func:`repro.core.allocation.solution_latencies`), so the
        surgery step can reject plans whose bottleneck stage cannot sustain
        the task's stream (those come back ``inf``).

        With an active ``risk`` config the returned values are *buffered*
        latencies ``μ + κ(ε)·σ`` (see :mod:`repro.core.risk`), so ranking
        candidates by this vector certifies ``P[latency ≤ deadline] ≥ 1−ε``
        rather than ``E[latency] ≤ deadline``; an inactive or absent risk
        config leaves the deterministic path bit-identical.
        """
        r_dev = latency_model.throughput(device)
        if server is None:
            t = np.where(
                self.dev_flops > 0,
                self.dev_flops / r_dev + device.overhead_s,
                0.0,
            )
            uses = (self.p_offload > 0) | (self.srv_flops > 0)
            t = np.where(uses, np.inf, t)
        else:
            t = plan_latency(
                self.dev_flops,
                self.srv_flops,
                self.wire_bytes,
                self.p_offload,
                device,
                latency_model,
                server=server,
                link=link,
                compute_share=compute_share,
                bandwidth_share=bandwidth_share,
                server_wait_s=server_wait_s,
            )
        if arrival_rate is not None:
            t = t + self._queue_waits(
                arrival_rate, device, latency_model, server, link,
                compute_share, bandwidth_share,
            )
        if risk is not None and risk.active:
            t = t + risk.kappa * self._latency_stds(
                device, latency_model, server, link,
                compute_share, bandwidth_share, arrival_rate, risk,
            )
        return t

    #: Ranking penalty (seconds per unit of bottleneck utilization) applied
    #: to overloaded candidates instead of ``inf``.  When *no* stable plan
    #: exists, the graded penalty still orders candidates by how overloaded
    #: they are, so the optimizer degrades gracefully (shed the most load)
    #: rather than choosing arbitrarily among equally-infinite options.  The
    #: objective reported by :func:`solution_latencies` remains an honest
    #: ``inf`` for unstable solutions.
    OVERLOAD_PENALTY_S = 1e4

    def _queue_waits(
        self,
        lam: float,
        device: DeviceSpec,
        latency_model: LatencyModel,
        server: Optional[DeviceSpec],
        link: Optional[Link],
        compute_share: float,
        bandwidth_share: float,
    ) -> np.ndarray:
        """Vectorized per-stage M/G/1 waiting time per candidate.

        Overloaded candidates receive a finite, utilization-graded penalty
        (see :data:`OVERLOAD_PENALTY_S`) so ranking keeps a gradient.
        """
        from repro.core.queueing import mg1_wait_vec

        r_dev = latency_model.throughput(device)
        oh_d = np.where(self.dev_flops > 0, device.overhead_s, 0.0)
        s1 = self.dev_flops / r_dev + oh_d
        s2 = self.dev_flops_sq / r_dev**2 + 2 * oh_d * self.dev_flops / r_dev + oh_d**2
        wait = np.where(
            s1 > 0, mg1_wait_vec(np.full_like(s1, lam), s1, np.maximum(s2, s1 * s1)), 0.0
        )
        rho_max = lam * s1
        if server is not None and link is not None:
            r_srv = latency_model.throughput(server) * compute_share
            bw = link.bandwidth_bps * bandwidth_share
            p = self.p_offload
            with np.errstate(divide="ignore", invalid="ignore"):
                m1 = np.where(p > 0, (self.srv_flops / p) / r_srv + server.overhead_s, 0.0)
                m2 = np.where(
                    p > 0,
                    (self.srv_flops_sq / p) / r_srv**2
                    + 2 * server.overhead_s * (self.srv_flops / p) / r_srv
                    + server.overhead_s**2,
                    0.0,
                )
                l1 = np.where(p > 0, (self.wire_bytes / p) / bw, 0.0)
                l2 = np.where(p > 0, (self.wire_bytes_sq / p) / bw**2, 0.0)
            w_srv = mg1_wait_vec(lam * p, m1, np.maximum(m2, m1 * m1))
            w_link = mg1_wait_vec(lam * p, l1, np.maximum(l2, l1 * l1))
            wait = wait + p * (w_srv + w_link)
            rho_max = np.maximum(rho_max, np.maximum(lam * p * m1, lam * p * l1))
        return np.where(np.isfinite(wait), wait, self.OVERLOAD_PENALTY_S * rho_max)

    def _latency_stds(
        self,
        device: DeviceSpec,
        latency_model: LatencyModel,
        server: Optional[DeviceSpec],
        link: Optional[Link],
        compute_share: float,
        bandwidth_share: float,
        arrival_rate: Optional[float],
        risk: "RiskConfig",
    ) -> np.ndarray:
        """Per-candidate latency-std upper bound σ (buffered-mode only).

        Sub-additive sum of per-stage stds (exit-mix second moments +
        multiplicative service jitter, :func:`repro.core.risk.stage_std`)
        plus the queueing-delay surrogates (:func:`repro.core.risk.wait_std`)
        when ``arrival_rate`` is given — mirroring, stage for stage, the
        mean terms this set's :meth:`latencies` accumulates.  Only entered
        when the risk config is active, so the deterministic path never pays
        for it.
        """
        from repro.core.queueing import mg1_wait_vec
        from repro.core.risk import stage_std, wait_std

        rv = risk.rel_var
        r_dev = latency_model.throughput(device)
        oh_d = np.where(self.dev_flops > 0, device.overhead_s, 0.0)
        w_dev = self.dev_flops / r_dev
        w2_dev = self.dev_flops_sq / r_dev**2
        sigma = stage_std(w_dev, w2_dev, oh_d, 1.0, rv)
        lam = arrival_rate
        if lam is not None:
            s1 = w_dev + oh_d
            s2 = w2_dev + 2 * oh_d * w_dev + oh_d**2
            dev_wait = np.where(
                s1 > 0,
                mg1_wait_vec(np.full_like(s1, lam), s1, np.maximum(s2, s1 * s1)),
                0.0,
            )
            sigma = sigma + wait_std(dev_wait, s1)
        if server is not None and link is not None:
            p = self.p_offload
            r_srv = latency_model.throughput(server) * compute_share
            bw = link.bandwidth_bps * bandwidth_share
            w_srv = self.srv_flops / r_srv
            w_wire = self.wire_bytes / bw
            sigma = (
                sigma
                + stage_std(w_srv, self.srv_flops_sq / r_srv**2, server.overhead_s, p, rv)
                + stage_std(w_wire, self.wire_bytes_sq / bw**2, 0.0, p, rv)
                + stage_std(0.0, 0.0, link.rtt_s, p, 0.0)
            )
            if lam is not None:
                with np.errstate(divide="ignore", invalid="ignore"):
                    m1 = np.where(p > 0, (w_srv / p) + server.overhead_s, 0.0)
                    m2 = np.where(
                        p > 0,
                        (self.srv_flops_sq / p) / r_srv**2
                        + 2 * server.overhead_s * (w_srv / p)
                        + server.overhead_s**2,
                        0.0,
                    )
                    l1 = np.where(p > 0, w_wire / p, 0.0)
                    l2 = np.where(p > 0, (self.wire_bytes_sq / p) / bw**2, 0.0)
                srv_wait = mg1_wait_vec(lam * p, m1, np.maximum(m2, m1 * m1))
                link_wait = mg1_wait_vec(lam * p, l1, np.maximum(l2, l1 * l1))
                sigma = sigma + wait_std(srv_wait, m1, p) + wait_std(link_wait, l1, p)
        return sigma

    def best(
        self,
        device: DeviceSpec,
        latency_model: LatencyModel,
        server: Optional[DeviceSpec] = None,
        link: Optional[Link] = None,
        compute_share: float = 1.0,
        bandwidth_share: float = 1.0,
        server_wait_s: float = 0.0,
    ) -> tuple:
        """(index, latency) of the fastest candidate under one allocation."""
        lat = self.latencies(
            device,
            latency_model,
            server=server,
            link=link,
            compute_share=compute_share,
            bandwidth_share=bandwidth_share,
            server_wait_s=server_wait_s,
        )
        idx = int(np.argmin(lat))
        return idx, float(lat[idx])


# -- candidate pipeline cache --------------------------------------------------
#
# The enumerate -> filter_accuracy -> pruned pipeline is a pure function of
# (model, threshold_grid, max_cuts, quantization_levels, accuracy_floor,
# prune) — nothing task-specific beyond the floor enters it.  Experiments
# instantiate many tasks over a handful of model templates (E9 cycles 3
# templates over 64 tasks) and re-plan repeatedly (E11), so the pipeline is
# memoized per process: raw enumerations and derived (filtered + pruned)
# sets are cached per model and rebound to each task by array sharing.
# Models are weakly keyed so ad-hoc models do not pin their candidates.


@dataclass
class CandidateCacheStats:
    """Hit/miss counts of the :func:`build_candidates` pipeline cache."""

    hits: int = 0
    misses: int = 0


_cache_lock = threading.Lock()
_raw_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_derived_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_cache_stats = CandidateCacheStats()


def candidate_cache_stats() -> CandidateCacheStats:
    """Snapshot of the process-wide candidate-pipeline cache counters."""
    with _cache_lock:
        return CandidateCacheStats(_cache_stats.hits, _cache_stats.misses)


def clear_candidate_cache() -> None:
    """Drop all cached candidate pipelines and reset the counters."""
    with _cache_lock:
        _raw_cache.clear()
        _derived_cache.clear()
        _cache_stats.hits = 0
        _cache_stats.misses = 0


def build_candidates(
    task: TaskSpec,
    threshold_grid: Optional[Sequence[float]] = None,
    max_cuts: Optional[int] = None,
    prune: bool = True,
    quantization_levels: Optional[Sequence[str]] = None,
    cache: bool = True,
) -> CandidateSet:
    """Enumerate, accuracy-filter, and prune a task's candidate plans.

    Pass ``quantization_levels=repro.models.quantization.ALL_LEVELS`` to add
    the precision knob to the search space (default: fp32 only).

    Results are memoized per (model, grid, cuts, levels, floor, prune) —
    see the cache notes above; ``cache=False`` forces a fresh build.  Cached
    and fresh builds are bit-identical (the pipeline is deterministic).
    """
    grid = tuple(threshold_grid) if threshold_grid is not None else DEFAULT_THRESHOLD_GRID
    cuts = int(max_cuts) if max_cuts is not None else DEFAULT_MAX_CUTS
    levels = tuple(quantization_levels) if quantization_levels is not None else ("fp32",)
    raw_key = (grid, cuts, levels)
    derived_key = raw_key + (float(task.accuracy_floor), bool(prune))

    if cache:
        with _cache_lock:
            per_model = _derived_cache.get(task.model)
            tmpl = per_model.get(derived_key) if per_model is not None else None
            if tmpl is not None:
                _cache_stats.hits += 1
        if tmpl is not None:
            return tmpl._with_task(task)

    raw: Optional[CandidateSet] = None
    if cache:
        with _cache_lock:
            per_model_raw = _raw_cache.get(task.model)
            raw = per_model_raw.get(raw_key) if per_model_raw is not None else None
        if raw is not None:
            raw = raw._with_task(task)
    if raw is None:
        feats = enumerate_features(
            task.model, threshold_grid=grid, max_cuts=cuts, quantization_levels=levels
        )
        raw = CandidateSet(task, feats)
        if cache:
            with _cache_lock:
                _raw_cache.setdefault(task.model, {})[raw_key] = raw

    cs = raw.filter_accuracy(task.accuracy_floor)
    if prune:
        cs = cs.pruned()
    if cache:
        with _cache_lock:
            _cache_stats.misses += 1
            _derived_cache.setdefault(task.model, {})[derived_key] = cs
    return cs
