"""The paper's contribution: joint model surgery + resource allocation.

Layered as:

- :mod:`repro.core.plan` — plan/feature data model.  The central trick: for a
  fixed surgery plan, expected end-to-end latency is **linear** in the
  reciprocal compute and bandwidth shares, with coefficients (expected device
  FLOPs, expected server FLOPs, expected bytes on the wire, offload
  probability) that do not depend on the allocation.  Candidate plans are
  therefore compiled once per task into small feature arrays.
- :mod:`repro.core.surgery` — evaluates and enumerates surgery plans
  (exit subsets × thresholds × partition points) into those features.
- :mod:`repro.core.candidates` — dominance pruning of the candidate set.
- :mod:`repro.core.allocation` — closed-form KKT share allocation +
  Hungarian-style server assignment.
- :mod:`repro.core.queueing` — M/M/1 & M/G/1 delay terms for congestion.
- :mod:`repro.core.joint` — block-coordinate descent joint optimizer.
- :mod:`repro.core.sharding` — server partitions, shard-local cluster views,
  deterministic task→shard homing.
- :mod:`repro.core.coordinator` — hierarchical control plane: parallel shard
  solves + cross-shard migration rounds.
- :mod:`repro.core.distributed` — best-response (potential-game) variant.
- :mod:`repro.core.exhaustive` — brute-force optimum for small instances.
"""

from repro.core.admission import AdmissionResult, admit_tasks
from repro.core.allocation import (
    Allocation,
    allocate_shares,
    assign_servers,
    power_shares,
    sqrt_shares,
)
from repro.core.candidates import CandidateSet, build_candidates
from repro.core.coordinator import ShardedResult, ShardStats, solve_sharded
from repro.core.distributed import BestResponseResult, best_response_offloading
from repro.core.exhaustive import exhaustive_optimum
from repro.core.joint import JointOptimizer, JointResult, JointSolverConfig
from repro.core.objectives import Objective
from repro.core.sharding import ShardPlan, ShardView, make_shard_plan
from repro.core.online import ControllerConfig, EnvironmentSample, OnlineController
from repro.core.plan import JointPlan, PlanFeatures, SurgeryPlan, TaskSpec
from repro.core.queueing import mg1_wait, mm1_response, mm1_wait
from repro.core.surgery import evaluate_plan, plan_latency

__all__ = [
    "AdmissionResult",
    "Allocation",
    "ControllerConfig",
    "EnvironmentSample",
    "OnlineController",
    "BestResponseResult",
    "CandidateSet",
    "JointOptimizer",
    "JointPlan",
    "JointResult",
    "JointSolverConfig",
    "Objective",
    "PlanFeatures",
    "ShardPlan",
    "ShardStats",
    "ShardView",
    "ShardedResult",
    "SurgeryPlan",
    "TaskSpec",
    "admit_tasks",
    "allocate_shares",
    "assign_servers",
    "best_response_offloading",
    "build_candidates",
    "evaluate_plan",
    "exhaustive_optimum",
    "make_shard_plan",
    "mg1_wait",
    "mm1_response",
    "mm1_wait",
    "plan_latency",
    "power_shares",
    "solve_sharded",
    "sqrt_shares",
]
