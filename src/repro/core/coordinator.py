"""Hierarchical coordinator: parallel shard solves + cross-shard migration.

The second level of the sharded control plane (first level:
:mod:`repro.core.sharding`).  :func:`solve_sharded` runs one joint solve per
shard — each against a :class:`~repro.core.sharding.ShardView`, so shard
solves pay sub-problem cost for every superlinear piece of the centralized
solver (Hungarian matching, local-search sweeps, group member scans) — then
stitches the shard plans into one global solution and runs rounds of
**cross-shard migration**: a local-search move class that re-homes a task to
a server in a *foreign* shard when doing so improves the global objective by
more than a hysteresis margin.  Migration is what recovers (most of) the
coupling the partition severed: tasks homed to an overloaded shard can spill
onto under-used servers elsewhere.

Determinism contract (gated by ``perf_gate.py --suite shard``):

- Shard ``s`` solves with seed ``derive_seed(seed, "shard", s)`` for
  ``s > 0`` and the base seed for shard 0; all seeds are derived upfront in
  shard order, so results do not depend on execution order.
- Shard fan-out reuses the solver's one thread pool (``restart_workers``
  wide); when it runs shards in parallel, each shard runs its restarts
  serially — pools are never nested — and serial vs parallel fan-out is
  bit-identical because shards share nothing mutable.
- A 1-shard solve takes an early path that returns the shard result as-is:
  the view covers every server in order and homing is the identity, so it is
  bit-identical to the centralized solver (same descent, same refinement,
  same packaging).
- Because servers are partitioned, every share group (per-server compute,
  per-(device, server) link bandwidth) lives wholly inside one shard; the
  stitched global allocation is re-solved once from the stitched plan and
  matches the union of the shard solutions.

Telemetry: shard ``s`` records on the stream block ``1 + s*(restarts+1)``
(solve root span) through ``(s+1)*(restarts+1)`` (its restarts), so parallel
shard traces merge deterministically; migration rounds are spans on the
coordinator's stream 0.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import (
    Allocation,
    IncrementalAllocator,
    solution_latencies,
    solution_latency_task,
)
from repro.core.candidates import (
    CandidateSet,
    build_candidates,
    candidate_cache_stats,
)
from repro.core.joint import (
    JointOptimizer,
    JointResult,
    JointSolverConfig,
    package_plan,
)
from repro.core.objectives import Objective
from repro.core.plan import TaskSpec
from repro.core.sharding import (
    AffinityIndex,
    ShardPlan,
    ShardView,
    make_shard_plan,
)
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.profiling.counters import PerfCounters
from repro.rng import SeedLike, derive_seed
from repro.telemetry.trace import get_tracer


@dataclass
class ShardStats:
    """Diagnostics of one shard-local solve."""

    shard: int
    servers: Tuple[int, ...]
    num_tasks: int
    iterations: int = 0
    converged: bool = True
    objective: float = 0.0  # shard-local objective (penalty-free report)
    solve_s: float = 0.0


@dataclass
class ShardedResult(JointResult):
    """A :class:`JointResult` plus control-plane diagnostics.

    ``iterations`` is the max over shards, ``converged`` requires every shard
    converged *and* migration to have stopped before its round budget, and
    ``history`` is the global (penalty-surrogate) objective after assembly
    and after each migration round.
    """

    shard_plan: Optional[ShardPlan] = None
    shard_stats: List[ShardStats] = field(default_factory=list)
    migration_history: List[int] = field(default_factory=list)  # accepted/round

    def publish_health(self, registry, tasks: Optional[Sequence[TaskSpec]] = None) -> None:
        """Publish per-shard health gauges into a metrics registry.

        Emits ``shard.<s>.{tasks,objective,solve_s,iterations,migrations_in}``
        gauges for every shard, plus ``shard.migration.accepted`` /
        ``shard.migration.rounds`` for the coordinator as a whole.  When the
        solved-over ``tasks`` sequence is supplied (same order as the
        ``solve_sharded`` call), each shard additionally reports
        ``utilization`` (mean compute-share load over its servers) and
        ``violation_rate`` (fraction of homed tasks whose plan latency misses
        the deadline) — the signals ``repro monitor`` renders per shard and
        the drift monitor compares against.  Call once per result; the
        migration counter is cumulative across publishes.
        """
        if self.shard_plan is None:
            raise ConfigError("result has no shard plan to publish health for")
        homed: Dict[int, int] = {}
        for s in self.shard_plan.task_shard:
            homed[s] = homed.get(s, 0) + 1
        server_load: Dict[int, float] = {}
        miss_by_shard: Dict[int, int] = {}
        if tasks is not None:
            if len(tasks) != len(self.shard_plan.task_shard):
                raise ConfigError(
                    "tasks must be the sequence solve_sharded ran over "
                    f"({len(self.shard_plan.task_shard)} tasks, got {len(tasks)})"
                )
            for i, t in enumerate(tasks):
                srv = self.plan.assignment.get(t.name)
                if srv is not None:
                    server_load[srv] = server_load.get(srv, 0.0) + self.plan.compute_shares[t.name]
                if not (self.plan.latencies[t.name] <= t.deadline_s):
                    s = self.shard_plan.task_shard[i]
                    miss_by_shard[s] = miss_by_shard.get(s, 0) + 1
        for st in self.shard_stats:
            n = homed.get(st.shard, 0)
            prefix = f"shard.{st.shard}"
            registry.gauge(f"{prefix}.tasks").set(float(n))
            registry.gauge(f"{prefix}.objective").set(float(st.objective))
            registry.gauge(f"{prefix}.solve_s").set(float(st.solve_s))
            registry.gauge(f"{prefix}.iterations").set(float(st.iterations))
            registry.gauge(f"{prefix}.migrations_in").set(float(n - st.num_tasks))
            if tasks is not None:
                util = (
                    sum(server_load.get(srv, 0.0) for srv in st.servers) / len(st.servers)
                    if st.servers
                    else 0.0
                )
                registry.gauge(f"{prefix}.utilization").set(util)
                registry.gauge(f"{prefix}.violation_rate").set(
                    miss_by_shard.get(st.shard, 0) / n if n else 0.0
                )
        registry.counter("shard.migration.accepted").inc(sum(self.migration_history))
        registry.gauge("shard.migration.rounds").set(float(len(self.migration_history)))


def solve_sharded(
    tasks: Sequence[TaskSpec],
    cluster: EdgeCluster,
    latency_model: Optional[LatencyModel] = None,
    objective: Objective = Objective.AVG_LATENCY,
    config: Optional[JointSolverConfig] = None,
    candidates: Optional[Sequence[CandidateSet]] = None,
    seed: SeedLike = None,
) -> ShardedResult:
    """Solve the joint problem through the sharded control plane.

    Partition → parallel shard solves → stitch → migration rounds.  Usually
    reached through ``JointOptimizer.solve`` with ``config.shards > 1``;
    calling it directly with ``shards=1`` runs the same machinery degenerate
    (one shard, no migration) and is bit-identical to the centralized solver.
    """
    t_start = time.perf_counter()
    cfg = config or JointSolverConfig()
    lm = latency_model or LatencyModel()
    if not tasks:
        raise ConfigError("no tasks to optimize")
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate task names: {names}")
    for t in tasks:
        cluster.by_name(t.device_name)  # validates membership

    perf = PerfCounters()
    tracer = get_tracer()
    with tracer.span(
        "solve.sharded",
        {"tasks": len(tasks), "servers": cluster.num_servers, "shards": cfg.shards}
        if tracer.enabled
        else None,
    ) as root:
        if candidates is None:
            with tracer.span("solve.candidates"):
                stats_before = candidate_cache_stats()
                candsets = [
                    build_candidates(
                        t,
                        threshold_grid=cfg.threshold_grid,
                        max_cuts=cfg.max_cuts,
                        cache=cfg.candidate_cache,
                    )
                    for t in tasks
                ]
                stats_after = candidate_cache_stats()
                perf.candidate_cache_hits += stats_after.hits - stats_before.hits
                perf.candidate_cache_misses += stats_after.misses - stats_before.misses
        else:
            if len(candidates) != len(tasks):
                raise ConfigError("candidates/tasks length mismatch")
            candsets = list(candidates)

        with tracer.span("solve.shard_plan"):
            # one affinity index serves the homing scores, every migration
            # screen, and (via its per-partition caches) any later
            # incremental re-solve (1-shard solves never need it)
            t_idx = time.perf_counter()
            affinity = (
                AffinityIndex(tasks, candsets, cluster, lm, mode=cfg.affinity)
                if cfg.shards > 1
                else None
            )
            shard_plan = make_shard_plan(
                tasks, candsets, cluster, cfg.shards, cfg.shard_by, lm, affinity
            )
            if affinity is not None:
                perf.index_build_s += time.perf_counter() - t_idx
        k = shard_plan.num_shards

        # shard seeds, all derived upfront in shard order so the outcome is
        # independent of execution order; shard 0 keeps the base seed so a
        # 1-shard run reproduces the centralized descent exactly
        shard_seeds: List[SeedLike] = [None] * k
        for s in range(1, k):
            shard_seeds[s] = derive_seed(seed, "shard", s)
        shard_seeds[0] = seed

        # shard fan-out reuses the restart pool: when it is parallel, each
        # shard solves its restarts serially (never nested pools)
        workers = min(cfg.restart_workers, k)
        inner_cfg = replace(
            cfg,
            shards=1,
            nested_shards=0,  # recursion is one level deep: racks never re-shard
            restart_workers=1 if workers > 1 else cfg.restart_workers,
        )

        views = [ShardView(cluster, ids) for ids in shard_plan.server_shards]
        if cfg.affinity == "sparse":
            # one pass over the homing instead of k scans of it
            shard_tasks: List[List[int]] = shard_plan.tasks_by_shard()
        else:
            shard_tasks = [shard_plan.tasks_of(s) for s in range(k)]
        stride = cfg.restarts + 1

        def _run(s: int) -> Optional[JointResult]:
            ids = shard_tasks[s]
            if not ids:
                return None
            cfg_s = inner_cfg
            if cfg.nested_shards > 1 and views[s].num_servers > 1:
                # two-level sharding: this region's solve re-shards its view
                # into racks and runs the same coordinator one level down
                cfg_s = replace(
                    inner_cfg,
                    shards=min(cfg.nested_shards, views[s].num_servers),
                )
            solver = JointOptimizer(
                views[s],
                latency_model=lm,
                objective=objective,
                config=cfg_s,
                stream_base=1 + s * stride,
            )
            with tracer.stream(1 + s * stride, parent=root.span_id):
                return solver.solve(
                    [tasks[i] for i in ids],
                    candidates=[candsets[i] for i in ids],
                    seed=shard_seeds[s],
                )

        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                shard_results = list(pool.map(_run, range(k)))
        else:
            shard_results = [_run(s) for s in range(k)]

        # merge per-shard counters in shard order (order-independent of the
        # pool's completion order); per-shard wall time stays in ShardStats
        perf.merge(
            PerfCounters.merged(
                {s: r.perf for s, r in enumerate(shard_results) if r is not None}
            )
        )
        perf.shard_solves += sum(1 for r in shard_results if r is not None)

        shard_stats = []
        for s, r in enumerate(shard_results):
            st = ShardStats(
                shard=s,
                servers=shard_plan.server_shards[s],
                num_tasks=len(shard_tasks[s]),
            )
            if r is not None:
                st.iterations = r.iterations
                st.converged = r.converged
                st.objective = r.plan.objective_value
                st.solve_s = r.perf.solve_s
            shard_stats.append(st)

        iterations = max((st.iterations for st in shard_stats), default=0)
        shards_converged = all(st.converged for st in shard_stats)
        candidate_counts: Dict[str, int] = {}
        for r in shard_results:
            if r is not None:
                candidate_counts.update(r.candidate_counts)

        if k == 1:
            # degenerate control plane: the view covers every server in
            # order, homing is the identity, migration has no foreign shard —
            # return the shard result as-is (bit-identical to centralized)
            res = shard_results[0]
            assert res is not None
            perf.solve_s = time.perf_counter() - t_start
            return ShardedResult(
                plan=res.plan,
                iterations=res.iterations,
                converged=res.converged,
                history=res.history,
                candidate_counts=res.candidate_counts,
                perf=perf,
                shard_plan=shard_plan,
                shard_stats=shard_stats,
                migration_history=[],
            )

        sparse = cfg.affinity == "sparse"
        with tracer.span("solve.assemble"):
            assemble = _assemble_fast if sparse else _assemble
            (candsets, plan_idx, assignment) = assemble(
                tasks, candsets, shard_results, shard_tasks, views
            )
            inc = IncrementalAllocator(tasks, candsets, cluster, lm, objective)
            alloc = inc.solve(plan_idx, assignment, perf)

        task_shard = list(shard_plan.task_shard)
        obj, base_lat = _global_objective(
            tasks, candsets, plan_idx, alloc, cluster, lm, objective, cfg, perf
        )
        history = [obj]
        migration_history: List[int] = []
        # the screen's (template, home-shard) → best-foreign-server table is
        # built once per solve (the index caches it per partition) and stays
        # valid across every round: accepted migrations re-home tasks — an
        # O(1) patch of task_shard — but never move servers between shards,
        # and the bounds ignore the evolving allocation
        foreign_val, foreign_srv = affinity.foreign_mins(shard_plan.server_shards)
        fast_state = (
            _FastMigrationState(tasks, objective, affinity, alloc.assignment)
            if sparse and cfg.migration_rounds > 0
            else None
        )
        for rnd in range(cfg.migration_rounds):
            with tracer.span(
                "solve.migrate", {"round": rnd} if tracer.enabled else None
            ):
                round_fn = _migration_round_fast if sparse else _migration_round
                accepted, obj, base_lat, plan_idx, alloc = round_fn(
                    tasks, candsets, plan_idx, alloc, base_lat,
                    obj, cluster, lm, objective, cfg, shard_plan, task_shard,
                    inc, affinity, foreign_val, foreign_srv, perf,
                    fast_state,
                )
            migration_history.append(accepted)
            perf.migration_rounds += 1
            perf.migrations += accepted
            history.append(obj)
            if accepted == 0:
                break
        migration_converged = (
            cfg.migration_rounds == 0
            or (bool(migration_history) and migration_history[-1] == 0)
            or len(migration_history) < cfg.migration_rounds
        )
        shard_plan = shard_plan.with_task_shard(task_shard)

        with tracer.span("solve.package"):
            jp = package_plan(
                tasks, candsets, plan_idx, alloc, cluster, lm, objective,
                include_queueing=cfg.include_queueing, counters=perf,
                risk=cfg.risk,
            )
        perf.solve_s = time.perf_counter() - t_start
        return ShardedResult(
            plan=jp,
            iterations=iterations,
            converged=shards_converged and migration_converged,
            history=history,
            candidate_counts=candidate_counts,
            perf=perf,
            shard_plan=shard_plan,
            shard_stats=shard_stats,
            migration_history=migration_history,
        )


def _assemble(
    tasks: Sequence[TaskSpec],
    candsets: List[CandidateSet],
    shard_results: Sequence[Optional[JointResult]],
    shard_tasks: Sequence[Sequence[int]],
    views: Sequence[ShardView],
) -> Tuple[List[CandidateSet], List[int], List[Optional[int]]]:
    """Stitch shard plans into global (candsets, plan_idx, assignment).

    Shard plans are keyed by task name with shard-local server indices;
    this maps servers back to global indices and locates each chosen
    feature vector in the task's candidate set, appending it when the shard
    solve's threshold refinement produced a plan outside the enumerated set.
    """
    out_sets = list(candsets)
    plan_idx: List[int] = [0] * len(tasks)
    assignment: List[Optional[int]] = [None] * len(tasks)
    for s, res in enumerate(shard_results):
        if res is None:
            continue
        for i in shard_tasks[s]:
            name = tasks[i].name
            assignment[i] = views[s].to_global(res.plan.assignment[name])
            feats = res.plan.features[name]
            flist = out_sets[i].features
            # shard solves pick features straight out of the candidate set we
            # handed them, so an identity scan almost always hits; equality
            # (then append) only runs for refinement-produced plans
            for j, f in enumerate(flist):
                if f is feats:
                    plan_idx[i] = j
                    break
            else:
                try:
                    plan_idx[i] = flist.index(feats)
                except ValueError:
                    cs = out_sets[i]
                    out_sets[i] = CandidateSet(cs.task, list(cs.features) + [feats])
                    plan_idx[i] = len(cs.features)
    return out_sets, plan_idx, assignment


class _PositionResolver:
    """Amortized feature-position lookup across rebound candidate sets.

    The candidate pipeline rebinds one cached set per template to every
    task, so thousands of :class:`CandidateSet` objects share a handful of
    ``features`` *list* objects.  Indexing each distinct list once (keyed by
    list identity) makes a full-plan stitch O(tasks + templates ×
    candidates) instead of O(tasks × candidates).  Resolution order matches
    the dense stitch exactly: first identity match, else first equality
    match, else None (caller appends the refined feature row).
    """

    def __init__(self) -> None:
        self._maps: Dict[int, Dict[int, int]] = {}

    def resolve(self, cs: CandidateSet, feats) -> Optional[int]:
        key = id(cs.features)
        pmap = self._maps.get(key)
        if pmap is None:
            pmap = {}
            for j, f in enumerate(cs.features):
                pmap.setdefault(id(f), j)
            self._maps[key] = pmap
        j = pmap.get(id(feats))
        if j is not None:
            return j
        try:
            return cs.features.index(feats)
        except ValueError:
            return None


def _assemble_fast(
    tasks: Sequence[TaskSpec],
    candsets: List[CandidateSet],
    shard_results: Sequence[Optional[JointResult]],
    shard_tasks: Sequence[Sequence[int]],
    views: Sequence[ShardView],
) -> Tuple[List[CandidateSet], List[int], List[Optional[int]]]:
    """O(tasks) stitch — same outputs as :func:`_assemble`.

    Replaces the per-task identity scan + ``list.index`` of the dense stitch
    (O(tasks × candidates), the coordinator's second-largest cost at 16k+
    tasks) with a :class:`_PositionResolver` shared across every task of a
    template.  Identity-then-equality resolution order is preserved, so the
    chosen indices — and any appended refinement features — are identical.
    """
    out_sets = list(candsets)
    plan_idx: List[int] = [0] * len(tasks)
    assignment: List[Optional[int]] = [None] * len(tasks)
    positions = _PositionResolver()
    for s, res in enumerate(shard_results):
        if res is None:
            continue
        server_ids = views[s].server_ids
        plan_assignment = res.plan.assignment
        plan_features = res.plan.features
        for i in shard_tasks[s]:
            name = tasks[i].name
            local = plan_assignment[name]
            assignment[i] = None if local is None else server_ids[local]
            feats = plan_features[name]
            j = positions.resolve(out_sets[i], feats)
            if j is None:
                cs = out_sets[i]
                out_sets[i] = CandidateSet(cs.task, list(cs.features) + [feats])
                j = len(cs.features)
            plan_idx[i] = j
    return out_sets, plan_idx, assignment


def _global_objective(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: Sequence[int],
    alloc: Allocation,
    cluster: EdgeCluster,
    lm: LatencyModel,
    objective: Objective,
    cfg: JointSolverConfig,
    counters: PerfCounters,
) -> Tuple[float, np.ndarray]:
    lat = solution_latencies(
        tasks, candsets, plan_idx, alloc, cluster, lm,
        include_queueing=cfg.include_queueing, overload="penalty",
        risk=cfg.risk,
    )
    counters.latency_evals += len(tasks)
    return objective.evaluate(lat, tasks), lat


def _migration_round(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: List[int],
    alloc: Allocation,
    base_lat: np.ndarray,
    obj: float,
    cluster: EdgeCluster,
    lm: LatencyModel,
    objective: Objective,
    cfg: JointSolverConfig,
    shard_plan: ShardPlan,
    task_shard: List[int],
    inc: IncrementalAllocator,
    affinity: AffinityIndex,
    foreign_val: np.ndarray,
    foreign_srv: np.ndarray,
    counters: PerfCounters,
    fast_state: Optional["_FastMigrationState"] = None,  # dense path ignores it
) -> Tuple[int, float, np.ndarray, List[int], Allocation]:
    """One round of cross-shard migration moves.

    Two stages, mirroring the local search's screen-then-verify shape:

    1. **Screen.**  Every task gets an optimistic lower bound on its latency
       at its best *foreign* server (full share, no queueing) straight from
       the :class:`AffinityIndex`'s precomputed per-(template, home shard)
       table.  Tasks whose bound does not undercut their current latency by
       the hysteresis margin are dropped; survivors are ranked by bound gain
       and the top ``max(8, n // 64)`` proceed.
    2. **Verify.**  Each surviving (task, foreign server) move is priced
       exactly — incremental share re-solve of the two affected groups, plan
       re-picked for the new placement, latencies re-evaluated only for
       tasks in those groups — and accepted iff the *global* objective
       improves by more than the hysteresis margin.

    Accepted moves update the incumbent immediately (greedy, in ranked
    order), re-homing the task to the target server's shard.  Deterministic:
    ranking ties break by task index, and all floating point follows the
    same incremental kernels as the centralized local search.
    """
    n = len(tasks)
    hyst = cfg.migration_hysteresis

    shard_of_server = {}
    for sh, ids in enumerate(shard_plan.server_shards):
        for s in ids:
            shard_of_server[s] = sh

    # -- screen --------------------------------------------------------------
    ranked: List[Tuple[float, int, int]] = []  # (-gain, task, server)
    for i in range(n):
        home = task_shard[i]
        tpl = affinity.template_of[i]
        best_bound = float(foreign_val[tpl, home])
        best_s = int(foreign_srv[tpl, home])
        if best_s < 0:
            continue
        margin = hyst * max(abs(base_lat[i]), 1e-12)
        if best_bound < base_lat[i] - margin:
            ranked.append((best_bound - base_lat[i], i, best_s))
    ranked.sort(key=lambda t: (t[0], t[1]))
    budget = max(8, n // 64)
    trials = ranked[:budget]

    # -- verify --------------------------------------------------------------
    accepted = 0
    assignment = list(alloc.assignment)
    for _, i, target in trials:
        current = assignment[i]
        if current == target:
            continue
        trial_assign = list(assignment)
        trial_assign[i] = target
        prov = inc.update(alloc, plan_idx, trial_assign, (i,), counters)
        device = cluster.by_name(tasks[i].device_name)
        server = cluster.servers[target]
        link = cluster.link(tasks[i].device_name, server.name)
        rate = tasks[i].arrival_rate if cfg.include_queueing else None
        lat_vec = candsets[i].latencies(
            device, lm, server=server, link=link,
            compute_share=float(prov.compute_shares[i]),
            bandwidth_share=float(prov.bandwidth_shares[i]),
            arrival_rate=rate,
            risk=cfg.risk,
        )
        counters.candidate_evals += 1
        j = int(np.argmin(lat_vec))
        if not np.isfinite(lat_vec[j]):
            continue
        trial_idx = list(plan_idx)
        trial_idx[i] = j
        if j == plan_idx[i]:
            trial_alloc = prov
        else:
            trial_alloc = inc.update(prov, trial_idx, trial_assign, (i,), counters)
        affected = {
            t for t, a in enumerate(assignment) if a == current or a == target
        }
        affected.add(i)
        trial_lat = base_lat.copy()
        for t_i in affected:
            trial_lat[t_i] = solution_latency_task(
                tasks[t_i],
                candsets[t_i],
                trial_idx[t_i],
                trial_alloc.assignment[t_i],
                float(trial_alloc.compute_shares[t_i]),
                float(trial_alloc.bandwidth_shares[t_i]),
                cluster,
                lm,
                include_queueing=cfg.include_queueing,
                overload="penalty",
                risk=cfg.risk,
            )
        counters.latency_evals += len(affected)
        trial_obj = objective.evaluate(trial_lat, tasks)
        if trial_obj < obj - hyst * max(abs(obj), 1e-12):
            obj = trial_obj
            plan_idx = trial_idx
            alloc = trial_alloc
            base_lat = trial_lat
            assignment[i] = target
            task_shard[i] = shard_of_server[target]
            accepted += 1
    return accepted, obj, base_lat, plan_idx, alloc


class _FastMigrationState:
    """Per-solve accelerators for the sparse migration rounds.

    Three things the dense round recomputes O(tasks)-wise per trial, hoisted
    or maintained incrementally instead — all bit-identical:

    - the objective's per-task arrays (weights / deadlines), built once; the
      weight sum is the sum of the same array the dense path rebuilds, so
      every evaluated objective is the same float;
    - the server → member-tasks inverse of the assignment (ascending lists,
      exactly what an index scan yields), moved under each trial and moved
      back on rejection;
    - the task → template array for the vectorized screen.
    """

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        objective: Objective,
        affinity: AffinityIndex,
        assignment: Sequence[Optional[int]],
    ) -> None:
        self.objective = objective
        self.tpl = np.asarray(affinity.template_of, dtype=np.int64)
        self.w: Optional[np.ndarray] = None
        self.w_sum = 0.0
        self.deadlines: Optional[np.ndarray] = None
        if objective is Objective.AVG_LATENCY:
            self.w = np.array([t.weight for t in tasks])
            self.w_sum = self.w.sum()
        elif objective is Objective.DEADLINE_MISS:
            self.deadlines = np.array([t.deadline_s for t in tasks])
        self.members: Dict[Optional[int], List[int]] = {}
        for i, a in enumerate(assignment):
            self.members.setdefault(a, []).append(i)

    def evaluate(self, lat: np.ndarray, tasks: Sequence[TaskSpec]) -> float:
        """Same value as :meth:`Objective.evaluate`, without the per-call
        Python array rebuilds."""
        if np.any(np.isinf(lat)):
            return float("inf")
        if self.objective is Objective.AVG_LATENCY:
            return float(np.dot(self.w, lat) / self.w_sum)
        if self.objective is Objective.MAX_LATENCY:
            return float(lat.max())
        if self.objective is Objective.DEADLINE_MISS:
            norm = lat / self.deadlines
            miss = float(np.mean(norm > 1.0))
            return miss + 1e-3 * float(np.mean(np.minimum(norm, 10.0)))
        return self.objective.evaluate(lat, tasks)  # pragma: no cover

    def move(self, i: int, src: Optional[int], dst: Optional[int]) -> None:
        """Re-home task ``i``'s membership from server ``src`` to ``dst``."""
        lst = self.members.get(src)
        if lst is not None:
            pos = bisect_left(lst, i)
            if pos < len(lst) and lst[pos] == i:
                lst.pop(pos)
        insort(self.members.setdefault(dst, []), i)


def _migration_round_fast(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: List[int],
    alloc: Allocation,
    base_lat: np.ndarray,
    obj: float,
    cluster: EdgeCluster,
    lm: LatencyModel,
    objective: Objective,
    cfg: JointSolverConfig,
    shard_plan: ShardPlan,
    task_shard: List[int],
    inc: IncrementalAllocator,
    affinity: AffinityIndex,
    foreign_val: np.ndarray,
    foreign_srv: np.ndarray,
    counters: PerfCounters,
    state: "_FastMigrationState",
) -> Tuple[int, float, np.ndarray, List[int], Allocation]:
    """Sparse-index migration round — decisions identical to
    :func:`_migration_round`, without its O(tasks) Python loops.

    The screen is one vectorized pass over the (template, home) foreign
    table (ranking ties break by task index via a stable sort over an
    ascending candidate list, matching the dense tuple sort).  Verification
    prices the same moves with the same incremental kernels, but member
    scans, affected sets, and objective arrays come from
    :class:`_FastMigrationState` instead of per-trial O(tasks) rebuilds.
    """
    n = len(tasks)
    hyst = cfg.migration_hysteresis

    # -- screen (vectorized) -------------------------------------------------
    home = np.asarray(task_shard, dtype=np.int64)
    fv = foreign_val[state.tpl, home]
    fs = foreign_srv[state.tpl, home]
    margin = hyst * np.maximum(np.abs(base_lat), 1e-12)
    idx = np.flatnonzero((fs >= 0) & (fv < base_lat - margin))
    budget = max(8, n // 64)
    if idx.size:
        gains = fv[idx] - base_lat[idx]
        take = idx[np.argsort(gains, kind="stable")[:budget]]
    else:
        take = idx
    trials = [(int(i), int(fs[i])) for i in take]

    # -- verify --------------------------------------------------------------
    accepted = 0
    assignment = list(alloc.assignment)
    for i, target in trials:
        current = assignment[i]
        if current == target:
            continue
        trial_assign = list(assignment)
        trial_assign[i] = target
        state.move(i, current, target)
        prov = inc.update(
            alloc, plan_idx, trial_assign, (i,), counters,
            members_by_server=state.members,
        )
        device = cluster.by_name(tasks[i].device_name)
        server = cluster.servers[target]
        link = cluster.link(tasks[i].device_name, server.name)
        rate = tasks[i].arrival_rate if cfg.include_queueing else None
        lat_vec = candsets[i].latencies(
            device, lm, server=server, link=link,
            compute_share=float(prov.compute_shares[i]),
            bandwidth_share=float(prov.bandwidth_shares[i]),
            arrival_rate=rate,
            risk=cfg.risk,
        )
        counters.candidate_evals += 1
        j = int(np.argmin(lat_vec))
        if not np.isfinite(lat_vec[j]):
            state.move(i, target, current)
            continue
        trial_idx = list(plan_idx)
        trial_idx[i] = j
        if j == plan_idx[i]:
            trial_alloc = prov
        else:
            trial_alloc = inc.update(
                prov, trial_idx, trial_assign, (i,), counters,
                members_by_server=state.members,
            )
        # the moved task is already in target's member list; the union with
        # current's remainder plus {i} equals the dense O(tasks) scan's set
        affected = set(state.members.get(current, ()))
        affected.update(state.members.get(target, ()))
        affected.add(i)
        trial_lat = base_lat.copy()
        for t_i in affected:
            trial_lat[t_i] = solution_latency_task(
                tasks[t_i],
                candsets[t_i],
                trial_idx[t_i],
                trial_alloc.assignment[t_i],
                float(trial_alloc.compute_shares[t_i]),
                float(trial_alloc.bandwidth_shares[t_i]),
                cluster,
                lm,
                include_queueing=cfg.include_queueing,
                overload="penalty",
                risk=cfg.risk,
            )
        counters.latency_evals += len(affected)
        trial_obj = state.evaluate(trial_lat, tasks)
        if trial_obj < obj - hyst * max(abs(obj), 1e-12):
            obj = trial_obj
            plan_idx = trial_idx
            alloc = trial_alloc
            base_lat = trial_lat
            assignment[i] = target
            task_shard[i] = shard_plan.shard_of_server(target)
            accepted += 1
        else:
            state.move(i, target, current)
    return accepted, obj, base_lat, plan_idx, alloc


def resolve_dirty(
    tasks: Sequence[TaskSpec],
    cluster: EdgeCluster,
    prior: ShardedResult,
    dirty_shards: Sequence[int],
    latency_model: Optional[LatencyModel] = None,
    objective: Objective = Objective.AVG_LATENCY,
    config: Optional[JointSolverConfig] = None,
    candidates: Optional[Sequence[CandidateSet]] = None,
    seed: SeedLike = None,
) -> ShardedResult:
    """Incrementally re-solve only the *dirty* shards of a prior solve.

    The online controller's drift monitor flags the shards whose traffic
    moved (see :class:`~repro.telemetry.drift.ShardDriftMonitor`); this
    re-plans exactly those, keeps every clean shard's plan **by identity**
    from ``prior`` (same feature objects, same placements), re-solves the
    global shares in closed form, and re-packages — an O(dirty) control
    action instead of a full :func:`solve_sharded`.

    Contracts:

    - ``prior`` must come from a solve over the same ``tasks`` sequence
      (same order) on this cluster; the server partition and task homing are
      carried over unchanged.
    - Dirty shard ``s`` re-solves with the same derived seed a full solve
      would give it (``derive_seed(seed, "shard", s)``, base seed for shard
      0), so a re-solve with every shard dirty reproduces the fan-out of a
      fresh solve.
    - Cross-shard migration is **not** re-run: a delta re-plan deliberately
      leaves the homing alone.  When drift is global (every shard flagged,
      or servers changed), escalate to a full ``solve_sharded`` — the online
      controller does exactly that.

    The wall time lands in ``perf.resolve_dirty_s`` (and ``solve_s``);
    clean shards' :class:`ShardStats` are carried from ``prior``.
    """
    t_start = time.perf_counter()
    cfg = config or JointSolverConfig()
    lm = latency_model or LatencyModel()
    if prior.shard_plan is None:
        raise ConfigError("prior result has no shard plan to re-solve from")
    shard_plan = prior.shard_plan
    k = shard_plan.num_shards
    if len(tasks) != len(shard_plan.task_shard):
        raise ConfigError(
            f"tasks must match the prior solve ({len(shard_plan.task_shard)} "
            f"tasks, got {len(tasks)})"
        )
    dirty = sorted({int(s) for s in dirty_shards})
    if not dirty:
        raise ConfigError("no dirty shards to re-solve")
    for s in dirty:
        if not (0 <= s < k):
            raise ConfigError(f"dirty shard {s} outside 0..{k - 1}")

    perf = PerfCounters()
    tracer = get_tracer()
    with tracer.span(
        "solve.resolve_dirty",
        {"tasks": len(tasks), "shards": k, "dirty": len(dirty)}
        if tracer.enabled
        else None,
    ) as root:
        if candidates is None:
            stats_before = candidate_cache_stats()
            candsets = [
                build_candidates(
                    t,
                    threshold_grid=cfg.threshold_grid,
                    max_cuts=cfg.max_cuts,
                    cache=cfg.candidate_cache,
                )
                for t in tasks
            ]
            stats_after = candidate_cache_stats()
            perf.candidate_cache_hits += stats_after.hits - stats_before.hits
            perf.candidate_cache_misses += stats_after.misses - stats_before.misses
        else:
            if len(candidates) != len(tasks):
                raise ConfigError("candidates/tasks length mismatch")
            candsets = list(candidates)

        shard_tasks = shard_plan.tasks_by_shard()
        views = {s: ShardView(cluster, shard_plan.server_shards[s]) for s in dirty}
        stride = cfg.restarts + 1
        workers = min(cfg.restart_workers, len(dirty))
        inner_cfg = replace(
            cfg,
            shards=1,
            nested_shards=0,
            restart_workers=1 if workers > 1 else cfg.restart_workers,
        )

        def _run(s: int) -> Optional[JointResult]:
            ids = shard_tasks[s]
            if not ids:
                return None
            shard_seed = seed if s == 0 else derive_seed(seed, "shard", s)
            solver = JointOptimizer(
                views[s],
                latency_model=lm,
                objective=objective,
                config=inner_cfg,
                stream_base=1 + s * stride,
            )
            with tracer.stream(1 + s * stride, parent=root.span_id):
                return solver.solve(
                    [tasks[i] for i in ids],
                    candidates=[candsets[i] for i in ids],
                    seed=shard_seed,
                )

        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_run, dirty))
        else:
            results = [_run(s) for s in dirty]

        perf.merge(
            PerfCounters.merged(
                {s: r.perf for s, r in zip(dirty, results) if r is not None}
            )
        )
        perf.shard_solves += sum(1 for r in results if r is not None)

        # stitch: clean shards by identity from the prior plan, dirty shards
        # from the fresh shard results
        n = len(tasks)
        out_sets = list(candsets)
        plan_idx: List[int] = [0] * n
        assignment: List[Optional[int]] = [None] * n
        dirty_set = set(dirty)

        positions = _PositionResolver()

        def _place(i: int, local_or_global, feats, server_ids=None) -> None:
            if server_ids is None:
                assignment[i] = local_or_global
            else:
                assignment[i] = (
                    None if local_or_global is None else server_ids[local_or_global]
                )
            j = positions.resolve(out_sets[i], feats)
            if j is None:
                cs = out_sets[i]
                out_sets[i] = CandidateSet(cs.task, list(cs.features) + [feats])
                j = len(cs.features)
            plan_idx[i] = j

        for i, t in enumerate(tasks):
            if shard_plan.task_shard[i] in dirty_set:
                continue
            _place(i, prior.plan.assignment[t.name], prior.plan.features[t.name])
        for s, res in zip(dirty, results):
            if res is None:
                continue
            for i in shard_tasks[s]:
                name = tasks[i].name
                _place(
                    i,
                    res.plan.assignment[name],
                    res.plan.features[name],
                    views[s].server_ids,
                )

        inc = IncrementalAllocator(tasks, out_sets, cluster, lm, objective)
        alloc = inc.solve(plan_idx, assignment, perf)
        jp = package_plan(
            tasks, out_sets, plan_idx, alloc, cluster, lm, objective,
            include_queueing=cfg.include_queueing, counters=perf,
            risk=cfg.risk,
        )

        stats_by_shard = {st.shard: st for st in prior.shard_stats}
        for s, res in zip(dirty, results):
            st = ShardStats(
                shard=s,
                servers=shard_plan.server_shards[s],
                num_tasks=len(shard_tasks[s]),
            )
            if res is not None:
                st.iterations = res.iterations
                st.converged = res.converged
                st.objective = res.plan.objective_value
                st.solve_s = res.perf.solve_s
            stats_by_shard[s] = st
        shard_stats = [stats_by_shard[s] for s in sorted(stats_by_shard)]

        candidate_counts = dict(prior.candidate_counts)
        for res in results:
            if res is not None:
                candidate_counts.update(res.candidate_counts)

        elapsed = time.perf_counter() - t_start
        perf.resolve_dirty_s += elapsed
        perf.solve_s = elapsed
        return ShardedResult(
            plan=jp,
            iterations=max(
                (r.iterations for r in results if r is not None), default=0
            ),
            converged=prior.converged
            and all(r.converged for r in results if r is not None),
            history=[jp.objective_value],
            candidate_counts=candidate_counts,
            perf=perf,
            shard_plan=shard_plan,
            shard_stats=shard_stats,
            migration_history=[],
        )
