"""Hierarchical coordinator: parallel shard solves + cross-shard migration.

The second level of the sharded control plane (first level:
:mod:`repro.core.sharding`).  :func:`solve_sharded` runs one joint solve per
shard — each against a :class:`~repro.core.sharding.ShardView`, so shard
solves pay sub-problem cost for every superlinear piece of the centralized
solver (Hungarian matching, local-search sweeps, group member scans) — then
stitches the shard plans into one global solution and runs rounds of
**cross-shard migration**: a local-search move class that re-homes a task to
a server in a *foreign* shard when doing so improves the global objective by
more than a hysteresis margin.  Migration is what recovers (most of) the
coupling the partition severed: tasks homed to an overloaded shard can spill
onto under-used servers elsewhere.

Determinism contract (gated by ``perf_gate.py --suite shard``):

- Shard ``s`` solves with seed ``derive_seed(seed, "shard", s)`` for
  ``s > 0`` and the base seed for shard 0; all seeds are derived upfront in
  shard order, so results do not depend on execution order.
- Shard fan-out reuses the solver's one thread pool (``restart_workers``
  wide); when it runs shards in parallel, each shard runs its restarts
  serially — pools are never nested — and serial vs parallel fan-out is
  bit-identical because shards share nothing mutable.
- A 1-shard solve takes an early path that returns the shard result as-is:
  the view covers every server in order and homing is the identity, so it is
  bit-identical to the centralized solver (same descent, same refinement,
  same packaging).
- Because servers are partitioned, every share group (per-server compute,
  per-(device, server) link bandwidth) lives wholly inside one shard; the
  stitched global allocation is re-solved once from the stitched plan and
  matches the union of the shard solutions.

Telemetry: shard ``s`` records on the stream block ``1 + s*(restarts+1)``
(solve root span) through ``(s+1)*(restarts+1)`` (its restarts), so parallel
shard traces merge deterministically; migration rounds are spans on the
coordinator's stream 0.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import (
    Allocation,
    IncrementalAllocator,
    solution_latencies,
    solution_latency_task,
)
from repro.core.candidates import (
    CandidateSet,
    build_candidates,
    candidate_cache_stats,
)
from repro.core.joint import (
    JointOptimizer,
    JointResult,
    JointSolverConfig,
    package_plan,
)
from repro.core.objectives import Objective
from repro.core.plan import TaskSpec
from repro.core.sharding import (
    AffinityIndex,
    ShardPlan,
    ShardView,
    make_shard_plan,
)
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.profiling.counters import PerfCounters
from repro.rng import SeedLike, derive_seed
from repro.telemetry.trace import get_tracer


@dataclass
class ShardStats:
    """Diagnostics of one shard-local solve."""

    shard: int
    servers: Tuple[int, ...]
    num_tasks: int
    iterations: int = 0
    converged: bool = True
    objective: float = 0.0  # shard-local objective (penalty-free report)
    solve_s: float = 0.0


@dataclass
class ShardedResult(JointResult):
    """A :class:`JointResult` plus control-plane diagnostics.

    ``iterations`` is the max over shards, ``converged`` requires every shard
    converged *and* migration to have stopped before its round budget, and
    ``history`` is the global (penalty-surrogate) objective after assembly
    and after each migration round.
    """

    shard_plan: Optional[ShardPlan] = None
    shard_stats: List[ShardStats] = field(default_factory=list)
    migration_history: List[int] = field(default_factory=list)  # accepted/round

    def publish_health(self, registry, tasks: Optional[Sequence[TaskSpec]] = None) -> None:
        """Publish per-shard health gauges into a metrics registry.

        Emits ``shard.<s>.{tasks,objective,solve_s,iterations,migrations_in}``
        gauges for every shard, plus ``shard.migration.accepted`` /
        ``shard.migration.rounds`` for the coordinator as a whole.  When the
        solved-over ``tasks`` sequence is supplied (same order as the
        ``solve_sharded`` call), each shard additionally reports
        ``utilization`` (mean compute-share load over its servers) and
        ``violation_rate`` (fraction of homed tasks whose plan latency misses
        the deadline) — the signals ``repro monitor`` renders per shard and
        the drift monitor compares against.  Call once per result; the
        migration counter is cumulative across publishes.
        """
        if self.shard_plan is None:
            raise ConfigError("result has no shard plan to publish health for")
        homed: Dict[int, int] = {}
        for s in self.shard_plan.task_shard:
            homed[s] = homed.get(s, 0) + 1
        server_load: Dict[int, float] = {}
        miss_by_shard: Dict[int, int] = {}
        if tasks is not None:
            if len(tasks) != len(self.shard_plan.task_shard):
                raise ConfigError(
                    "tasks must be the sequence solve_sharded ran over "
                    f"({len(self.shard_plan.task_shard)} tasks, got {len(tasks)})"
                )
            for i, t in enumerate(tasks):
                srv = self.plan.assignment.get(t.name)
                if srv is not None:
                    server_load[srv] = server_load.get(srv, 0.0) + self.plan.compute_shares[t.name]
                if not (self.plan.latencies[t.name] <= t.deadline_s):
                    s = self.shard_plan.task_shard[i]
                    miss_by_shard[s] = miss_by_shard.get(s, 0) + 1
        for st in self.shard_stats:
            n = homed.get(st.shard, 0)
            prefix = f"shard.{st.shard}"
            registry.gauge(f"{prefix}.tasks").set(float(n))
            registry.gauge(f"{prefix}.objective").set(float(st.objective))
            registry.gauge(f"{prefix}.solve_s").set(float(st.solve_s))
            registry.gauge(f"{prefix}.iterations").set(float(st.iterations))
            registry.gauge(f"{prefix}.migrations_in").set(float(n - st.num_tasks))
            if tasks is not None:
                util = (
                    sum(server_load.get(srv, 0.0) for srv in st.servers) / len(st.servers)
                    if st.servers
                    else 0.0
                )
                registry.gauge(f"{prefix}.utilization").set(util)
                registry.gauge(f"{prefix}.violation_rate").set(
                    miss_by_shard.get(st.shard, 0) / n if n else 0.0
                )
        registry.counter("shard.migration.accepted").inc(sum(self.migration_history))
        registry.gauge("shard.migration.rounds").set(float(len(self.migration_history)))


def solve_sharded(
    tasks: Sequence[TaskSpec],
    cluster: EdgeCluster,
    latency_model: Optional[LatencyModel] = None,
    objective: Objective = Objective.AVG_LATENCY,
    config: Optional[JointSolverConfig] = None,
    candidates: Optional[Sequence[CandidateSet]] = None,
    seed: SeedLike = None,
) -> ShardedResult:
    """Solve the joint problem through the sharded control plane.

    Partition → parallel shard solves → stitch → migration rounds.  Usually
    reached through ``JointOptimizer.solve`` with ``config.shards > 1``;
    calling it directly with ``shards=1`` runs the same machinery degenerate
    (one shard, no migration) and is bit-identical to the centralized solver.
    """
    t_start = time.perf_counter()
    cfg = config or JointSolverConfig()
    lm = latency_model or LatencyModel()
    if not tasks:
        raise ConfigError("no tasks to optimize")
    names = [t.name for t in tasks]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate task names: {names}")
    for t in tasks:
        cluster.by_name(t.device_name)  # validates membership

    perf = PerfCounters()
    tracer = get_tracer()
    with tracer.span(
        "solve.sharded",
        {"tasks": len(tasks), "servers": cluster.num_servers, "shards": cfg.shards}
        if tracer.enabled
        else None,
    ) as root:
        if candidates is None:
            with tracer.span("solve.candidates"):
                stats_before = candidate_cache_stats()
                candsets = [
                    build_candidates(
                        t,
                        threshold_grid=cfg.threshold_grid,
                        max_cuts=cfg.max_cuts,
                        cache=cfg.candidate_cache,
                    )
                    for t in tasks
                ]
                stats_after = candidate_cache_stats()
                perf.candidate_cache_hits += stats_after.hits - stats_before.hits
                perf.candidate_cache_misses += stats_after.misses - stats_before.misses
        else:
            if len(candidates) != len(tasks):
                raise ConfigError("candidates/tasks length mismatch")
            candsets = list(candidates)

        with tracer.span("solve.shard_plan"):
            # one affinity index serves both the homing scores and the
            # migration screens (1-shard solves never need it)
            affinity = (
                AffinityIndex(tasks, candsets, cluster, lm)
                if cfg.shards > 1
                else None
            )
            shard_plan = make_shard_plan(
                tasks, candsets, cluster, cfg.shards, cfg.shard_by, lm, affinity
            )
        k = shard_plan.num_shards

        # shard seeds, all derived upfront in shard order so the outcome is
        # independent of execution order; shard 0 keeps the base seed so a
        # 1-shard run reproduces the centralized descent exactly
        shard_seeds: List[SeedLike] = [None] * k
        for s in range(1, k):
            shard_seeds[s] = derive_seed(seed, "shard", s)
        shard_seeds[0] = seed

        # shard fan-out reuses the restart pool: when it is parallel, each
        # shard solves its restarts serially (never nested pools)
        workers = min(cfg.restart_workers, k)
        inner_cfg = replace(
            cfg,
            shards=1,
            restart_workers=1 if workers > 1 else cfg.restart_workers,
        )

        views = [ShardView(cluster, ids) for ids in shard_plan.server_shards]
        shard_tasks = [shard_plan.tasks_of(s) for s in range(k)]
        stride = cfg.restarts + 1

        def _run(s: int) -> Optional[JointResult]:
            ids = shard_tasks[s]
            if not ids:
                return None
            solver = JointOptimizer(
                views[s],
                latency_model=lm,
                objective=objective,
                config=inner_cfg,
                stream_base=1 + s * stride,
            )
            with tracer.stream(1 + s * stride, parent=root.span_id):
                return solver.solve(
                    [tasks[i] for i in ids],
                    candidates=[candsets[i] for i in ids],
                    seed=shard_seeds[s],
                )

        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                shard_results = list(pool.map(_run, range(k)))
        else:
            shard_results = [_run(s) for s in range(k)]

        # merge per-shard counters in shard order (order-independent of the
        # pool's completion order); per-shard wall time stays in ShardStats
        perf.merge(
            PerfCounters.merged(
                {s: r.perf for s, r in enumerate(shard_results) if r is not None}
            )
        )
        perf.shard_solves += sum(1 for r in shard_results if r is not None)

        shard_stats = []
        for s, r in enumerate(shard_results):
            st = ShardStats(
                shard=s,
                servers=shard_plan.server_shards[s],
                num_tasks=len(shard_tasks[s]),
            )
            if r is not None:
                st.iterations = r.iterations
                st.converged = r.converged
                st.objective = r.plan.objective_value
                st.solve_s = r.perf.solve_s
            shard_stats.append(st)

        iterations = max((st.iterations for st in shard_stats), default=0)
        shards_converged = all(st.converged for st in shard_stats)
        candidate_counts: Dict[str, int] = {}
        for r in shard_results:
            if r is not None:
                candidate_counts.update(r.candidate_counts)

        if k == 1:
            # degenerate control plane: the view covers every server in
            # order, homing is the identity, migration has no foreign shard —
            # return the shard result as-is (bit-identical to centralized)
            res = shard_results[0]
            assert res is not None
            perf.solve_s = time.perf_counter() - t_start
            return ShardedResult(
                plan=res.plan,
                iterations=res.iterations,
                converged=res.converged,
                history=res.history,
                candidate_counts=res.candidate_counts,
                perf=perf,
                shard_plan=shard_plan,
                shard_stats=shard_stats,
                migration_history=[],
            )

        with tracer.span("solve.assemble"):
            (candsets, plan_idx, assignment) = _assemble(
                tasks, candsets, shard_results, shard_tasks, views
            )
            inc = IncrementalAllocator(tasks, candsets, cluster, lm, objective)
            alloc = inc.solve(plan_idx, assignment, perf)

        task_shard = list(shard_plan.task_shard)
        obj, base_lat = _global_objective(
            tasks, candsets, plan_idx, alloc, cluster, lm, objective, cfg, perf
        )
        history = [obj]
        migration_history: List[int] = []
        # the screen's (template, home-shard) → best-foreign-server table is
        # static across rounds (bounds ignore the evolving allocation)
        foreign_val, foreign_srv = affinity.foreign_mins(shard_plan.server_shards)
        for rnd in range(cfg.migration_rounds):
            with tracer.span(
                "solve.migrate", {"round": rnd} if tracer.enabled else None
            ):
                accepted, obj, base_lat, plan_idx, alloc = _migration_round(
                    tasks, candsets, plan_idx, alloc, base_lat,
                    obj, cluster, lm, objective, cfg, shard_plan, task_shard,
                    inc, affinity, foreign_val, foreign_srv, perf,
                )
            migration_history.append(accepted)
            perf.migration_rounds += 1
            perf.migrations += accepted
            history.append(obj)
            if accepted == 0:
                break
        migration_converged = (
            cfg.migration_rounds == 0
            or (bool(migration_history) and migration_history[-1] == 0)
            or len(migration_history) < cfg.migration_rounds
        )
        shard_plan = shard_plan.with_task_shard(task_shard)

        with tracer.span("solve.package"):
            jp = package_plan(
                tasks, candsets, plan_idx, alloc, cluster, lm, objective,
                include_queueing=cfg.include_queueing, counters=perf,
            )
        perf.solve_s = time.perf_counter() - t_start
        return ShardedResult(
            plan=jp,
            iterations=iterations,
            converged=shards_converged and migration_converged,
            history=history,
            candidate_counts=candidate_counts,
            perf=perf,
            shard_plan=shard_plan,
            shard_stats=shard_stats,
            migration_history=migration_history,
        )


def _assemble(
    tasks: Sequence[TaskSpec],
    candsets: List[CandidateSet],
    shard_results: Sequence[Optional[JointResult]],
    shard_tasks: Sequence[Sequence[int]],
    views: Sequence[ShardView],
) -> Tuple[List[CandidateSet], List[int], List[Optional[int]]]:
    """Stitch shard plans into global (candsets, plan_idx, assignment).

    Shard plans are keyed by task name with shard-local server indices;
    this maps servers back to global indices and locates each chosen
    feature vector in the task's candidate set, appending it when the shard
    solve's threshold refinement produced a plan outside the enumerated set.
    """
    out_sets = list(candsets)
    plan_idx: List[int] = [0] * len(tasks)
    assignment: List[Optional[int]] = [None] * len(tasks)
    for s, res in enumerate(shard_results):
        if res is None:
            continue
        for i in shard_tasks[s]:
            name = tasks[i].name
            assignment[i] = views[s].to_global(res.plan.assignment[name])
            feats = res.plan.features[name]
            flist = out_sets[i].features
            # shard solves pick features straight out of the candidate set we
            # handed them, so an identity scan almost always hits; equality
            # (then append) only runs for refinement-produced plans
            for j, f in enumerate(flist):
                if f is feats:
                    plan_idx[i] = j
                    break
            else:
                try:
                    plan_idx[i] = flist.index(feats)
                except ValueError:
                    cs = out_sets[i]
                    out_sets[i] = CandidateSet(cs.task, list(cs.features) + [feats])
                    plan_idx[i] = len(cs.features)
    return out_sets, plan_idx, assignment


def _global_objective(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: Sequence[int],
    alloc: Allocation,
    cluster: EdgeCluster,
    lm: LatencyModel,
    objective: Objective,
    cfg: JointSolverConfig,
    counters: PerfCounters,
) -> Tuple[float, np.ndarray]:
    lat = solution_latencies(
        tasks, candsets, plan_idx, alloc, cluster, lm,
        include_queueing=cfg.include_queueing, overload="penalty",
    )
    counters.latency_evals += len(tasks)
    return objective.evaluate(lat, tasks), lat


def _migration_round(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: List[int],
    alloc: Allocation,
    base_lat: np.ndarray,
    obj: float,
    cluster: EdgeCluster,
    lm: LatencyModel,
    objective: Objective,
    cfg: JointSolverConfig,
    shard_plan: ShardPlan,
    task_shard: List[int],
    inc: IncrementalAllocator,
    affinity: AffinityIndex,
    foreign_val: np.ndarray,
    foreign_srv: np.ndarray,
    counters: PerfCounters,
) -> Tuple[int, float, np.ndarray, List[int], Allocation]:
    """One round of cross-shard migration moves.

    Two stages, mirroring the local search's screen-then-verify shape:

    1. **Screen.**  Every task gets an optimistic lower bound on its latency
       at its best *foreign* server (full share, no queueing) straight from
       the :class:`AffinityIndex`'s precomputed per-(template, home shard)
       table.  Tasks whose bound does not undercut their current latency by
       the hysteresis margin are dropped; survivors are ranked by bound gain
       and the top ``max(8, n // 64)`` proceed.
    2. **Verify.**  Each surviving (task, foreign server) move is priced
       exactly — incremental share re-solve of the two affected groups, plan
       re-picked for the new placement, latencies re-evaluated only for
       tasks in those groups — and accepted iff the *global* objective
       improves by more than the hysteresis margin.

    Accepted moves update the incumbent immediately (greedy, in ranked
    order), re-homing the task to the target server's shard.  Deterministic:
    ranking ties break by task index, and all floating point follows the
    same incremental kernels as the centralized local search.
    """
    n = len(tasks)
    hyst = cfg.migration_hysteresis

    shard_of_server = {}
    for sh, ids in enumerate(shard_plan.server_shards):
        for s in ids:
            shard_of_server[s] = sh

    # -- screen --------------------------------------------------------------
    ranked: List[Tuple[float, int, int]] = []  # (-gain, task, server)
    for i in range(n):
        home = task_shard[i]
        tpl = affinity.template_of[i]
        best_bound = float(foreign_val[tpl, home])
        best_s = int(foreign_srv[tpl, home])
        if best_s < 0:
            continue
        margin = hyst * max(abs(base_lat[i]), 1e-12)
        if best_bound < base_lat[i] - margin:
            ranked.append((best_bound - base_lat[i], i, best_s))
    ranked.sort(key=lambda t: (t[0], t[1]))
    budget = max(8, n // 64)
    trials = ranked[:budget]

    # -- verify --------------------------------------------------------------
    accepted = 0
    assignment = list(alloc.assignment)
    for _, i, target in trials:
        current = assignment[i]
        if current == target:
            continue
        trial_assign = list(assignment)
        trial_assign[i] = target
        prov = inc.update(alloc, plan_idx, trial_assign, (i,), counters)
        device = cluster.by_name(tasks[i].device_name)
        server = cluster.servers[target]
        link = cluster.link(tasks[i].device_name, server.name)
        rate = tasks[i].arrival_rate if cfg.include_queueing else None
        lat_vec = candsets[i].latencies(
            device, lm, server=server, link=link,
            compute_share=float(prov.compute_shares[i]),
            bandwidth_share=float(prov.bandwidth_shares[i]),
            arrival_rate=rate,
        )
        counters.candidate_evals += 1
        j = int(np.argmin(lat_vec))
        if not np.isfinite(lat_vec[j]):
            continue
        trial_idx = list(plan_idx)
        trial_idx[i] = j
        if j == plan_idx[i]:
            trial_alloc = prov
        else:
            trial_alloc = inc.update(prov, trial_idx, trial_assign, (i,), counters)
        affected = {
            t for t, a in enumerate(assignment) if a == current or a == target
        }
        affected.add(i)
        trial_lat = base_lat.copy()
        for t_i in affected:
            trial_lat[t_i] = solution_latency_task(
                tasks[t_i],
                candsets[t_i],
                trial_idx[t_i],
                trial_alloc.assignment[t_i],
                float(trial_alloc.compute_shares[t_i]),
                float(trial_alloc.bandwidth_shares[t_i]),
                cluster,
                lm,
                include_queueing=cfg.include_queueing,
                overload="penalty",
            )
        counters.latency_evals += len(affected)
        trial_obj = objective.evaluate(trial_lat, tasks)
        if trial_obj < obj - hyst * max(abs(obj), 1e-12):
            obj = trial_obj
            plan_idx = trial_idx
            alloc = trial_alloc
            base_lat = trial_lat
            assignment[i] = target
            task_shard[i] = shard_of_server[target]
            accepted += 1
    return accepted, obj, base_lat, plan_idx, alloc
