"""Distributed best-response offloading (the decentralized variant).

The centralized BCD solver assumes a coordinator that sees every task.  The
paper family's deployments also need a decentralized mechanism (LEIME's
"distributed offloading ... with close-to-optimal performance guarantee"):
each task is a selfish player choosing a *strategy* — (server or local,
surgery plan) — to minimize its own expected latency, given the congestion
the other players currently impose.

Congestion model: on each server, shares follow the same sqrt rule the
centralized allocator uses (this is what the platform would grant), so a
player evaluating a move computes the shares that *would* result if it
joined.  Because every improving move strictly decreases the mover's latency
and the share rule is symmetric, the finite strategy space admits a finite
improvement path; in practice a handful of rounds reach a pure Nash
equilibrium.  Experiment E8 measures its optimality gap against the
centralized solver and the exhaustive optimum; E17 uses it as the
decentralized arm of the control-plane comparison at 1k+ tasks.

**Scale.**  A player pricing an option only needs *its own* shares on the
target server/link, and the share problem decomposes per group, so the
engine below maintains group membership incrementally and re-solves only the
O(|group|)-sized groups an option touches — the same decomposition the
centralized :class:`~repro.core.allocation.IncrementalAllocator` exploits,
specialized to the game's join/leave pattern.  One best-response round costs
O(n · m · |group| + n · m sweeps) instead of the O(n² · m) full re-solves of
a naive implementation, which is what makes 1k–10k-player games terminate in
seconds.  Shares are computed with the same float-operation order as
:func:`~repro.core.allocation.allocate_shares`, and the final report is a
fresh full solve, so equilibrium plans remain directly comparable with the
centralized solver's.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import (
    Allocation,
    _LazyLinkBW,
    allocate_shares,
    power_shares,
    solution_latencies,
    solution_latency_task,
)
from repro.core.candidates import CandidateSet, build_candidates
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.rng import SeedLike, as_generator


@dataclass
class BestResponseResult:
    """Equilibrium plan plus game diagnostics."""

    plan: JointPlan
    rounds: int
    converged: bool  # True if a full round saw no improving move
    moves: int  # total accepted strategy changes
    history: List[float] = field(default_factory=list)  # objective after each round


class _GameShares:
    """Incrementally maintained sqrt-rule shares for the offloading game.

    Tracks, per server and per (device, server) access link, the sorted list
    of member tasks, and keeps the current share arrays consistent with that
    membership.  ``price_join`` answers "what shares would player ``i`` get
    on server ``s``" in O(|group|); ``move`` applies an accepted strategy
    change, re-solving only the groups the player leaves and joins.

    Group shares are solved with the same weight expressions and member
    (task-index) order as :func:`~repro.core.allocation.allocate_shares`, so
    the maintained arrays always equal what a full solve of the current
    state would produce.
    """

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        cluster: EdgeCluster,
        latency_model: LatencyModel,
        objective: Objective,
    ) -> None:
        n = len(tasks)
        self._candsets = candsets
        self._base_w = [objective.task_weight(t) * t.arrival_rate for t in tasks]
        self._srv_rate = [latency_model.throughput(s) for s in cluster.servers]
        self._dev = [t.device_name for t in tasks]
        self._link_bw = _LazyLinkBW(cluster)
        self._srv_members: Dict[int, List[int]] = {}
        self._link_members: Dict[Tuple[str, int], List[int]] = {}
        self.compute = np.ones(n)
        self.bandwidth = np.ones(n)

    # -- group kernels (float-op order matches allocate_shares) -------------

    def _srv_weights(self, members: Sequence[int], s: int, plan_idx: Sequence[int]) -> np.ndarray:
        rate = self._srv_rate[s]
        return np.array(
            [
                self._base_w[i] * self._candsets[i].srv_flops[plan_idx[i]] / rate
                for i in members
            ]
        )

    def _link_weights(
        self, members: Sequence[int], key: Tuple[str, int], plan_idx: Sequence[int]
    ) -> np.ndarray:
        bw = self._link_bw[key]
        return np.array(
            [
                self._base_w[i] * self._candsets[i].wire_bytes[plan_idx[i]] / bw
                for i in members
            ]
        )

    def _resolve_server(self, s: int, plan_idx: Sequence[int]) -> None:
        members = self._srv_members.get(s)
        if members:
            self.compute[members] = power_shares(self._srv_weights(members, s, plan_idx))

    def _resolve_link(self, key: Tuple[str, int], plan_idx: Sequence[int]) -> None:
        members = self._link_members.get(key)
        if members:
            self.bandwidth[members] = power_shares(self._link_weights(members, key, plan_idx))

    # -- public API ----------------------------------------------------------

    def price_join(
        self, i: int, s: int, plan_idx: Sequence[int]
    ) -> Tuple[float, float]:
        """Shares player ``i`` would receive if placed on server ``s``.

        ``plan_idx[i]`` is the plan the weight is priced under; the other
        members keep their current plans and membership.  Pure — no state
        changes.  (If ``i`` currently sits on ``s``, its current shares are
        returned for the given plan.)
        """
        members = self._srv_members.get(s, [])
        trial = members if i in members else sorted(members + [i])
        xw = self._srv_weights(trial, s, plan_idx)
        x = float(power_shares(xw)[trial.index(i)])
        key = (self._dev[i], s)
        lmembers = self._link_members.get(key, [])
        ltrial = lmembers if i in lmembers else sorted(lmembers + [i])
        yw = self._link_weights(ltrial, key, plan_idx)
        y = float(power_shares(yw)[ltrial.index(i)])
        return x, y

    def move(
        self,
        i: int,
        old: Optional[int],
        new: Optional[int],
        plan_idx: Sequence[int],
    ) -> None:
        """Apply player ``i`` moving ``old → new`` (either may be local).

        Also correct after a plan-only change (``old == new``): the player's
        weight changed, so its groups re-solve.
        """
        if old is not None and (old != new):
            self._srv_members[old].remove(i)
            self._link_members[(self._dev[i], old)].remove(i)
            self._resolve_server(old, plan_idx)
            self._resolve_link((self._dev[i], old), plan_idx)
        if new is not None:
            members = self._srv_members.setdefault(new, [])
            if i not in members:
                insort(members, i)
            key = (self._dev[i], new)
            lmembers = self._link_members.setdefault(key, [])
            if i not in lmembers:
                insort(lmembers, i)
            self._resolve_server(new, plan_idx)
            self._resolve_link(key, plan_idx)
        else:
            self.compute[i] = 1.0
            self.bandwidth[i] = 1.0


def best_response_offloading(
    tasks: Sequence[TaskSpec],
    cluster: EdgeCluster,
    latency_model: Optional[LatencyModel] = None,
    objective: Objective = Objective.AVG_LATENCY,
    candidates: Optional[Sequence[CandidateSet]] = None,
    max_rounds: int = 30,
    improvement_eps: float = 1e-6,
    include_queueing: bool = True,
    seed: SeedLike = None,
) -> BestResponseResult:
    """Run asynchronous best-response dynamics to a pure equilibrium.

    Players are visited in a random order each round (randomized scheduling
    avoids pathological cycling patterns).  A player's best response scans
    every (server, plan) pair — vectorized over plans per server — plus its
    best local-only plan, pricing each option with the incremental group
    engine; the round loop stops at the first round with no improving move.
    Deterministic for a fixed seed.
    """
    if not tasks:
        raise ConfigError("no tasks")
    lm = latency_model or LatencyModel()
    rng = as_generator(seed)
    n = len(tasks)
    m = cluster.num_servers
    if candidates is None:
        candsets = [build_candidates(t) for t in tasks]
    else:
        if len(candidates) != len(tasks):
            raise ConfigError("candidates/tasks length mismatch")
        candsets = list(candidates)

    devices = [cluster.by_name(t.device_name) for t in tasks]
    links = [
        [cluster.link(t.device_name, srv.name) for srv in cluster.servers]
        for t in tasks
    ]

    # strategy state: (server or None, plan index); start all-local at the
    # locally-optimal plan, like a device fleet before any offloading
    assignment: List[Optional[int]] = [None] * n
    plan_idx: List[int] = []
    for i, t in enumerate(tasks):
        lat = candsets[i].latencies(
            devices[i], lm, arrival_rate=t.arrival_rate if include_queueing else None
        )
        plan_idx.append(int(np.argmin(lat)))

    engine = _GameShares(tasks, candsets, cluster, lm, objective)

    def player_latency(i: int, s: Optional[int], j: int, x: float, y: float) -> float:
        return solution_latency_task(
            tasks[i], candsets[i], j, s, x, y, cluster, lm,
            include_queueing=include_queueing, overload="penalty",
            device=devices[i],
        )

    def eval_objective() -> float:
        # graded overload surrogate keeps improvement dynamics meaningful
        # even in overloaded regimes (final report below is honest)
        alloc = Allocation(list(assignment), engine.compute.copy(), engine.bandwidth.copy())
        lat = solution_latencies(
            tasks, candsets, plan_idx, alloc, cluster, lm, include_queueing,
            overload="penalty",
        )
        return objective.evaluate(lat, tasks)

    history: List[float] = [eval_objective()]
    moves = 0
    converged = False
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        improved_this_round = False
        for i in rng.permutation(n):
            i = int(i)
            cur_s = assignment[i]
            current = player_latency(
                i, cur_s, plan_idx[i],
                float(engine.compute[i]), float(engine.bandwidth[i]),
            )
            best_choice: Optional[Tuple[Optional[int], int]] = None
            best_lat = current
            rate_i = tasks[i].arrival_rate if include_queueing else None
            # local option
            local_lats = candsets[i].latencies(devices[i], lm, arrival_rate=rate_i)
            j_local = int(np.argmin(local_lats))
            if cur_s is not None:
                lat_i = player_latency(i, None, j_local, 1.0, 1.0)
                if lat_i < best_lat - improvement_eps:
                    best_lat, best_choice = lat_i, (None, j_local)
            for option in range(m):
                if option == cur_s:
                    continue
                # two-pass: pick the plan under the shares the current plan's
                # weight would be granted, then re-price under the picked
                # plan's own weight (plan weight feeds back into shares)
                x0, y0 = engine.price_join(i, option, plan_idx)
                lat_vec = candsets[i].latencies(
                    devices[i], lm,
                    server=cluster.servers[option], link=links[i][option],
                    compute_share=x0, bandwidth_share=y0, arrival_rate=rate_i,
                )
                j = int(np.argmin(lat_vec))
                trial_idx = plan_idx
                if j != plan_idx[i]:
                    trial_idx = list(plan_idx)
                    trial_idx[i] = j
                x, y = engine.price_join(i, option, trial_idx)
                lat_i = player_latency(i, option, j, x, y)
                if lat_i < best_lat - improvement_eps:
                    best_lat, best_choice = lat_i, (option, j)
            if best_choice is not None:
                new_s, new_j = best_choice
                plan_idx[i] = new_j
                engine.move(i, cur_s, new_s, plan_idx)
                assignment[i] = new_s
                moves += 1
                improved_this_round = True
        history.append(eval_objective())
        if not improved_this_round:
            converged = True
            break

    # final report: a fresh full solve, honest latencies — directly
    # comparable with the centralized solver's packaged plans
    alloc = allocate_shares(tasks, candsets, plan_idx, assignment, cluster, lm, objective)
    lat = solution_latencies(tasks, candsets, plan_idx, alloc, cluster, lm, include_queueing)
    obj = objective.evaluate(lat, tasks)
    jp = JointPlan(
        assignment={t.name: assignment[i] for i, t in enumerate(tasks)},
        features={t.name: candsets[i].features[plan_idx[i]] for i, t in enumerate(tasks)},
        compute_shares={t.name: float(alloc.compute_shares[i]) for i, t in enumerate(tasks)},
        bandwidth_shares={t.name: float(alloc.bandwidth_shares[i]) for i, t in enumerate(tasks)},
        latencies={t.name: float(lat[i]) for i, t in enumerate(tasks)},
        objective_value=float(obj),
    )
    return BestResponseResult(
        plan=jp, rounds=rounds, converged=converged, moves=moves, history=history
    )
