"""Distributed best-response offloading (the decentralized variant).

The centralized BCD solver assumes a coordinator that sees every task.  The
paper family's deployments also need a decentralized mechanism (LEIME's
"distributed offloading ... with close-to-optimal performance guarantee"):
each task is a selfish player choosing a *strategy* — (server or local,
surgery plan) — to minimize its own expected latency, given the congestion
the other players currently impose.

Congestion model: on each server, shares follow the same sqrt rule the
centralized allocator uses (this is what the platform would grant), so a
player evaluating a move computes the shares that *would* result if it
joined.  Because every improving move strictly decreases the mover's latency
and the share rule is symmetric, the finite strategy space admits a finite
improvement path; in practice a handful of rounds reach a pure Nash
equilibrium.  Experiment E8 measures its optimality gap against the
centralized solver and the exhaustive optimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Allocation, allocate_shares, solution_latencies
from repro.core.candidates import CandidateSet, build_candidates
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.rng import SeedLike, as_generator


@dataclass
class BestResponseResult:
    """Equilibrium plan plus game diagnostics."""

    plan: JointPlan
    rounds: int
    converged: bool  # True if a full round saw no improving move
    moves: int  # total accepted strategy changes
    history: List[float] = field(default_factory=list)  # objective after each round


def best_response_offloading(
    tasks: Sequence[TaskSpec],
    cluster: EdgeCluster,
    latency_model: Optional[LatencyModel] = None,
    objective: Objective = Objective.AVG_LATENCY,
    candidates: Optional[Sequence[CandidateSet]] = None,
    max_rounds: int = 30,
    improvement_eps: float = 1e-6,
    include_queueing: bool = True,
    seed: SeedLike = None,
) -> BestResponseResult:
    """Run asynchronous best-response dynamics to a pure equilibrium.

    Players are visited in a random order each round (randomized scheduling
    avoids pathological cycling patterns).  A player's best response scans
    every (server, plan) pair — vectorized over plans per server — plus its
    best local-only plan.
    """
    if not tasks:
        raise ConfigError("no tasks")
    lm = latency_model or LatencyModel()
    rng = as_generator(seed)
    n = len(tasks)
    m = cluster.num_servers
    if candidates is None:
        candsets = [build_candidates(t) for t in tasks]
    else:
        if len(candidates) != len(tasks):
            raise ConfigError("candidates/tasks length mismatch")
        candsets = list(candidates)

    # strategy state: (server or None, plan index)
    assignment: List[Optional[int]] = [None] * n
    plan_idx: List[int] = []
    for i, t in enumerate(tasks):
        device = cluster.by_name(t.device_name)
        lat = candsets[i].latencies(
            device, lm, arrival_rate=t.arrival_rate if include_queueing else None
        )
        plan_idx.append(int(np.argmin(lat)))

    def eval_objective() -> float:
        alloc = allocate_shares(
            tasks, candsets, plan_idx, assignment, cluster, lm, objective
        )
        # graded overload surrogate keeps improvement dynamics meaningful
        # even in overloaded regimes (final report below is honest)
        lat = solution_latencies(
            tasks, candsets, plan_idx, alloc, cluster, lm, include_queueing,
            overload="penalty",
        )
        return objective.evaluate(lat, tasks)

    def player_latency(i: int) -> float:
        alloc = allocate_shares(
            tasks, candsets, plan_idx, assignment, cluster, lm, objective
        )
        lat = solution_latencies(
            tasks, candsets, plan_idx, alloc, cluster, lm, include_queueing,
            overload="penalty",
        )
        return float(lat[i])

    history: List[float] = [eval_objective()]
    moves = 0
    converged = False
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        improved_this_round = False
        for i in rng.permutation(n):
            i = int(i)
            current = player_latency(i)
            best_choice: Optional[Tuple[Optional[int], int]] = None
            best_lat = current
            saved = (assignment[i], plan_idx[i])
            rate_i = tasks[i].arrival_rate if include_queueing else None
            # local option
            device = cluster.by_name(tasks[i].device_name)
            local_lats = candsets[i].latencies(device, lm, arrival_rate=rate_i)
            j_local = int(np.argmin(local_lats))
            for option in [None] + list(range(m)):
                assignment[i] = option
                if option is None:
                    plan_idx[i] = j_local
                    lat_i = player_latency(i)
                    if lat_i < best_lat - improvement_eps:
                        best_lat, best_choice = lat_i, (None, j_local)
                else:
                    # best plan against the shares that would result: two-pass —
                    # pick plan under provisional shares, then re-check latency
                    server = cluster.servers[option]
                    link = cluster.link(tasks[i].device_name, server.name)
                    prov = allocate_shares(
                        tasks, candsets, plan_idx, assignment, cluster, lm, objective
                    )
                    lat_vec = candsets[i].latencies(
                        device,
                        lm,
                        server=server,
                        link=link,
                        compute_share=float(prov.compute_shares[i]),
                        bandwidth_share=float(prov.bandwidth_shares[i]),
                        arrival_rate=rate_i,
                    )
                    j = int(np.argmin(lat_vec))
                    plan_idx[i] = j
                    lat_i = player_latency(i)
                    if lat_i < best_lat - improvement_eps:
                        best_lat, best_choice = lat_i, (option, j)
            # restore, then apply best
            assignment[i], plan_idx[i] = saved
            if best_choice is not None:
                assignment[i], plan_idx[i] = best_choice
                moves += 1
                improved_this_round = True
        history.append(eval_objective())
        if not improved_this_round:
            converged = True
            break

    alloc = allocate_shares(tasks, candsets, plan_idx, assignment, cluster, lm, objective)
    lat = solution_latencies(tasks, candsets, plan_idx, alloc, cluster, lm, include_queueing)
    obj = objective.evaluate(lat, tasks)
    jp = JointPlan(
        assignment={t.name: assignment[i] for i, t in enumerate(tasks)},
        features={t.name: candsets[i].features[plan_idx[i]] for i, t in enumerate(tasks)},
        compute_shares={t.name: float(alloc.compute_shares[i]) for i, t in enumerate(tasks)},
        bandwidth_shares={t.name: float(alloc.bandwidth_shares[i]) for i, t in enumerate(tasks)},
        latencies={t.name: float(lat[i]) for i, t in enumerate(tasks)},
        objective_value=float(obj),
    )
    return BestResponseResult(
        plan=jp, rounds=rounds, converged=converged, moves=moves, history=history
    )
