"""Model-surgery evaluation and enumeration.

Evaluation maps a :class:`~repro.core.plan.SurgeryPlan` to its
allocation-independent :class:`~repro.core.plan.PlanFeatures` (see the
linearity property in :mod:`repro.core.plan`).  Enumeration sweeps

    exit subsets × a shared-threshold grid × partition cut points

and is organized so the expensive part — the exit-probability quadrature —
runs once per (subset, threshold) while the partition-cut sweep is a pure
vectorized pass, making full enumeration cheap enough to run per task.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import PlanFeatures, SurgeryPlan
from repro.devices.device import DeviceSpec
from repro.devices.latency import LatencyModel
from repro.errors import PlanError
from repro.models.exits import exit_probabilities
from repro.models.multiexit import MultiExitModel
from repro.network.link import Link

#: Default shared-threshold grid for candidate enumeration.  0 is excluded
#: (a 0 threshold on a non-final exit would swallow every sample); values
#: match the operating points BranchyNet-class papers report.
DEFAULT_THRESHOLD_GRID: Tuple[float, ...] = (0.5, 0.65, 0.8, 0.9, 0.95)

#: Cap on partition cut points examined per model during enumeration (the
#: exits' attach points are always included on top of this budget).
DEFAULT_MAX_CUTS = 16


#: Memo of exit-distribution quadratures, weakly keyed by model:
#: {model: {(kept, thresholds): (p, acc)}}.  The quadrature is the single
#: most expensive step of plan evaluation and depends only on (model, kept
#: exits, thresholds) — enumeration and per-task threshold refinement
#: re-request the same policies over and over, so amortizing it across tasks
#: sharing a model template is a large win.  Cached arrays are read-only.
_EXIT_DIST_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Memo of full plan evaluations, weakly keyed by model:
#: {model: {SurgeryPlan: PlanFeatures}}.  Features are frozen, so sharing
#: one object across callers is safe.  Bounded in practice by the candidate
#: enumeration space plus the refinement grid per model.
_PLAN_FEATURES_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _exit_distribution(
    model: MultiExitModel, kept: Sequence[int], thresholds: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    key = (tuple(int(k) for k in kept), tuple(float(t) for t in thresholds))
    per_model = _EXIT_DIST_CACHE.get(model)
    if per_model is None:
        per_model = _EXIT_DIST_CACHE.setdefault(model, {})
    cached = per_model.get(key)
    if cached is not None:
        return cached
    comp = model.competences[list(kept)]
    p, acc = exit_probabilities(comp, thresholds, model.difficulty, model.accuracy_model)
    p.setflags(write=False)
    acc.setflags(write=False)
    per_model[key] = (p, acc)
    return p, acc


def evaluate_plan(model: MultiExitModel, plan: SurgeryPlan) -> PlanFeatures:
    """Compile one surgery plan into allocation-independent features.

    Semantics: layers at backbone cut index <= ``plan.partition_cut`` run on
    the end device; deeper layers run on the assigned server.  An exit branch
    executes on the side its attach point lives on.  A sample that exits at
    kept position ``i`` has also evaluated (and not taken) all earlier kept
    exits, so their branch FLOPs are charged cumulatively.

    Evaluations are memoized per (model, plan): features are allocation
    independent and frozen, and threshold refinement re-evaluates the same
    trial plans for every task sharing a model template.
    """
    per_model = _PLAN_FEATURES_CACHE.get(model)
    if per_model is None:
        per_model = _PLAN_FEATURES_CACHE.setdefault(model, {})
    cached = per_model.get(plan)
    if cached is not None:
        return cached
    feats = _evaluate_plan_uncached(model, plan)
    per_model[plan] = feats
    return feats


def _evaluate_plan_uncached(model: MultiExitModel, plan: SurgeryPlan) -> PlanFeatures:
    from repro.models.quantization import quantization_level

    plan.validate_against(model)
    lvl = quantization_level(plan.quantization)
    kept = list(plan.kept_exits)
    p, acc = _exit_distribution(model, kept, plan.thresholds)
    acc = np.clip(acc + lvl.accuracy_delta, 0.01, 0.999)

    c = plan.partition_cut
    cut_flops = model.cut_flops  # increasing in cut index
    cut_bytes = model.cut_bytes
    attach = model.exit_cut_indices[kept]  # attach cut index per kept exit
    backbone = np.array([model.exits[k].backbone_flops for k in kept], dtype=float)
    branch = np.array([model.exits[k].branch_flops for k in kept], dtype=float)

    on_device = attach <= c
    dev_backbone = np.minimum(backbone, cut_flops[c])
    srv_backbone = np.maximum(backbone - cut_flops[c], 0.0)
    dev_branch_cum = np.cumsum(np.where(on_device, branch, 0.0))
    srv_branch_cum = np.cumsum(np.where(on_device, 0.0, branch))

    dev_flops_per_exit = dev_backbone + dev_branch_cum
    srv_flops_per_exit = srv_backbone + srv_branch_cum
    offloaded = ~on_device

    # precision scaling: quantized execution is faster (fold the speedup into
    # effective FLOPs so features stay allocation-independent) and quantized
    # activations are smaller on the wire
    dev_flops_per_exit = dev_flops_per_exit / lvl.compute_speedup
    srv_flops_per_exit = srv_flops_per_exit / lvl.compute_speedup

    e_dev = float(np.dot(p, dev_flops_per_exit))
    e_srv = float(np.dot(p, srv_flops_per_exit))
    p_off = float(p[offloaded].sum())
    boundary = (float(cut_bytes[c]) + model.result_bytes) * lvl.wire_scale
    wire = p_off * boundary
    e_acc = float(np.dot(p, acc))

    return PlanFeatures(
        plan=plan,
        dev_flops=e_dev,
        srv_flops=e_srv,
        wire_bytes=wire,
        p_offload=p_off,
        accuracy=e_acc,
        exit_probs=tuple(float(x) for x in p),
        dev_flops_sq=float(np.dot(p, dev_flops_per_exit**2)),
        srv_flops_sq=float(np.dot(p, srv_flops_per_exit**2)),
        wire_bytes_sq=p_off * boundary**2,
    )


def plan_latency(
    dev_flops: np.ndarray,
    srv_flops: np.ndarray,
    wire_bytes: np.ndarray,
    p_offload: np.ndarray,
    device: DeviceSpec,
    latency_model: LatencyModel,
    server: Optional[DeviceSpec] = None,
    link: Optional[Link] = None,
    compute_share: float = 1.0,
    bandwidth_share: float = 1.0,
    server_wait_s: float = 0.0,
) -> np.ndarray:
    """Expected latency for feature arrays under a concrete allocation.

    Fully vectorized; feature arrays broadcast together.  For plans with any
    offloaded mass (``p_offload > 0`` or ``srv_flops > 0``) a ``server`` and
    ``link`` are required.  ``server_wait_s`` adds a queueing delay paid by
    offloaded requests only.
    """
    dev_flops = np.asarray(dev_flops, dtype=float)
    srv_flops = np.asarray(srv_flops, dtype=float)
    wire_bytes = np.asarray(wire_bytes, dtype=float)
    p_offload = np.asarray(p_offload, dtype=float)

    r_dev = latency_model.throughput(device)
    # the device segment (and its dispatch overhead) only runs if the plan
    # actually executes work locally
    t = np.where(dev_flops > 0, dev_flops / r_dev + device.overhead_s, 0.0)

    uses_server = (p_offload > 0) | (srv_flops > 0) | (wire_bytes > 0)
    if np.any(uses_server):
        if server is None or link is None:
            raise PlanError("plans with offloaded work need a server and a link")
        if not (0.0 < compute_share <= 1.0 + 1e-12):
            raise PlanError(f"compute share must be in (0,1], got {compute_share}")
        if not (0.0 < bandwidth_share <= 1.0 + 1e-12):
            raise PlanError(f"bandwidth share must be in (0,1], got {bandwidth_share}")
        r_srv = latency_model.throughput(server) * compute_share
        bw = link.bandwidth_bps * bandwidth_share
        t = t + (
            srv_flops / r_srv
            + p_offload * (link.rtt_s + server.overhead_s + server_wait_s)
            + wire_bytes / bw
        )
    return t


def plan_latency_scalar(
    dev_flops: float,
    srv_flops: float,
    wire_bytes: float,
    p_offload: float,
    device: DeviceSpec,
    latency_model: LatencyModel,
    server: Optional[DeviceSpec] = None,
    link: Optional[Link] = None,
    compute_share: float = 1.0,
    bandwidth_share: float = 1.0,
    server_wait_s: float = 0.0,
) -> float:
    """Scalar :func:`plan_latency` for a single plan (the refinement hot loop).

    Mirrors the array path's expression tree on Python floats — bit-identical
    results without the ndarray wrapping overhead.
    """
    r_dev = latency_model.throughput(device)
    t = dev_flops / r_dev + device.overhead_s if dev_flops > 0 else 0.0
    if p_offload > 0 or srv_flops > 0 or wire_bytes > 0:
        if server is None or link is None:
            raise PlanError("plans with offloaded work need a server and a link")
        if not (0.0 < compute_share <= 1.0 + 1e-12):
            raise PlanError(f"compute share must be in (0,1], got {compute_share}")
        if not (0.0 < bandwidth_share <= 1.0 + 1e-12):
            raise PlanError(f"bandwidth share must be in (0,1], got {bandwidth_share}")
        r_srv = latency_model.throughput(server) * compute_share
        bw = link.bandwidth_bps * bandwidth_share
        t = t + (
            srv_flops / r_srv
            + p_offload * (link.rtt_s + server.overhead_s + server_wait_s)
            + wire_bytes / bw
        )
    return float(t)


#: Fine per-exit threshold grid used by :func:`refine_thresholds`.
REFINE_GRID: Tuple[float, ...] = (
    0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.93, 0.95, 0.97,
)


def refine_thresholds(
    model: MultiExitModel,
    plan: SurgeryPlan,
    device: DeviceSpec,
    latency_model: LatencyModel,
    accuracy_floor: float,
    server: Optional[DeviceSpec] = None,
    link: Optional[Link] = None,
    compute_share: float = 1.0,
    bandwidth_share: float = 1.0,
    grid: Sequence[float] = REFINE_GRID,
    max_sweeps: int = 4,
) -> Tuple[SurgeryPlan, PlanFeatures]:
    """Per-exit threshold refinement by coordinate descent.

    Enumeration couples all early exits to one shared threshold (which keeps
    the candidate space small); given a chosen plan and its allocation, this
    pass re-optimizes each kept early exit's threshold *individually* over a
    finer grid, holding the others fixed, and repeats until a full sweep
    makes no improvement.  Every accepted move strictly decreases expected
    latency while respecting ``accuracy_floor``, so the refined plan is never
    worse than the input plan; typical gains are a few percent where the
    shared-threshold restriction binds.

    Returns the refined plan and its features (possibly the originals).
    """
    plan.validate_against(model)
    if not (0.0 < accuracy_floor <= 1.0):
        raise PlanError(f"accuracy floor must be in (0,1], got {accuracy_floor}")

    def evaluate(p: SurgeryPlan) -> Tuple[float, PlanFeatures]:
        f = evaluate_plan(model, p)
        if f.accuracy < accuracy_floor - 1e-12:
            return np.inf, f
        lat = plan_latency_scalar(
            f.dev_flops,
            f.srv_flops,
            f.wire_bytes,
            f.p_offload,
            device,
            latency_model,
            server=server,
            link=link,
            compute_share=compute_share,
            bandwidth_share=bandwidth_share,
        )
        return lat, f

    best_plan = plan
    best_lat, best_feats = evaluate(plan)
    n_early = len(plan.kept_exits) - 1
    if n_early == 0:
        return best_plan, best_feats
    for _ in range(max_sweeps):
        improved = False
        for pos in range(n_early):
            for theta in grid:
                if theta == best_plan.thresholds[pos]:
                    continue
                thresholds = list(best_plan.thresholds)
                thresholds[pos] = theta
                trial = SurgeryPlan(
                    kept_exits=best_plan.kept_exits,
                    thresholds=tuple(thresholds),
                    partition_cut=best_plan.partition_cut,
                    quantization=best_plan.quantization,
                )
                lat, feats = evaluate(trial)
                if lat < best_lat - 1e-12:
                    best_plan, best_lat, best_feats = trial, lat, feats
                    improved = True
        if not improved:
            break
    return best_plan, best_feats


def enumerate_features(
    model: MultiExitModel,
    threshold_grid: Sequence[float] = DEFAULT_THRESHOLD_GRID,
    max_cuts: int = DEFAULT_MAX_CUTS,
    include_exit_subsets: bool = True,
    quantization_levels: Sequence[str] = ("fp32",),
) -> List[PlanFeatures]:
    """Enumerate candidate surgery plans of ``model`` into features.

    The sweep covers every subset of early exits (all sharing one threshold
    from ``threshold_grid``) crossed with a partition-cut set containing the
    exit attach points, the two extremes (full offload / fully local), an
    even FLOPs-spaced sample of the remaining cut points up to ``max_cuts``,
    and the requested ``quantization_levels`` (default: fp32 only; pass
    :data:`repro.models.quantization.ALL_LEVELS` to enable the precision
    knob).

    The inner cut sweep is vectorized: the exit distribution of a (subset,
    threshold) pair is computed once and reused for every cut and level.
    """
    from repro.models.quantization import quantization_level

    levels = [quantization_level(name) for name in quantization_levels]
    if not levels:
        raise PlanError("need at least one quantization level")
    n_exits = model.num_exits
    final_idx = n_exits - 1
    early = list(range(final_idx))

    # --- partition cut candidates -----------------------------------------
    n_cuts = len(model.backbone.cut_points)
    wanted = {0, n_cuts - 1}
    wanted.update(int(i) for i in model.exit_cut_indices)
    if n_cuts > max_cuts:
        # sample additional cuts evenly in cumulative FLOPs
        targets = np.linspace(0.0, model.cut_flops[-1], max_cuts)
        extra = {int(np.argmin(np.abs(model.cut_flops - t))) for t in targets}
        wanted.update(extra)
    else:
        wanted.update(range(n_cuts))
    cuts = np.array(sorted(wanted), dtype=int)

    # --- exit subsets -------------------------------------------------------
    if include_exit_subsets:
        subsets: List[Tuple[int, ...]] = []
        for mask in range(1 << len(early)):
            chosen = tuple(e for i, e in enumerate(early) if mask >> i & 1)
            subsets.append(chosen + (final_idx,))
    else:
        subsets = [tuple(early) + (final_idx,), (final_idx,)]

    cut_flops = model.cut_flops
    cut_bytes = model.cut_bytes
    result_bytes = float(model.result_bytes)

    out: List[PlanFeatures] = []
    seen: set = set()
    for kept in subsets:
        thetas: Sequence[Tuple[float, ...]]
        if len(kept) == 1:
            thetas = [(0.0,)]
        else:
            thetas = [tuple([th] * (len(kept) - 1) + [0.0]) for th in threshold_grid]
        attach = model.exit_cut_indices[list(kept)]
        backbone = np.array([model.exits[k].backbone_flops for k in kept], dtype=float)
        branch = np.array([model.exits[k].branch_flops for k in kept], dtype=float)
        for thresholds in thetas:
            p, acc = _exit_distribution(model, kept, thresholds)
            # vectorized sweep over cuts: axes (exit k, cut c)
            on_dev = attach[:, None] <= cuts[None, :]
            dev_bb = np.minimum(backbone[:, None], cut_flops[cuts][None, :])
            srv_bb = np.maximum(backbone[:, None] - cut_flops[cuts][None, :], 0.0)
            dev_br = np.cumsum(np.where(on_dev, branch[:, None], 0.0), axis=0)
            srv_br = np.cumsum(np.where(on_dev, 0.0, branch[:, None]), axis=0)
            dev_total = dev_bb + dev_br
            srv_total = srv_bb + srv_br
            e_dev_raw = p @ dev_total
            e_srv_raw = p @ srv_total
            e_dev_sq_raw = p @ dev_total**2
            e_srv_sq_raw = p @ srv_total**2
            p_off = np.where(on_dev, 0.0, p[:, None]).sum(axis=0)
            boundary_raw = cut_bytes[cuts] + result_bytes
            for lvl in levels:
                sp = lvl.compute_speedup
                e_dev = e_dev_raw / sp
                e_srv = e_srv_raw / sp
                e_dev_sq = e_dev_sq_raw / sp**2
                e_srv_sq = e_srv_sq_raw / sp**2
                boundary = boundary_raw * lvl.wire_scale
                wire = p_off * boundary
                wire_sq = p_off * boundary**2
                acc_q = np.clip(acc + lvl.accuracy_delta, 0.01, 0.999)
                e_acc = float(np.dot(p, acc_q))
                for j, c in enumerate(cuts):
                    # deduplicate: cuts at/after the last kept exit's attach
                    # point are all equivalent to "fully local"
                    key = (kept, thresholds, lvl.name, min(int(c), int(attach[-1])))
                    if key in seen:
                        continue
                    seen.add(key)
                    plan = SurgeryPlan(
                        kept_exits=kept,
                        thresholds=thresholds,
                        partition_cut=int(c),
                        quantization=lvl.name,
                    )
                    out.append(
                        PlanFeatures(
                            plan=plan,
                            dev_flops=float(e_dev[j]),
                            srv_flops=float(e_srv[j]),
                            wire_bytes=float(wire[j]),
                            p_offload=float(p_off[j]),
                            accuracy=e_acc,
                            exit_probs=tuple(float(x) for x in p),
                            dev_flops_sq=float(e_dev_sq[j]),
                            srv_flops_sq=float(e_srv_sq[j]),
                            wire_bytes_sq=float(wire_sq[j]),
                        )
                    )
    return out
