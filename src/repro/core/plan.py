"""Plan data model: tasks, surgery plans, features, and joint solutions.

**The linearity property.**  Fix a surgery plan (kept exits E, thresholds θ,
partition cut c) for a task on device D considering server S over link L.
Let ``p_k`` be the exit probabilities induced by θ.  The expected end-to-end
latency decomposes as::

    E[T] = E[F_dev] / R_dev            (device compute)
         + OH_dev                      (one device invocation)
         + p_off * (rtt + OH_srv)      (network round trip + server dispatch)
         + E[B_up] / (BW * y)          (bytes on the wire at bandwidth share y)
         + E[F_srv] / (R_srv * x)      (server compute at compute share x)

where ``E[F_dev]``, ``E[F_srv]``, ``E[B_up]`` (= p_off·(boundary + result
bytes)) and ``p_off`` (probability the sample crosses the network) depend
*only* on the plan — never on x, y, or which server is chosen.  A candidate
plan is therefore fully described by the 5-tuple stored in
:class:`PlanFeatures`; re-evaluating latency when the allocator changes
shares or servers is a handful of multiplies.  This is what lets the joint
optimizer sweep thousands of (plan, allocation) combinations per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.devices.device import DeviceSpec
from repro.errors import PlanError
from repro.models.multiexit import MultiExitModel


@dataclass(frozen=True)
class TaskSpec:
    """One latency-sensitive inference task (a user / stream / sensor).

    Parameters
    ----------
    name:
        Unique task identifier.
    model:
        The task's multi-exit DNN.
    device_name:
        The end device this task originates on (must exist in the cluster).
    deadline_s:
        End-to-end latency requirement.
    accuracy_floor:
        Minimum acceptable expected accuracy in (0, 1].
    arrival_rate:
        Mean request rate (req/s) of this task's stream; drives queueing
        terms and the simulator's arrival process.
    weight:
        Relative importance in weighted-latency objectives (default 1).
    """

    name: str
    model: MultiExitModel
    device_name: str
    deadline_s: float = 0.1
    accuracy_floor: float = 0.6
    arrival_rate: float = 5.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise PlanError(f"{self.name}: deadline must be positive")
        if not (0.0 < self.accuracy_floor <= 1.0):
            raise PlanError(f"{self.name}: accuracy floor must be in (0,1]")
        if self.arrival_rate <= 0:
            raise PlanError(f"{self.name}: arrival rate must be positive")
        if self.weight <= 0:
            raise PlanError(f"{self.name}: weight must be positive")


@dataclass(frozen=True)
class SurgeryPlan:
    """A concrete surgical configuration of one task's model.

    Attributes
    ----------
    kept_exits:
        Indices into ``model.exits`` of the exits that remain after surgery,
        strictly increasing; the final exit's index must be last.
    thresholds:
        Confidence threshold per kept exit (same length); last must be 0.
    partition_cut:
        Index into the backbone's ``cut_points``: layers at cut index <=
        ``partition_cut`` run on the device, the rest on the server.  0 means
        "cut after the input" (full offload); the last index means fully
        local execution.
    """

    kept_exits: Tuple[int, ...]
    thresholds: Tuple[float, ...]
    partition_cut: int
    #: precision level ("fp32" | "fp16" | "int8"); see repro.models.quantization
    quantization: str = "fp32"

    def __post_init__(self) -> None:
        from repro.models.quantization import LEVELS

        if self.quantization not in LEVELS:
            raise PlanError(
                f"unknown quantization {self.quantization!r}; available {sorted(LEVELS)}"
            )
        if len(self.kept_exits) != len(self.thresholds):
            raise PlanError(
                f"kept_exits/thresholds length mismatch: "
                f"{self.kept_exits} vs {self.thresholds}"
            )
        if not self.kept_exits:
            raise PlanError("a plan must keep at least the final exit")
        ke = list(self.kept_exits)
        if ke != sorted(set(ke)):
            raise PlanError(f"kept_exits must be strictly increasing: {ke}")
        if self.thresholds[-1] != 0.0:
            raise PlanError("final kept exit must have threshold 0")
        for t in self.thresholds:
            if not (0.0 <= t < 1.0):
                raise PlanError(f"threshold {t} outside [0,1)")
        if self.partition_cut < 0:
            raise PlanError(f"negative partition cut {self.partition_cut}")

    def validate_against(self, model: MultiExitModel) -> None:
        """Check indices are consistent with a specific model."""
        n_exits = model.num_exits
        if self.kept_exits[-1] != n_exits - 1:
            raise PlanError(
                f"plan must keep the final exit (index {n_exits - 1}), "
                f"kept {self.kept_exits}"
            )
        if any(k < 0 or k >= n_exits for k in self.kept_exits):
            raise PlanError(f"exit index out of range: {self.kept_exits}")
        n_cuts = len(model.backbone.cut_points)
        if self.partition_cut >= n_cuts:
            raise PlanError(
                f"partition cut {self.partition_cut} out of range (< {n_cuts})"
            )

    @property
    def is_fully_local(self) -> bool:
        """True when the plan never uses a server (partition at the sink)."""
        # resolved against a model by evaluate_plan; stored plans encode the
        # convention that the final backbone cut index means fully local.
        return False  # overridden semantics live in surgery.evaluate_plan


@dataclass(frozen=True)
class PlanFeatures:
    """Allocation-independent cost/quality summary of one surgery plan.

    All expectations are per request.  See the module docstring for how
    latency is reconstructed from these numbers.
    """

    plan: SurgeryPlan
    dev_flops: float  # E[FLOPs executed on the end device]
    srv_flops: float  # E[FLOPs executed on the server]
    wire_bytes: float  # E[bytes crossing the network, both directions]
    p_offload: float  # P(request crosses the network)
    accuracy: float  # expected (exit-rate weighted) accuracy
    exit_probs: Tuple[float, ...] = ()  # per kept exit, diagnostics
    # second moments (E[X^2], unconditional) — drive the M/G/1 congestion
    # terms; multi-exit service times are bimodal, so these matter
    dev_flops_sq: float = 0.0
    srv_flops_sq: float = 0.0
    wire_bytes_sq: float = 0.0

    def __post_init__(self) -> None:
        if min(self.dev_flops, self.srv_flops, self.wire_bytes) < 0:
            raise PlanError("negative expected cost in plan features")
        if not (0.0 - 1e-12 <= self.p_offload <= 1.0 + 1e-12):
            raise PlanError(f"p_offload {self.p_offload} outside [0,1]")
        if not (0.0 < self.accuracy <= 1.0):
            raise PlanError(f"accuracy {self.accuracy} outside (0,1]")
        for m1, m2, label in (
            (self.dev_flops, self.dev_flops_sq, "dev"),
            (self.srv_flops, self.srv_flops_sq, "srv"),
            (self.wire_bytes, self.wire_bytes_sq, "wire"),
        ):
            if m2 < 0:
                raise PlanError(f"negative second moment ({label})")
            # E[X^2] >= E[X]^2 must hold; zero means "not provided"
            if m2 > 0 and m2 < m1 * m1 * (1 - 1e-9):
                raise PlanError(f"impossible moments for {label}: {m1}, {m2}")

    @property
    def is_local_only(self) -> bool:
        """True when no request of this plan ever touches a server."""
        return self.p_offload <= 0.0 and self.srv_flops <= 0.0


@dataclass(frozen=True)
class JointPlan:
    """A solved instance: per-task surgery + allocation decisions.

    Attributes
    ----------
    assignment:
        task name -> server index (or ``None`` for local-only execution).
    features:
        task name -> chosen :class:`PlanFeatures`.
    compute_shares / bandwidth_shares:
        task name -> share in (0, 1] of the assigned server / access link
        (1.0 and unused for local-only tasks).
    latencies:
        task name -> predicted expected end-to-end latency (s).
    objective_value:
        Value of the objective this plan was optimized for.
    """

    assignment: Dict[str, Optional[int]]
    features: Dict[str, PlanFeatures]
    compute_shares: Dict[str, float]
    bandwidth_shares: Dict[str, float]
    latencies: Dict[str, float]
    objective_value: float

    def latency_of(self, task: str) -> float:
        return self.latencies[task]

    def server_of(self, task: str) -> Optional[int]:
        return self.assignment[task]

    def summary(self) -> str:
        """One line per task for logs and examples."""
        lines = []
        for name in sorted(self.latencies):
            srv = self.assignment[name]
            srv_s = f"srv{srv}" if srv is not None else "local"
            f = self.features[name]
            lines.append(
                f"{name:>10s} -> {srv_s:<6s} cut@{f.plan.partition_cut:<3d} "
                f"exits={list(f.plan.kept_exits)} thr={[round(t, 2) for t in f.plan.thresholds]} "
                f"x={self.compute_shares[name]:.2f} y={self.bandwidth_shares[name]:.2f} "
                f"lat={self.latencies[name] * 1e3:7.2f}ms acc={f.accuracy:.3f}"
            )
        return "\n".join(lines)
