"""Online re-optimization controller ("in the wild" operation).

The joint optimizer solves a *snapshot*; real deployments see bandwidth
drift, fades, and load changes.  :class:`OnlineController` wraps the solver
into the runtime loop the paper family's dynamic evaluations imply:

- it observes the current environment (per-link bandwidth, per-task arrival
  rates) through lightweight :class:`EnvironmentSample` updates;
- it re-solves only when the observation drifts materially from the
  conditions the active plan was solved for (relative-change trigger with
  hysteresis, so a noisy link doesn't cause re-plan thrash);
- candidate sets are built once and reused across re-solves, so a re-plan
  costs only the solve (sub-second at realistic sizes — experiment E9).

The controller is deliberately synchronous and deterministic: feed it
samples, it returns whether it re-planned and the active plan.  The
dynamic-bandwidth experiment (E11) and the
``examples/dynamic_network_adaptation.py`` walkthrough are exactly this loop
unrolled by hand; ablation bench A4 measures what the trigger thresholds buy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateSet, build_candidates
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.core.sharding import ShardPlan
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.network.link import Link
from repro.network.topology import StarTopology
from repro.telemetry.drift import DriftConfig, ShardDriftMonitor


@dataclass(frozen=True)
class EnvironmentSample:
    """One observation of the runtime environment.

    ``bandwidth_bps`` maps (device_name, server_name) -> measured capacity;
    pairs omitted keep their previous value.  ``arrival_rates`` maps task
    name -> measured request rate; omitted tasks keep their spec rate.
    ``server_down`` / ``server_up`` report edge-server liveness transitions
    (health-check outcomes): a newly-down server that carries assigned tasks
    triggers an *immediate* plan repair, bypassing drift hysteresis.
    ``service_times_s`` maps task name -> measured mean service time; it does
    not feed the re-plan trigger (the solver models service time analytically)
    but it does feed the statistical drift monitor, which flags shards whose
    measured behaviour has shifted from the solved-for regime.
    """

    time_s: float
    bandwidth_bps: Dict[Tuple[str, str], float] = field(default_factory=dict)
    arrival_rates: Dict[str, float] = field(default_factory=dict)
    server_down: Tuple[str, ...] = ()
    server_up: Tuple[str, ...] = ()
    service_times_s: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigError("sample time must be >= 0")
        for pair, bw in self.bandwidth_bps.items():
            if bw <= 0:
                raise ConfigError(f"non-positive bandwidth for {pair}")
        for name, rate in self.arrival_rates.items():
            if rate <= 0:
                raise ConfigError(f"non-positive arrival rate for {name}")
        for name, svc in self.service_times_s.items():
            if svc <= 0:
                raise ConfigError(f"non-positive service time for {name!r}")
        overlap = set(self.server_down) & set(self.server_up)
        if overlap:
            raise ConfigError(f"servers both down and up in one sample: {overlap}")


@dataclass(frozen=True)
class ControllerConfig:
    """Re-plan trigger tuning.

    A re-solve fires when any observed bandwidth or arrival rate deviates
    from the values the active plan was solved with by more than
    ``replan_threshold`` (relative), and at least ``min_replan_interval_s``
    has passed since the last re-plan (hysteresis against flapping).
    """

    replan_threshold: float = 0.3
    min_replan_interval_s: float = 1.0
    #: when a re-solve leaves deadline violations (e.g. survivors of a server
    #: failure are overloaded), route the task set through admission control
    #: and shed the rejected tasks (exposed via ``OnlineController.shed_tasks``)
    shed_on_overload: bool = False

    def __post_init__(self) -> None:
        if self.replan_threshold < 0:
            raise ConfigError("replan_threshold must be >= 0")
        if self.min_replan_interval_s < 0:
            raise ConfigError("min_replan_interval_s must be >= 0")


@dataclass
class ControllerEvent:
    """Record of one controller decision (for diagnostics/experiments)."""

    time_s: float
    replanned: bool
    reason: str
    objective: float


class OnlineController:
    """Re-plans a task set as the environment drifts."""

    def __init__(
        self,
        cluster: EdgeCluster,
        tasks: Sequence[TaskSpec],
        latency_model: Optional[LatencyModel] = None,
        objective: Objective = Objective.AVG_LATENCY,
        solver_config: Optional[JointSolverConfig] = None,
        config: Optional[ControllerConfig] = None,
        candidates: Optional[Sequence[CandidateSet]] = None,
        seed: int = 0,
        drift: Optional[DriftConfig] = None,
        shard_plan: Optional[ShardPlan] = None,
        registry=None,
    ) -> None:
        if not tasks:
            raise ConfigError("controller needs at least one task")
        if shard_plan is not None and len(shard_plan.task_shard) != len(tasks):
            raise ConfigError(
                "shard_plan homes a different task set "
                f"({len(shard_plan.task_shard)} tasks, controller has {len(tasks)})"
            )
        self.config = config or ControllerConfig()
        self._objective = objective
        self._solver_config = solver_config or JointSolverConfig()
        self._latency_model = latency_model or LatencyModel()
        self._seed = seed
        self._base_cluster = cluster
        self._tasks: List[TaskSpec] = list(tasks)
        self._candidates = (
            list(candidates)
            if candidates is not None
            else [build_candidates(t) for t in tasks]
        )
        # live environment state
        self._bandwidth: Dict[Tuple[str, str], float] = {
            k: l.bandwidth_bps for k, l in cluster.topology.links.items()
        }
        self._rates: Dict[str, float] = {t.name: t.arrival_rate for t in tasks}
        self._down_servers: set = set()
        #: tasks shed by the latest overload-repair solve (empty otherwise)
        self.shed_tasks: Tuple[str, ...] = ()
        # solved-against snapshots
        self._solved_bandwidth: Dict[Tuple[str, str], float] = {}
        self._solved_rates: Dict[str, float] = {}
        self._last_replan_s = -np.inf
        self.events: List[ControllerEvent] = []
        # statistical drift monitor (independent of the thresholded re-plan
        # trigger): flags *which shards* have left the solved-for regime
        self._shard_plan = shard_plan
        self._registry = registry
        # the last full sharded solve in base-cluster indexing — what an
        # incremental re-solve stitches its clean shards from; None whenever
        # the active plan did not come from a clean full-cluster sharded
        # solve (down servers, shedding, centralized solver)
        self._last_result = None
        self.drift_monitor: Optional[ShardDriftMonitor] = None
        if drift is not None:
            task_shard = {
                t.name: (shard_plan.task_shard[i] if shard_plan is not None else 0)
                for i, t in enumerate(tasks)
            }
            self.drift_monitor = ShardDriftMonitor(task_shard, drift, seed=seed)
        self._plan = self._solve(time_s=0.0, reason="initial solve")

    # -- public API ------------------------------------------------------------

    @property
    def plan(self) -> JointPlan:
        """The currently active joint plan."""
        return self._plan

    @property
    def replan_count(self) -> int:
        return sum(e.replanned for e in self.events) - 1  # exclude initial

    @property
    def down_servers(self) -> Tuple[str, ...]:
        """Servers currently believed down, sorted."""
        return tuple(sorted(self._down_servers))

    @property
    def drifted_shards(self) -> Tuple[int, ...]:
        """Shards the statistical drift monitor currently flags, sorted.

        Empty when drift detection is off (no ``DriftConfig`` given) or no
        stream has accumulated enough samples to shift verdict.  These are
        the shards worth routing through a targeted shard-local re-solve
        rather than a full re-plan.
        """
        if self.drift_monitor is None:
            return ()
        return self.drift_monitor.drifted_shards()

    def current_cluster(self) -> EdgeCluster:
        """The cluster patched with observed bandwidths, minus down servers.

        Raises :class:`~repro.errors.ConfigError` when every server is down —
        there is nothing left to re-plan over (callers should fall back to
        fully local operation).
        """
        topo = self._base_cluster.topology
        surviving = [
            s for s in self._base_cluster.servers if s.name not in self._down_servers
        ]
        if not surviving:
            raise ConfigError("all edge servers are down; nothing to re-plan over")
        alive = {s.name for s in surviving}
        links = {
            k: Link(self._bandwidth[k], rtt_s=l.rtt_s, name=l.name)
            for k, l in topo.links.items()
            if k[1] in alive
        }
        return EdgeCluster(
            list(self._base_cluster.end_devices),
            surviving,
            StarTopology(list(topo.device_names), [s.name for s in surviving], links),
        )

    def current_tasks(self) -> List[TaskSpec]:
        """Tasks patched with the latest observed arrival rates."""
        return [
            dataclasses.replace(t, arrival_rate=self._rates[t.name])
            for t in self._tasks
        ]

    def observe(self, sample: EnvironmentSample) -> bool:
        """Ingest one environment sample; returns True if a re-plan fired.

        Bandwidth/arrival drift goes through the thresholded, hysteresis-
        protected trigger.  A server-liveness transition does not: a newly
        down server carrying assigned tasks strands their offload path, so
        the repair solve fires immediately regardless of how recently the
        controller re-planned.
        """
        for pair, bw in sample.bandwidth_bps.items():
            if pair not in self._bandwidth:
                raise ConfigError(f"sample references unknown link {pair}")
            self._bandwidth[pair] = bw
        for name, rate in sample.arrival_rates.items():
            if name not in self._rates:
                raise ConfigError(f"sample references unknown task {name!r}")
            self._rates[name] = rate
        for name in sample.service_times_s:
            if name not in self._rates:
                raise ConfigError(f"sample references unknown task {name!r}")
        if self.drift_monitor is not None:
            for name, rate in sample.arrival_rates.items():
                self.drift_monitor.observe(name, arrival_rate=rate)
            for name, svc in sample.service_times_s.items():
                self.drift_monitor.observe(name, service_time_s=svc)
            if self._registry is not None:
                drifted = set(self.drift_monitor.drifted_shards())
                shards = (
                    range(self._shard_plan.num_shards)
                    if self._shard_plan is not None
                    else (0,)
                )
                for s in shards:
                    self._registry.gauge(f"shard.{s}.drifted").set(
                        1.0 if s in drifted else 0.0
                    )
        known = {s.name for s in self._base_cluster.servers}
        newly_down: List[str] = []
        for name in sample.server_down:
            if name not in known:
                raise ConfigError(f"sample references unknown server {name!r}")
            if name not in self._down_servers:
                self._down_servers.add(name)
                newly_down.append(name)
        recovered: List[str] = []
        for name in sample.server_up:
            if name not in known:
                raise ConfigError(f"sample references unknown server {name!r}")
            if name in self._down_servers:
                self._down_servers.remove(name)
                recovered.append(name)

        stranded = sorted(
            t
            for t, s in self._plan.assignment.items()
            if s is not None and self._base_cluster.servers[s].name in newly_down
        )
        if stranded:
            self._plan = self._solve(
                sample.time_s,
                f"server failure {sorted(newly_down)} strands {stranded}",
            )
            return True

        reason = self._drift_reason()
        if reason is None and recovered:
            reason = f"server recovery {sorted(recovered)}"
        if reason is None:
            self.events.append(
                ControllerEvent(sample.time_s, False, "within threshold", self._plan.objective_value)
            )
            return False
        if sample.time_s - self._last_replan_s < self.config.min_replan_interval_s:
            self.events.append(
                ControllerEvent(sample.time_s, False, f"hysteresis ({reason})", self._plan.objective_value)
            )
            return False
        self._plan = self._solve(sample.time_s, reason)
        return True

    def repair_update(self, time_s: float):
        """Package the active plan as a :class:`~repro.faults.policy.PlanUpdate`.

        The failure-aware simulator applies the update to arrivals from
        ``time_s`` onward; tasks shed by the latest overload repair ride
        along so the runtime drops them at admission.
        """
        from repro.faults.policy import PlanUpdate

        return PlanUpdate(time_s=time_s, plan=self._plan, shed_tasks=self.shed_tasks)

    # -- internals -----------------------------------------------------------

    def _drift_reason(self) -> Optional[str]:
        thr = self.config.replan_threshold
        for pair, bw in self._bandwidth.items():
            ref = self._solved_bandwidth.get(pair, bw)
            if abs(bw - ref) > thr * ref:
                return f"bandwidth drift on {pair}: {ref:.3g} -> {bw:.3g} B/s"
        for name, rate in self._rates.items():
            ref = self._solved_rates.get(name, rate)
            if abs(rate - ref) > thr * ref:
                return f"arrival drift on {name}: {ref:.3g} -> {rate:.3g} req/s"
        return None

    def _remap_servers(self, plan: JointPlan, cluster: EdgeCluster) -> JointPlan:
        """Translate ``plan``'s server indices from ``cluster`` (the surviving
        sub-cluster solved over) back to base-cluster indexing, which is what
        every consumer of :attr:`plan` (simulator, experiments) resolves
        against."""
        if [s.name for s in cluster.servers] == [
            s.name for s in self._base_cluster.servers
        ]:
            return plan
        to_base = {
            i: self._base_cluster.server_index(s.name)
            for i, s in enumerate(cluster.servers)
        }
        assignment = {
            name: (to_base[s] if s is not None else None)
            for name, s in plan.assignment.items()
        }
        return dataclasses.replace(plan, assignment=assignment)

    def _solve(self, time_s: float, reason: str) -> JointPlan:
        incremental = self._try_incremental(time_s, reason)
        if incremental is not None:
            return incremental
        cluster = self.current_cluster()
        tasks = self.current_tasks()
        result = JointOptimizer(
            cluster,
            latency_model=self._latency_model,
            objective=self._objective,
            config=self._solver_config,
        ).solve(tasks, candidates=self._candidates, seed=self._seed)
        plan = result.plan
        self.shed_tasks = ()
        if self.config.shed_on_overload and any(
            not (plan.latencies[t.name] <= t.deadline_s) for t in tasks
        ):
            plan = self._shed_overload(tasks, cluster, plan)
        plan = self._remap_servers(plan, cluster)
        self._last_result = (
            result
            if getattr(result, "shard_plan", None) is not None
            and not self._down_servers
            and not self.shed_tasks
            else None
        )
        self._solved_bandwidth = dict(self._bandwidth)
        self._solved_rates = dict(self._rates)
        self._last_replan_s = time_s
        self.events.append(ControllerEvent(time_s, True, reason, plan.objective_value))
        return plan

    def _try_incremental(self, time_s: float, reason: str) -> Optional[JointPlan]:
        """Targeted re-plan of drift-flagged shards, when that is sound.

        Fires only when the sharded solver is active, the previous plan came
        from a clean full-cluster sharded solve, the statistical drift
        monitor flags a non-empty *strict subset* of shards, and the trigger
        is environmental drift rather than a server-liveness transition.
        The flagged shards route through
        :func:`~repro.core.coordinator.resolve_dirty` — a per-shard delta
        (clean shards keep their plan by identity, re-priced under the
        observed environment) — and their drift streams re-calibrate.
        Anything else (global drift, faults, shedding) escalates to the full
        solve as before.
        """
        if (
            self._last_result is None
            or self.drift_monitor is None
            or self._solver_config.shards <= 1
            or self._down_servers
            or reason.startswith("server")
            or self.config.shed_on_overload
        ):
            return None
        dirty = self.drift_monitor.drifted_shards()
        k = self._last_result.shard_plan.num_shards
        if not dirty or len(dirty) >= k or any(not 0 <= s < k for s in dirty):
            return None
        from repro.core.coordinator import resolve_dirty

        result = resolve_dirty(
            self.current_tasks(),
            self.current_cluster(),
            self._last_result,
            dirty,
            latency_model=self._latency_model,
            objective=self._objective,
            config=self._solver_config,
            candidates=self._candidates,
            seed=self._seed,
        )
        for s in dirty:
            self.drift_monitor.reset_shard(s)
        self._last_result = result
        self.shed_tasks = ()
        self._solved_bandwidth = dict(self._bandwidth)
        self._solved_rates = dict(self._rates)
        self._last_replan_s = time_s
        self.events.append(
            ControllerEvent(
                time_s,
                True,
                f"incremental re-solve of shards {list(dirty)} ({reason})",
                result.plan.objective_value,
            )
        )
        return result.plan

    def _shed_overload(
        self, tasks: List[TaskSpec], cluster: EdgeCluster, plan: JointPlan
    ) -> JointPlan:
        """Route an overloaded task set through admission control.

        Rejected tasks are recorded in :attr:`shed_tasks` and keep local-only
        placeholder entries in the returned plan (their features are carried
        over from ``plan``), so downstream consumers still find every task.
        """
        from repro.core.admission import admit_tasks

        res = admit_tasks(
            tasks,
            cluster,
            latency_model=self._latency_model,
            candidates=self._candidates,
            solver_config=self._solver_config,
            seed=self._seed,
        )
        self.shed_tasks = tuple(t.name for t in res.rejected)
        if not self.shed_tasks or res.plan is None:
            return plan
        admitted = res.plan
        assignment = dict(admitted.assignment)
        features = dict(admitted.features)
        compute = dict(admitted.compute_shares)
        bandwidth = dict(admitted.bandwidth_shares)
        latencies = dict(admitted.latencies)
        for name in self.shed_tasks:
            assignment[name] = None
            features[name] = plan.features[name]
            compute[name] = 1.0
            bandwidth[name] = 1.0
            latencies[name] = float("inf")
        return JointPlan(
            assignment=assignment,
            features=features,
            compute_shares=compute,
            bandwidth_shares=bandwidth,
            latencies=latencies,
            objective_value=admitted.objective_value,
        )
