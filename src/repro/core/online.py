"""Online re-optimization controller ("in the wild" operation).

The joint optimizer solves a *snapshot*; real deployments see bandwidth
drift, fades, and load changes.  :class:`OnlineController` wraps the solver
into the runtime loop the paper family's dynamic evaluations imply:

- it observes the current environment (per-link bandwidth, per-task arrival
  rates) through lightweight :class:`EnvironmentSample` updates;
- it re-solves only when the observation drifts materially from the
  conditions the active plan was solved for (relative-change trigger with
  hysteresis, so a noisy link doesn't cause re-plan thrash);
- candidate sets are built once and reused across re-solves, so a re-plan
  costs only the solve (sub-second at realistic sizes — experiment E9).

The controller is deliberately synchronous and deterministic: feed it
samples, it returns whether it re-planned and the active plan.  The
dynamic-bandwidth experiment (E11) and the
``examples/dynamic_network_adaptation.py`` walkthrough are exactly this loop
unrolled by hand; ablation bench A4 measures what the trigger thresholds buy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateSet, build_candidates
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.network.link import Link
from repro.network.topology import StarTopology


@dataclass(frozen=True)
class EnvironmentSample:
    """One observation of the runtime environment.

    ``bandwidth_bps`` maps (device_name, server_name) -> measured capacity;
    pairs omitted keep their previous value.  ``arrival_rates`` maps task
    name -> measured request rate; omitted tasks keep their spec rate.
    """

    time_s: float
    bandwidth_bps: Dict[Tuple[str, str], float] = field(default_factory=dict)
    arrival_rates: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigError("sample time must be >= 0")
        for pair, bw in self.bandwidth_bps.items():
            if bw <= 0:
                raise ConfigError(f"non-positive bandwidth for {pair}")
        for name, rate in self.arrival_rates.items():
            if rate <= 0:
                raise ConfigError(f"non-positive arrival rate for {name}")


@dataclass(frozen=True)
class ControllerConfig:
    """Re-plan trigger tuning.

    A re-solve fires when any observed bandwidth or arrival rate deviates
    from the values the active plan was solved with by more than
    ``replan_threshold`` (relative), and at least ``min_replan_interval_s``
    has passed since the last re-plan (hysteresis against flapping).
    """

    replan_threshold: float = 0.3
    min_replan_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.replan_threshold < 0:
            raise ConfigError("replan_threshold must be >= 0")
        if self.min_replan_interval_s < 0:
            raise ConfigError("min_replan_interval_s must be >= 0")


@dataclass
class ControllerEvent:
    """Record of one controller decision (for diagnostics/experiments)."""

    time_s: float
    replanned: bool
    reason: str
    objective: float


class OnlineController:
    """Re-plans a task set as the environment drifts."""

    def __init__(
        self,
        cluster: EdgeCluster,
        tasks: Sequence[TaskSpec],
        latency_model: Optional[LatencyModel] = None,
        objective: Objective = Objective.AVG_LATENCY,
        solver_config: Optional[JointSolverConfig] = None,
        config: Optional[ControllerConfig] = None,
        candidates: Optional[Sequence[CandidateSet]] = None,
        seed: int = 0,
    ) -> None:
        if not tasks:
            raise ConfigError("controller needs at least one task")
        self.config = config or ControllerConfig()
        self._objective = objective
        self._solver_config = solver_config or JointSolverConfig()
        self._latency_model = latency_model or LatencyModel()
        self._seed = seed
        self._base_cluster = cluster
        self._tasks: List[TaskSpec] = list(tasks)
        self._candidates = (
            list(candidates)
            if candidates is not None
            else [build_candidates(t) for t in tasks]
        )
        # live environment state
        self._bandwidth: Dict[Tuple[str, str], float] = {
            k: l.bandwidth_bps for k, l in cluster.topology.links.items()
        }
        self._rates: Dict[str, float] = {t.name: t.arrival_rate for t in tasks}
        # solved-against snapshots
        self._solved_bandwidth: Dict[Tuple[str, str], float] = {}
        self._solved_rates: Dict[str, float] = {}
        self._last_replan_s = -np.inf
        self.events: List[ControllerEvent] = []
        self._plan = self._solve(time_s=0.0, reason="initial solve")

    # -- public API ------------------------------------------------------------

    @property
    def plan(self) -> JointPlan:
        """The currently active joint plan."""
        return self._plan

    @property
    def replan_count(self) -> int:
        return sum(e.replanned for e in self.events) - 1  # exclude initial

    def current_cluster(self) -> EdgeCluster:
        """The cluster patched with the latest observed bandwidths."""
        topo = self._base_cluster.topology
        links = {
            k: Link(self._bandwidth[k], rtt_s=l.rtt_s, name=l.name)
            for k, l in topo.links.items()
        }
        return self._base_cluster.with_topology(
            StarTopology(list(topo.device_names), list(topo.server_names), links)
        )

    def current_tasks(self) -> List[TaskSpec]:
        """Tasks patched with the latest observed arrival rates."""
        return [
            dataclasses.replace(t, arrival_rate=self._rates[t.name])
            for t in self._tasks
        ]

    def observe(self, sample: EnvironmentSample) -> bool:
        """Ingest one environment sample; returns True if a re-plan fired."""
        for pair, bw in sample.bandwidth_bps.items():
            if pair not in self._bandwidth:
                raise ConfigError(f"sample references unknown link {pair}")
            self._bandwidth[pair] = bw
        for name, rate in sample.arrival_rates.items():
            if name not in self._rates:
                raise ConfigError(f"sample references unknown task {name!r}")
            self._rates[name] = rate

        reason = self._drift_reason()
        if reason is None:
            self.events.append(
                ControllerEvent(sample.time_s, False, "within threshold", self._plan.objective_value)
            )
            return False
        if sample.time_s - self._last_replan_s < self.config.min_replan_interval_s:
            self.events.append(
                ControllerEvent(sample.time_s, False, f"hysteresis ({reason})", self._plan.objective_value)
            )
            return False
        self._plan = self._solve(sample.time_s, reason)
        return True

    # -- internals -----------------------------------------------------------

    def _drift_reason(self) -> Optional[str]:
        thr = self.config.replan_threshold
        for pair, bw in self._bandwidth.items():
            ref = self._solved_bandwidth.get(pair, bw)
            if abs(bw - ref) > thr * ref:
                return f"bandwidth drift on {pair}: {ref:.3g} -> {bw:.3g} B/s"
        for name, rate in self._rates.items():
            ref = self._solved_rates.get(name, rate)
            if abs(rate - ref) > thr * ref:
                return f"arrival drift on {name}: {ref:.3g} -> {rate:.3g} req/s"
        return None

    def _solve(self, time_s: float, reason: str) -> JointPlan:
        cluster = self.current_cluster()
        tasks = self.current_tasks()
        result = JointOptimizer(
            cluster,
            latency_model=self._latency_model,
            objective=self._objective,
            config=self._solver_config,
        ).solve(tasks, candidates=self._candidates, seed=self._seed)
        self._solved_bandwidth = dict(self._bandwidth)
        self._solved_rates = dict(self._rates)
        self._last_replan_s = time_s
        self.events.append(
            ControllerEvent(time_s, True, reason, result.plan.objective_value)
        )
        return result.plan
