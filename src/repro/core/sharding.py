"""Shard plans and shard-local cluster views (the partitioned control plane).

The centralized :class:`~repro.core.joint.JointOptimizer` owns every task and
server of one :class:`~repro.devices.cluster.EdgeCluster`; that caps a solve
at hundreds of tasks because its superlinear pieces (the Hungarian matching,
the local-search sweep) price all tasks against all servers at once.  The
sharded control plane splits the problem in two:

- a :class:`ShardPlan` partitions the servers into disjoint shards (by
  contiguous "region" blocks or interleaved for heterogeneity balance) and
  deterministically *homes* every task to exactly one shard;
- a :class:`ShardView` presents one shard's servers as a duck-typed
  sub-cluster — the same ``servers`` / ``by_name`` / ``link`` surface
  :class:`~repro.devices.cluster.EdgeCluster` exposes — so a shard-local
  solve runs against the subset **without copying or re-validating** the
  parent cluster (lookups delegate to the parent's already-validated maps).

Task homing is capacity-bounded best-affinity: each task ranks shards by the
best candidate latency any of the shard's servers could offer it (optimistic
full-share estimate, no queueing — a pure affinity screen), and takes the
best-ranked shard that still has room under a load cap proportional to the
shard's server count.  The screen is cached by (candidate-feature identity,
device/link fingerprint), so scenario-built instances — thousands of tasks
cycling a handful of templates — home in O(templates × servers) sweeps, not
O(tasks × servers).

Everything here is deterministic: same cluster, tasks, and knobs → the same
partition and the same homing, independent of dict iteration or thread
schedule.  The cross-shard coordinator (:mod:`repro.core.coordinator`) owns
re-homing tasks between shards after the initial solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.plan import TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.device import DeviceSpec
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.network.link import Link

#: Server-partition strategies understood by :func:`partition_servers`.
SHARD_STRATEGIES = ("contiguous", "interleave")

#: Affinity-index build modes understood by :class:`AffinityIndex` (and the
#: ``affinity`` knob of :class:`~repro.core.joint.JointSolverConfig`).
AFFINITY_MODES = ("sparse", "dense")


@dataclass(frozen=True)
class ShardPlan:
    """A partition of one cluster's servers plus a task→shard homing.

    Attributes
    ----------
    server_shards:
        Per shard, the tuple of *global* server indices it owns.  Shards are
        disjoint, non-empty, and together cover every server exactly once.
    task_shard:
        Per task (same order as the task list it was built for), the index
        of the shard the task is homed to.
    shard_by:
        The partition strategy that produced ``server_shards`` (see
        :data:`SHARD_STRATEGIES`); informational.
    """

    server_shards: Tuple[Tuple[int, ...], ...]
    task_shard: Tuple[int, ...]
    shard_by: str = "contiguous"

    def __post_init__(self) -> None:
        if not self.server_shards:
            raise ConfigError("shard plan needs at least one shard")
        seen: set = set()
        for shard in self.server_shards:
            if not shard:
                raise ConfigError("empty server shard")
            for s in shard:
                if s in seen:
                    raise ConfigError(f"server {s} appears in two shards")
                seen.add(s)
        if seen != set(range(len(seen))) or (seen and max(seen) != len(seen) - 1):
            raise ConfigError(
                f"server shards must partition 0..{len(seen) - 1}, got {sorted(seen)}"
            )
        k = len(self.server_shards)
        for t in self.task_shard:
            if not (0 <= t < k):
                raise ConfigError(f"task homed to unknown shard {t} (of {k})")
        # server -> shard inverse, built once so shard_of_server is O(1)
        # (the migration loop asks it per accepted move; a linear scan made
        # that O(servers) per move at 100k-task scale)
        shard_of = [0] * len(seen)
        for idx, shard in enumerate(self.server_shards):
            for s in shard:
                shard_of[s] = idx
        object.__setattr__(self, "_shard_of", tuple(shard_of))

    @property
    def num_shards(self) -> int:
        return len(self.server_shards)

    @property
    def num_servers(self) -> int:
        return sum(len(s) for s in self.server_shards)

    def tasks_of(self, shard: int) -> List[int]:
        """Task indices homed to ``shard``, in global task order."""
        return [i for i, s in enumerate(self.task_shard) if s == shard]

    def tasks_by_shard(self) -> List[List[int]]:
        """Per shard, the task indices homed to it — one O(tasks) pass.

        Equivalent to ``[plan.tasks_of(s) for s in range(k)]`` (each inner
        list ascending), without the O(tasks × shards) repeated scans.
        """
        out: List[List[int]] = [[] for _ in range(self.num_shards)]
        for i, s in enumerate(self.task_shard):
            out[s].append(i)
        return out

    def shard_of_server(self, server: int) -> int:
        """The shard owning global server index ``server`` (O(1))."""
        if not (0 <= server < len(self._shard_of)):
            raise ConfigError(f"server {server} not in any shard")
        return self._shard_of[server]

    def with_task_shard(self, task_shard: Sequence[int]) -> "ShardPlan":
        """A copy with the homing replaced (after migration rounds)."""
        return ShardPlan(self.server_shards, tuple(task_shard), self.shard_by)


class ShardView:
    """One shard's servers presented as a sub-cluster, without copying.

    Exposes the subset of the :class:`~repro.devices.cluster.EdgeCluster`
    surface the solver stack reads — ``servers``, ``num_servers``,
    ``by_name``, ``link``, ``server_index`` — with server *positions*
    renumbered to the shard-local range ``0..len(shard)-1`` and name/link
    lookups delegated to the parent's validated maps.  A
    :class:`~repro.core.joint.JointOptimizer` built over a view therefore
    solves exactly the sub-problem of the shard's servers plus whatever
    tasks it is given, at sub-problem cost.

    ``to_global`` / ``to_local`` translate between shard-local server
    indices (what a shard solve's plan contains) and global indices (what
    the coordinator's merged plan contains).
    """

    __slots__ = ("parent", "server_ids", "servers", "_local_of")

    def __init__(self, parent: EdgeCluster, server_ids: Sequence[int]) -> None:
        m = parent.num_servers
        ids = tuple(int(s) for s in server_ids)
        if not ids:
            raise ConfigError("shard view needs at least one server")
        for s in ids:
            if not (0 <= s < m):
                raise ConfigError(f"server index {s} outside cluster (m={m})")
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate server indices in shard view: {ids}")
        self.parent = parent
        self.server_ids = ids
        self.servers = [parent.servers[s] for s in ids]
        self._local_of = {g: l for l, g in enumerate(ids)}

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def num_devices(self) -> int:
        return self.parent.num_devices

    @property
    def topology(self) -> object:
        """The parent's topology (row fingerprints stay valid on the subset).

        A device row over *all* parent servers fingerprints a superset of the
        view's columns, so equal parent rows imply equal view rows — the
        sparse affinity index's dedup stays sound when built over a view
        (nested sharding recurses through here).
        """
        return getattr(self.parent, "topology", None)

    def by_name(self, name: str) -> DeviceSpec:
        return self.parent.by_name(name)

    def link(self, device_name: str, server_name: str) -> Link:
        return self.parent.link(device_name, server_name)

    def server_index(self, name: str) -> int:
        for i, s in enumerate(self.servers):
            if s.name == name:
                return i
        raise ConfigError(f"unknown server {name!r} in shard view")

    def to_global(self, local: Optional[int]) -> Optional[int]:
        """Shard-local server index → global index (``None`` stays local)."""
        return None if local is None else self.server_ids[local]

    def to_local(self, global_idx: Optional[int]) -> Optional[int]:
        """Global server index → shard-local index (must be in this shard)."""
        if global_idx is None:
            return None
        try:
            return self._local_of[global_idx]
        except KeyError:
            raise ConfigError(
                f"server {global_idx} is not in this shard ({self.server_ids})"
            ) from None


def partition_servers(
    num_servers: int, shards: int, shard_by: str = "contiguous"
) -> Tuple[Tuple[int, ...], ...]:
    """Deterministically split ``0..num_servers-1`` into ``shards`` groups.

    ``"contiguous"`` cuts near-equal index blocks — the region/tier shape
    (servers provisioned together stay together).  ``"interleave"`` deals
    servers round-robin, spreading a heterogeneous speed mix evenly across
    shards.
    """
    if shard_by not in SHARD_STRATEGIES:
        raise ConfigError(
            f"unknown shard_by {shard_by!r}; available {SHARD_STRATEGIES}"
        )
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if shards > num_servers:
        raise ConfigError(
            f"cannot split {num_servers} servers into {shards} shards"
        )
    if shard_by == "interleave":
        return tuple(
            tuple(range(k, num_servers, shards)) for k in range(shards)
        )
    base, extra = divmod(num_servers, shards)
    out: List[Tuple[int, ...]] = []
    start = 0
    for k in range(shards):
        size = base + (1 if k < extra else 0)
        out.append(tuple(range(start, start + size)))
        start += size
    return tuple(out)


def partition_servers_nested(
    num_servers: int,
    regions: int,
    racks_per_region: int,
    shard_by: str = "contiguous",
) -> Tuple[Tuple[Tuple[int, ...], ...], ...]:
    """Two-level deterministic partition: regions, then racks inside each.

    Splits ``0..num_servers-1`` into ``regions`` top-level groups with
    :func:`partition_servers`, then splits each region's servers into up to
    ``racks_per_region`` racks with the same strategy applied to the
    region's *local* index space (so interleaving balances inside the
    region, not globally).  Regions smaller than ``racks_per_region`` get
    one rack per server — racks are never empty.

    The flattened racks are exactly the flattened regions, which are exactly
    ``0..num_servers-1``: each level is a true partition.  This is the
    server layout the coordinator's nested mode
    (``JointSolverConfig.nested_shards``) solves over — the outer
    ``solve_sharded`` owns the regions, each region's shard solve re-shards
    its view into racks.
    """
    if racks_per_region < 1:
        raise ConfigError(f"racks_per_region must be >= 1, got {racks_per_region}")
    out: List[Tuple[Tuple[int, ...], ...]] = []
    for region in partition_servers(num_servers, regions, shard_by):
        racks = min(racks_per_region, len(region))
        local = partition_servers(len(region), racks, shard_by)
        out.append(tuple(tuple(region[j] for j in rack) for rack in local))
    return tuple(out)


class AffinityIndex:
    """Template-deduplicated optimistic latency bounds ``B[template, server]``.

    The homing/migration screens need, for many (task, server) pairs, the
    best candidate latency a task could see on a server under a full-share,
    queueing-free estimate — a pure function of the task's candidate feature
    arrays, its device's speed fingerprint, and its per-server link row.
    Scenario-built instances repeat those per template (candidate sets from
    the memoized pipeline share one ``features`` list object; uniform star
    topologies share one ``Link``), so tasks are first collapsed to
    templates and the O(templates × servers) sweep matrix is computed once;
    every later screen is an array lookup.

    ``mode`` selects how the index is built and queried:

    - ``"dense"`` — the original sweep: per-task dedup keys carry the full
      per-server link-id row (O(tasks × servers) key build) and
      :meth:`foreign_mins` reduces a masked copy of the bound matrix per
      home shard.
    - ``"sparse"`` — identical *answers* at sub-O(tasks × servers) cost:
      dedup keys use the topology's O(1) row fingerprint
      (:meth:`~repro.network.topology.StarTopology.row_key`) when one is
      available, a per-template ``(bound, server)``-sorted top-k shortlist is
      cut with ``np.argpartition`` (widened on boundary ties so order is
      exact), and :meth:`foreign_mins` walks the shortlist instead of
      re-reducing the matrix.  Results are bit-identical to dense — both
      dedups are sound (tasks sharing a key share a bound row) and every
      tie breaks by the same (value, index) order.

    The compressed template→tasks mapping (:attr:`template_tasks`) and the
    per-partition :meth:`foreign_mins` / :meth:`shard_orders` caches let one
    index serve homing, every migration round, and incremental re-solves
    without recomputation.
    """

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        cluster: EdgeCluster,
        latency_model: Optional[LatencyModel] = None,
        mode: str = "dense",
    ) -> None:
        if len(candsets) != len(tasks):
            raise ConfigError("tasks/candsets length mismatch")
        if mode not in AFFINITY_MODES:
            raise ConfigError(
                f"unknown affinity mode {mode!r}; available {AFFINITY_MODES}"
            )
        self.mode = mode
        lm = latency_model or LatencyModel()
        m = cluster.num_servers
        keys: Dict[Tuple, int] = {}
        self.template_of: List[int] = []
        reps: List[int] = []
        topo = getattr(cluster, "topology", None) if mode == "sparse" else None
        row_key = getattr(topo, "row_key", None)
        for i, t in enumerate(tasks):
            device = cluster.by_name(t.device_name)
            if row_key is not None:
                links_part: Tuple = row_key(t.device_name)
            else:
                links_part = tuple(
                    id(cluster.link(t.device_name, srv.name))
                    for srv in cluster.servers
                )
            key = (
                id(candsets[i].features),
                device.peak_flops,
                tuple(sorted(device.efficiency.items())),
                device.overhead_s,
                links_part,
            )
            tpl = keys.get(key)
            if tpl is None:
                tpl = len(reps)
                keys[key] = tpl
                reps.append(i)
            self.template_of.append(tpl)
        self.bounds = np.empty((len(reps), m))
        for tpl, i in enumerate(reps):
            device = cluster.by_name(tasks[i].device_name)
            for s in range(m):
                server = cluster.servers[s]
                link = cluster.link(tasks[i].device_name, server.name)
                self.bounds[tpl, s] = float(
                    np.min(candsets[i].latencies(device, lm, server=server, link=link))
                )
        # compressed template -> tasks mapping (one O(tasks) pass); lets
        # screens iterate "all tasks of template t" without rescanning
        self.template_tasks: List[List[int]] = [[] for _ in reps]
        for i, tpl in enumerate(self.template_of):
            self.template_tasks[tpl].append(i)
        # per-partition caches (keyed by the server_shards tuple): the
        # foreign table and homing orders are pure functions of the
        # partition, so one solve — and any incremental re-solve after it —
        # computes each at most once
        self._foreign_cache: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._orders_cache: Dict[Tuple, np.ndarray] = {}
        self._prefix: Optional[np.ndarray] = None
        self._prefix_k: int = 0

    def _prefix_order(self, k: int) -> np.ndarray:
        """Per-template first-``k`` servers in exact ``(bound, index)`` order.

        ``np.argpartition`` cuts the k cheapest per row; rows where the k-th
        value ties with values outside the cut fall back to a full stable
        argsort, so the shortlist order always matches what a full
        ``sorted(..., key=(value, index))`` would produce.
        """
        m = self.bounds.shape[1]
        k = min(k, m)
        if self._prefix is not None and self._prefix_k >= k:
            return self._prefix[:, :k]
        if k >= m:
            order = np.argsort(self.bounds, axis=1, kind="stable")
        else:
            sel = np.argpartition(self.bounds, k - 1, axis=1)[:, :k]
            sel.sort(axis=1)  # ascending index, so a stable value-sort
            vals = np.take_along_axis(self.bounds, sel, axis=1)
            order = np.take_along_axis(
                sel, np.argsort(vals, axis=1, kind="stable"), axis=1
            )  # ...yields exact (value, index) order within the cut
            kth = vals.max(axis=1)
            ragged = (self.bounds <= kth[:, None]).sum(axis=1) > k
            if np.any(ragged):
                order[ragged] = np.argsort(
                    self.bounds[ragged], axis=1, kind="stable"
                )[:, :k]
        self._prefix = order
        self._prefix_k = k
        return order

    def shard_mins(
        self, server_shards: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per (template, shard): best bound over the shard's *own* servers
        and the (global) server achieving it."""
        cols = [np.asarray(tuple(shard)) for shard in server_shards]
        val = np.stack([self.bounds[:, c].min(axis=1) for c in cols], axis=1)
        srv = np.stack(
            [c[self.bounds[:, c].argmin(axis=1)] for c in cols], axis=1
        )
        return val, srv

    def shard_orders(self, server_shards: Sequence[Sequence[int]]) -> np.ndarray:
        """Per template, the shard preference order of :func:`home_tasks`.

        Row ``t`` is ``range(k)`` sorted by ``(shard_min[t, j], j)`` — the
        stable argsort ties exactly like the per-task Python sort the dense
        homing path runs, but once per template instead of once per task.
        Cached per partition.
        """
        pkey = tuple(tuple(s) for s in server_shards)
        cached = self._orders_cache.get(pkey)
        if cached is None:
            scores, _ = self.shard_mins(server_shards)
            cached = np.argsort(scores, axis=1, kind="stable")
            self._orders_cache[pkey] = cached
        return cached

    def foreign_mins(
        self, server_shards: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per (template, home shard): best bound over servers *outside* the
        shard and the server achieving it (migration's screen).

        Built at most once per partition (cached); the sparse mode reads the
        answer off the top-k shortlist — the first shortlist entry outside
        the home shard, which exists within the first ``max_shard + 1``
        entries because a shard holds at most ``max_shard`` servers.
        """
        pkey = tuple(tuple(s) for s in server_shards)
        cached = self._foreign_cache.get(pkey)
        if cached is not None:
            return cached
        if self.mode == "sparse":
            out = self._foreign_mins_sparse(pkey)
        else:
            out = self._foreign_mins_dense(server_shards)
        self._foreign_cache[pkey] = out
        return out

    def _foreign_mins_dense(
        self, server_shards: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        m = self.bounds.shape[1]
        vals = []
        srvs = []
        for shard in server_shards:
            mask = np.ones(m, dtype=bool)
            mask[list(shard)] = False
            foreign = np.flatnonzero(mask)
            if foreign.size == 0:
                vals.append(np.full(self.bounds.shape[0], np.inf))
                srvs.append(np.full(self.bounds.shape[0], -1))
                continue
            sub = self.bounds[:, foreign]
            vals.append(sub.min(axis=1))
            srvs.append(foreign[sub.argmin(axis=1)])
        return np.stack(vals, axis=1), np.stack(srvs, axis=1)

    def _foreign_mins_sparse(
        self, server_shards: Tuple[Tuple[int, ...], ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        num_templates, m = self.bounds.shape
        k = len(server_shards)
        shard_of = np.empty(m, dtype=np.int64)
        for sh, ids in enumerate(server_shards):
            shard_of[list(ids)] = sh
        max_shard = max(len(s) for s in server_shards)
        order = self._prefix_order(min(max_shard + 1, m))
        order_shard = shard_of[order]
        vals = np.full((num_templates, k), np.inf)
        srvs = np.full((num_templates, k), -1, dtype=np.int64)
        for tpl in range(num_templates):
            row_o = order[tpl]
            row_s = order_shard[tpl]
            first = int(row_o[0])
            s0 = int(row_s[0])
            # the global best server is foreign to every home shard but its
            # own; for that one home, the first entry from any other shard
            # is the answer (guaranteed inside the shortlist)
            vals[tpl, :] = self.bounds[tpl, first]
            srvs[tpl, :] = first
            vals[tpl, s0] = np.inf
            srvs[tpl, s0] = -1
            for pos in range(1, row_o.shape[0]):
                if int(row_s[pos]) != s0:
                    nxt = int(row_o[pos])
                    vals[tpl, s0] = self.bounds[tpl, nxt]
                    srvs[tpl, s0] = nxt
                    break
        return vals, srvs


def home_tasks(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    cluster: EdgeCluster,
    server_shards: Sequence[Sequence[int]],
    latency_model: Optional[LatencyModel] = None,
    affinity: Optional[AffinityIndex] = None,
) -> Tuple[int, ...]:
    """Capacity-bounded best-affinity homing of every task to one shard.

    Each task scores every shard by the best candidate latency any of the
    shard's servers offers under an optimistic full-share, queueing-free
    estimate (see :class:`AffinityIndex`), then takes its best-scoring shard
    whose load is still under ``ceil(n_tasks × shard_servers / total)``; if
    every preferred shard is full, the least-loaded shard (relative to its
    cap) takes the task.  Deterministic: tasks are visited in index order
    and ties break toward the lower shard index.

    A sparse index homes through per-template preference orders with a
    monotone full-shard cursor instead of a per-task O(shards log shards)
    sort: caps are static and loads only grow, so a shard observed full
    stays full and the cursor never backtracks.  The chosen shard per task
    is identical to the dense walk's.
    """
    if len(candsets) != len(tasks):
        raise ConfigError("tasks/candsets length mismatch")
    n = len(tasks)
    m = cluster.num_servers
    k = len(server_shards)
    caps = [max(1, -(-n * len(shard) // m)) for shard in server_shards]
    loads = [0] * k
    index = affinity or AffinityIndex(tasks, candsets, cluster, latency_model)

    out: List[int] = []
    if index.mode == "sparse":
        orders = index.shard_orders(server_shards)
        template_of = index.template_of
        cursor = [0] * orders.shape[0]
        for i in range(n):
            tpl = template_of[i]
            order = orders[tpl]
            c = cursor[tpl]
            # skip shards that filled since this template last homed; every
            # skip is permanent, so total cursor motion is O(templates × k)
            while c < k and loads[order[c]] >= caps[order[c]]:
                c += 1
            cursor[tpl] = c
            if c < k:
                chosen = int(order[c])
            else:  # all caps hit (rounding): least relatively loaded
                chosen = min(range(k), key=lambda j: (loads[j] / caps[j], j))
            loads[chosen] += 1
            out.append(chosen)
        return tuple(out)

    shard_scores, _ = index.shard_mins(server_shards)
    for i in range(n):
        scores = shard_scores[index.template_of[i]]
        order = sorted(range(k), key=lambda j: (scores[j], j))
        chosen = next((j for j in order if loads[j] < caps[j]), None)
        if chosen is None:  # all caps hit (rounding): least relatively loaded
            chosen = min(range(k), key=lambda j: (loads[j] / caps[j], j))
        loads[chosen] += 1
        out.append(chosen)
    return tuple(out)


def make_shard_plan(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    cluster: EdgeCluster,
    shards: int,
    shard_by: str = "contiguous",
    latency_model: Optional[LatencyModel] = None,
    affinity: Optional[AffinityIndex] = None,
) -> ShardPlan:
    """Partition the cluster's servers and home every task to a shard."""
    server_shards = partition_servers(cluster.num_servers, shards, shard_by)
    if shards == 1:
        # single shard: homing is trivial and the affinity sweep is skipped,
        # keeping the 1-shard path bit-identical (and cheap) vs centralized
        task_shard: Tuple[int, ...] = (0,) * len(tasks)
    else:
        task_shard = home_tasks(
            tasks, candsets, cluster, server_shards, latency_model, affinity
        )
    return ShardPlan(server_shards, task_shard, shard_by)
