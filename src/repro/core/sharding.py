"""Shard plans and shard-local cluster views (the partitioned control plane).

The centralized :class:`~repro.core.joint.JointOptimizer` owns every task and
server of one :class:`~repro.devices.cluster.EdgeCluster`; that caps a solve
at hundreds of tasks because its superlinear pieces (the Hungarian matching,
the local-search sweep) price all tasks against all servers at once.  The
sharded control plane splits the problem in two:

- a :class:`ShardPlan` partitions the servers into disjoint shards (by
  contiguous "region" blocks or interleaved for heterogeneity balance) and
  deterministically *homes* every task to exactly one shard;
- a :class:`ShardView` presents one shard's servers as a duck-typed
  sub-cluster — the same ``servers`` / ``by_name`` / ``link`` surface
  :class:`~repro.devices.cluster.EdgeCluster` exposes — so a shard-local
  solve runs against the subset **without copying or re-validating** the
  parent cluster (lookups delegate to the parent's already-validated maps).

Task homing is capacity-bounded best-affinity: each task ranks shards by the
best candidate latency any of the shard's servers could offer it (optimistic
full-share estimate, no queueing — a pure affinity screen), and takes the
best-ranked shard that still has room under a load cap proportional to the
shard's server count.  The screen is cached by (candidate-feature identity,
device/link fingerprint), so scenario-built instances — thousands of tasks
cycling a handful of templates — home in O(templates × servers) sweeps, not
O(tasks × servers).

Everything here is deterministic: same cluster, tasks, and knobs → the same
partition and the same homing, independent of dict iteration or thread
schedule.  The cross-shard coordinator (:mod:`repro.core.coordinator`) owns
re-homing tasks between shards after the initial solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.plan import TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.device import DeviceSpec
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.network.link import Link

#: Server-partition strategies understood by :func:`partition_servers`.
SHARD_STRATEGIES = ("contiguous", "interleave")


@dataclass(frozen=True)
class ShardPlan:
    """A partition of one cluster's servers plus a task→shard homing.

    Attributes
    ----------
    server_shards:
        Per shard, the tuple of *global* server indices it owns.  Shards are
        disjoint, non-empty, and together cover every server exactly once.
    task_shard:
        Per task (same order as the task list it was built for), the index
        of the shard the task is homed to.
    shard_by:
        The partition strategy that produced ``server_shards`` (see
        :data:`SHARD_STRATEGIES`); informational.
    """

    server_shards: Tuple[Tuple[int, ...], ...]
    task_shard: Tuple[int, ...]
    shard_by: str = "contiguous"

    def __post_init__(self) -> None:
        if not self.server_shards:
            raise ConfigError("shard plan needs at least one shard")
        seen: set = set()
        for shard in self.server_shards:
            if not shard:
                raise ConfigError("empty server shard")
            for s in shard:
                if s in seen:
                    raise ConfigError(f"server {s} appears in two shards")
                seen.add(s)
        if seen != set(range(len(seen))) or (seen and max(seen) != len(seen) - 1):
            raise ConfigError(
                f"server shards must partition 0..{len(seen) - 1}, got {sorted(seen)}"
            )
        k = len(self.server_shards)
        for t in self.task_shard:
            if not (0 <= t < k):
                raise ConfigError(f"task homed to unknown shard {t} (of {k})")

    @property
    def num_shards(self) -> int:
        return len(self.server_shards)

    @property
    def num_servers(self) -> int:
        return sum(len(s) for s in self.server_shards)

    def tasks_of(self, shard: int) -> List[int]:
        """Task indices homed to ``shard``, in global task order."""
        return [i for i, s in enumerate(self.task_shard) if s == shard]

    def shard_of_server(self, server: int) -> int:
        """The shard owning global server index ``server``."""
        for k, shard in enumerate(self.server_shards):
            if server in shard:
                return k
        raise ConfigError(f"server {server} not in any shard")

    def with_task_shard(self, task_shard: Sequence[int]) -> "ShardPlan":
        """A copy with the homing replaced (after migration rounds)."""
        return ShardPlan(self.server_shards, tuple(task_shard), self.shard_by)


class ShardView:
    """One shard's servers presented as a sub-cluster, without copying.

    Exposes the subset of the :class:`~repro.devices.cluster.EdgeCluster`
    surface the solver stack reads — ``servers``, ``num_servers``,
    ``by_name``, ``link``, ``server_index`` — with server *positions*
    renumbered to the shard-local range ``0..len(shard)-1`` and name/link
    lookups delegated to the parent's validated maps.  A
    :class:`~repro.core.joint.JointOptimizer` built over a view therefore
    solves exactly the sub-problem of the shard's servers plus whatever
    tasks it is given, at sub-problem cost.

    ``to_global`` / ``to_local`` translate between shard-local server
    indices (what a shard solve's plan contains) and global indices (what
    the coordinator's merged plan contains).
    """

    __slots__ = ("parent", "server_ids", "servers", "_local_of")

    def __init__(self, parent: EdgeCluster, server_ids: Sequence[int]) -> None:
        m = parent.num_servers
        ids = tuple(int(s) for s in server_ids)
        if not ids:
            raise ConfigError("shard view needs at least one server")
        for s in ids:
            if not (0 <= s < m):
                raise ConfigError(f"server index {s} outside cluster (m={m})")
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate server indices in shard view: {ids}")
        self.parent = parent
        self.server_ids = ids
        self.servers = [parent.servers[s] for s in ids]
        self._local_of = {g: l for l, g in enumerate(ids)}

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def num_devices(self) -> int:
        return self.parent.num_devices

    def by_name(self, name: str) -> DeviceSpec:
        return self.parent.by_name(name)

    def link(self, device_name: str, server_name: str) -> Link:
        return self.parent.link(device_name, server_name)

    def server_index(self, name: str) -> int:
        for i, s in enumerate(self.servers):
            if s.name == name:
                return i
        raise ConfigError(f"unknown server {name!r} in shard view")

    def to_global(self, local: Optional[int]) -> Optional[int]:
        """Shard-local server index → global index (``None`` stays local)."""
        return None if local is None else self.server_ids[local]

    def to_local(self, global_idx: Optional[int]) -> Optional[int]:
        """Global server index → shard-local index (must be in this shard)."""
        if global_idx is None:
            return None
        try:
            return self._local_of[global_idx]
        except KeyError:
            raise ConfigError(
                f"server {global_idx} is not in this shard ({self.server_ids})"
            ) from None


def partition_servers(
    num_servers: int, shards: int, shard_by: str = "contiguous"
) -> Tuple[Tuple[int, ...], ...]:
    """Deterministically split ``0..num_servers-1`` into ``shards`` groups.

    ``"contiguous"`` cuts near-equal index blocks — the region/tier shape
    (servers provisioned together stay together).  ``"interleave"`` deals
    servers round-robin, spreading a heterogeneous speed mix evenly across
    shards.
    """
    if shard_by not in SHARD_STRATEGIES:
        raise ConfigError(
            f"unknown shard_by {shard_by!r}; available {SHARD_STRATEGIES}"
        )
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if shards > num_servers:
        raise ConfigError(
            f"cannot split {num_servers} servers into {shards} shards"
        )
    if shard_by == "interleave":
        return tuple(
            tuple(range(k, num_servers, shards)) for k in range(shards)
        )
    base, extra = divmod(num_servers, shards)
    out: List[Tuple[int, ...]] = []
    start = 0
    for k in range(shards):
        size = base + (1 if k < extra else 0)
        out.append(tuple(range(start, start + size)))
        start += size
    return tuple(out)


class AffinityIndex:
    """Template-deduplicated optimistic latency bounds ``B[template, server]``.

    The homing/migration screens need, for many (task, server) pairs, the
    best candidate latency a task could see on a server under a full-share,
    queueing-free estimate — a pure function of the task's candidate feature
    arrays, its device's speed fingerprint, and its per-server link row.
    Scenario-built instances repeat those per template (candidate sets from
    the memoized pipeline share one ``features`` list object; uniform star
    topologies share one ``Link``), so tasks are first collapsed to
    templates and the O(templates × servers) sweep matrix is computed once;
    every later screen is an array lookup.
    """

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        cluster: EdgeCluster,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        if len(candsets) != len(tasks):
            raise ConfigError("tasks/candsets length mismatch")
        lm = latency_model or LatencyModel()
        m = cluster.num_servers
        keys: Dict[Tuple, int] = {}
        self.template_of: List[int] = []
        reps: List[int] = []
        for i, t in enumerate(tasks):
            device = cluster.by_name(t.device_name)
            key = (
                id(candsets[i].features),
                device.peak_flops,
                tuple(sorted(device.efficiency.items())),
                device.overhead_s,
                tuple(
                    id(cluster.link(t.device_name, srv.name))
                    for srv in cluster.servers
                ),
            )
            tpl = keys.get(key)
            if tpl is None:
                tpl = len(reps)
                keys[key] = tpl
                reps.append(i)
            self.template_of.append(tpl)
        self.bounds = np.empty((len(reps), m))
        for tpl, i in enumerate(reps):
            device = cluster.by_name(tasks[i].device_name)
            for s in range(m):
                server = cluster.servers[s]
                link = cluster.link(tasks[i].device_name, server.name)
                self.bounds[tpl, s] = float(
                    np.min(candsets[i].latencies(device, lm, server=server, link=link))
                )

    def shard_mins(
        self, server_shards: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per (template, shard): best bound over the shard's *own* servers
        and the (global) server achieving it."""
        cols = [np.asarray(tuple(shard)) for shard in server_shards]
        val = np.stack([self.bounds[:, c].min(axis=1) for c in cols], axis=1)
        srv = np.stack(
            [c[self.bounds[:, c].argmin(axis=1)] for c in cols], axis=1
        )
        return val, srv

    def foreign_mins(
        self, server_shards: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per (template, home shard): best bound over servers *outside* the
        shard and the server achieving it (migration's screen)."""
        m = self.bounds.shape[1]
        vals = []
        srvs = []
        for shard in server_shards:
            mask = np.ones(m, dtype=bool)
            mask[list(shard)] = False
            foreign = np.flatnonzero(mask)
            if foreign.size == 0:
                vals.append(np.full(self.bounds.shape[0], np.inf))
                srvs.append(np.full(self.bounds.shape[0], -1))
                continue
            sub = self.bounds[:, foreign]
            vals.append(sub.min(axis=1))
            srvs.append(foreign[sub.argmin(axis=1)])
        return np.stack(vals, axis=1), np.stack(srvs, axis=1)


def home_tasks(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    cluster: EdgeCluster,
    server_shards: Sequence[Sequence[int]],
    latency_model: Optional[LatencyModel] = None,
    affinity: Optional[AffinityIndex] = None,
) -> Tuple[int, ...]:
    """Capacity-bounded best-affinity homing of every task to one shard.

    Each task scores every shard by the best candidate latency any of the
    shard's servers offers under an optimistic full-share, queueing-free
    estimate (see :class:`AffinityIndex`), then takes its best-scoring shard
    whose load is still under ``ceil(n_tasks × shard_servers / total)``; if
    every preferred shard is full, the least-loaded shard (relative to its
    cap) takes the task.  Deterministic: tasks are visited in index order
    and ties break toward the lower shard index.
    """
    if len(candsets) != len(tasks):
        raise ConfigError("tasks/candsets length mismatch")
    n = len(tasks)
    m = cluster.num_servers
    k = len(server_shards)
    caps = [max(1, -(-n * len(shard) // m)) for shard in server_shards]
    loads = [0] * k
    index = affinity or AffinityIndex(tasks, candsets, cluster, latency_model)
    shard_scores, _ = index.shard_mins(server_shards)

    out: List[int] = []
    for i in range(n):
        scores = shard_scores[index.template_of[i]]
        order = sorted(range(k), key=lambda j: (scores[j], j))
        chosen = next((j for j in order if loads[j] < caps[j]), None)
        if chosen is None:  # all caps hit (rounding): least relatively loaded
            chosen = min(range(k), key=lambda j: (loads[j] / caps[j], j))
        loads[chosen] += 1
        out.append(chosen)
    return tuple(out)


def make_shard_plan(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    cluster: EdgeCluster,
    shards: int,
    shard_by: str = "contiguous",
    latency_model: Optional[LatencyModel] = None,
    affinity: Optional[AffinityIndex] = None,
) -> ShardPlan:
    """Partition the cluster's servers and home every task to a shard."""
    server_shards = partition_servers(cluster.num_servers, shards, shard_by)
    if shards == 1:
        # single shard: homing is trivial and the affinity sweep is skipped,
        # keeping the 1-shard path bit-identical (and cheap) vs centralized
        task_shard: Tuple[int, ...] = (0,) * len(tasks)
    else:
        task_shard = home_tasks(
            tasks, candsets, cluster, server_shards, latency_model, affinity
        )
    return ShardPlan(server_shards, task_shard, shard_by)
