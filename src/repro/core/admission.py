"""Admission control: when the edge cannot serve everyone, serve the right
subset.

Overload is a first-class regime for latency-sensitive inference: past a
load threshold no joint plan meets every deadline, and the practical policy
question becomes *which tasks to reject* so the admitted ones keep their
guarantees.  :func:`admit_tasks` implements the standard greedy dual:

1. solve the joint problem for the current admitted set;
2. if every admitted task's predicted latency meets its deadline (with
   ``margin``), stop;
3. otherwise reject the *least valuable violating* task — the one with the
   smallest ``weight / violation-ratio``, so low-priority badly-failing tasks
   go first — and re-solve.

Candidate sets are reused across iterations, so each round costs one solve.
The procedure terminates after at most ``len(tasks)`` rounds and always
returns a feasible (possibly empty-admission) outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateSet, build_candidates
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.rng import SeedLike


@dataclass
class AdmissionResult:
    """Outcome of admission control."""

    admitted: List[TaskSpec]
    rejected: List[TaskSpec]
    plan: Optional[JointPlan]  # plan for the admitted set; None if none admitted
    rounds: int
    #: (task name, predicted latency / deadline) at the moment of rejection
    rejection_log: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def admission_ratio(self) -> float:
        total = len(self.admitted) + len(self.rejected)
        return len(self.admitted) / total if total else 1.0


def admit_tasks(
    tasks: Sequence[TaskSpec],
    cluster: EdgeCluster,
    latency_model: Optional[LatencyModel] = None,
    candidates: Optional[Sequence[CandidateSet]] = None,
    margin: float = 1.0,
    solver_config: Optional[JointSolverConfig] = None,
    seed: SeedLike = 0,
) -> AdmissionResult:
    """Greedy deadline-driven admission control.

    ``margin`` scales the deadline check: a task is violating when its
    predicted expected latency exceeds ``margin * deadline`` (use < 1 for
    headroom against prediction error).
    """
    if not tasks:
        raise ConfigError("no tasks to admit")
    if margin <= 0:
        raise ConfigError("margin must be positive")
    lm = latency_model or LatencyModel()
    cfg = solver_config or JointSolverConfig()
    if candidates is None:
        candidates = [build_candidates(t) for t in tasks]
    elif len(candidates) != len(tasks):
        raise ConfigError("candidates/tasks length mismatch")

    admitted = list(range(len(tasks)))
    rejected: List[int] = []
    log: List[Tuple[str, float]] = []
    plan: Optional[JointPlan] = None
    rounds = 0
    while admitted:
        rounds += 1
        sub_tasks = [tasks[i] for i in admitted]
        sub_cands = [candidates[i] for i in admitted]
        plan = JointOptimizer(
            cluster,
            latency_model=lm,
            objective=Objective.DEADLINE_MISS,
            config=cfg,
        ).solve(sub_tasks, candidates=sub_cands, seed=seed).plan
        ratios = np.array(
            [plan.latencies[t.name] / (margin * t.deadline_s) for t in sub_tasks]
        )
        violating = [k for k, r in enumerate(ratios) if not (r <= 1.0)]
        if not violating:
            break
        # reject the least valuable violator: smallest weight, tie-broken by
        # worst violation ratio (inf-ratio tasks are maximally rejectable)
        def _key(k: int) -> Tuple[float, float]:
            r = ratios[k]
            return (sub_tasks[k].weight, -(r if np.isfinite(r) else np.inf))

        worst = min(violating, key=_key)
        victim = admitted[worst]
        log.append((tasks[victim].name, float(ratios[worst])))
        rejected.append(victim)
        admitted.pop(worst)
        plan = None
    return AdmissionResult(
        admitted=[tasks[i] for i in admitted],
        rejected=[tasks[i] for i in sorted(rejected)],
        plan=plan,
        rounds=rounds,
        rejection_log=log,
    )
