"""The joint optimizer: block-coordinate descent over (surgery, allocation).

The two decision blocks are mutually dependent — the best surgery plan
depends on the shares a task gets, and the right shares depend on how much
work each plan ships to the edge — so the solver alternates:

1. **Surgery step.** Holding assignment + shares fixed, each task re-picks
   the latency-minimal plan from its (accuracy-feasible, dominance-pruned)
   candidate set.  One vectorized argmin per task.
2. **Allocation step.** Holding plans fixed, compute and bandwidth shares are
   re-solved in closed form (sqrt rule); every ``reassign_every`` iterations
   the task→server matching is re-solved too, and the new matching is kept
   only if it improves the objective (hill-climbing safeguard).

Each accepted step weakly decreases the objective over a finite solution
space, so the iteration reaches a fixed point; ``tol`` stops it early when
relative improvement stalls.  ``restarts`` runs the whole descent from
perturbed initial assignments and returns the best fixed point found.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import (
    Allocation,
    allocate_shares,
    assign_servers,
    solution_latencies,
)
from repro.core.candidates import CandidateSet, build_candidates
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError, ConvergenceError
from repro.rng import SeedLike, as_generator


@dataclass(frozen=True)
class JointSolverConfig:
    """Tunables of the BCD joint optimizer."""

    max_iterations: int = 50
    tol: float = 1e-4  # relative objective improvement to keep iterating
    reassign_every: int = 5  # re-run Hungarian matching every k iterations
    local_search: bool = True  # per-task best-response reassignment sweeps
    refine_thresholds: bool = True  # per-exit threshold polish on the winner
    restarts: int = 1  # independent descents from perturbed starts
    include_queueing: bool = True
    threshold_grid: Optional[Tuple[float, ...]] = None
    max_cuts: Optional[int] = None
    strict_convergence: bool = False  # raise instead of warn on budget hit

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if self.tol < 0:
            raise ConfigError("tol must be >= 0")
        if self.reassign_every < 1:
            raise ConfigError("reassign_every must be >= 1")
        if self.restarts < 1:
            raise ConfigError("restarts must be >= 1")


@dataclass
class JointResult:
    """Solver output: the plan plus convergence diagnostics."""

    plan: JointPlan
    iterations: int
    converged: bool
    history: List[float] = field(default_factory=list)  # objective per iteration
    candidate_counts: Dict[str, int] = field(default_factory=dict)


class JointOptimizer:
    """Joint model-surgery + resource-allocation solver for one cluster."""

    def __init__(
        self,
        cluster: EdgeCluster,
        latency_model: Optional[LatencyModel] = None,
        objective: Objective = Objective.AVG_LATENCY,
        config: Optional[JointSolverConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.latency_model = latency_model or LatencyModel()
        self.objective = objective
        self.config = config or JointSolverConfig()

    # -- public API -------------------------------------------------------------

    def solve(
        self,
        tasks: Sequence[TaskSpec],
        candidates: Optional[Sequence[CandidateSet]] = None,
        seed: SeedLike = None,
    ) -> JointResult:
        """Solve the joint problem for ``tasks``.

        Precomputed ``candidates`` (one set per task, same order) can be
        passed to amortize enumeration across repeated solves — e.g. the
        dynamic-bandwidth experiment re-solves every trace change-point.
        """
        if not tasks:
            raise ConfigError("no tasks to optimize")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate task names: {names}")
        for t in tasks:
            self.cluster.by_name(t.device_name)  # validates membership

        if candidates is None:
            candsets = [
                build_candidates(
                    t,
                    threshold_grid=self.config.threshold_grid,
                    max_cuts=self.config.max_cuts,
                )
                for t in tasks
            ]
        else:
            if len(candidates) != len(tasks):
                raise ConfigError("candidates/tasks length mismatch")
            candsets = list(candidates)

        rng = as_generator(seed)
        best: Optional[Tuple[float, List[int], Allocation, List[float], int, bool]] = None
        for r in range(self.config.restarts):
            out = self._descend(tasks, candsets, rng, perturb=(r > 0))
            if best is None or out[0] < best[0]:
                best = out
        assert best is not None
        obj, plan_idx, alloc, history, iters, converged = best
        if not converged and self.config.strict_convergence:
            raise ConvergenceError(
                f"joint optimizer did not converge in {self.config.max_iterations} iterations"
            )
        # counts reflect the enumerated search space (before any refinement
        # appends the polished plan as an extra candidate)
        counts = {t.name: len(c) for t, c in zip(tasks, candsets)}
        if self.config.refine_thresholds:
            candsets, plan_idx, alloc, obj = self._refine(
                tasks, list(candsets), list(plan_idx), alloc, obj
            )
        jp = self._package(tasks, candsets, plan_idx, alloc, obj)
        return JointResult(
            plan=jp,
            iterations=iters,
            converged=converged,
            history=history,
            candidate_counts=counts,
        )

    # -- internals -----------------------------------------------------------

    def _descend(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        rng: np.random.Generator,
        perturb: bool,
    ) -> Tuple[float, List[int], Allocation, List[float], int, bool]:
        cfg = self.config
        n = len(tasks)
        assignment = assign_servers(tasks, candsets, self.cluster, self.latency_model)
        if perturb:
            # randomize a third of the assignments across servers/local
            m = self.cluster.num_servers
            for i in rng.choice(n, size=max(1, n // 3), replace=False):
                choice = int(rng.integers(m + 1))
                assignment[i] = None if choice == m else choice

        plan_idx = [0] * n
        # bootstrap plans under optimistic full shares
        alloc = Allocation(list(assignment), np.ones(n), np.ones(n))
        plan_idx = self._surgery_step(tasks, candsets, alloc)
        alloc = allocate_shares(
            tasks, candsets, plan_idx, assignment, self.cluster, self.latency_model, self.objective
        )
        obj = self._objective(tasks, candsets, plan_idx, alloc)

        history = [obj]
        converged = False
        iters = 0
        for it in range(1, cfg.max_iterations + 1):
            iters = it
            # surgery step
            new_idx = self._surgery_step(tasks, candsets, alloc)
            new_alloc = allocate_shares(
                tasks, candsets, new_idx, alloc.assignment, self.cluster, self.latency_model, self.objective
            )
            new_obj = self._objective(tasks, candsets, new_idx, new_alloc)
            if new_obj <= obj:
                plan_idx, alloc, obj = new_idx, new_alloc, new_obj

            # periodic re-assignment (accepted only on improvement)
            if it % cfg.reassign_every == 0:
                cand_assignment = assign_servers(
                    tasks, candsets, self.cluster, self.latency_model
                )
                cand_alloc = allocate_shares(
                    tasks, candsets, plan_idx, cand_assignment, self.cluster, self.latency_model, self.objective
                )
                cand_obj = self._objective(tasks, candsets, plan_idx, cand_alloc)
                if cand_obj < obj:
                    alloc, obj = cand_alloc, cand_obj
                if cfg.local_search:
                    plan_idx, alloc, obj = self._local_search(
                        tasks, candsets, plan_idx, alloc, obj
                    )

            history.append(obj)
            prev = history[-2]
            stalled = prev == obj or (
                math.isfinite(prev)
                and math.isfinite(obj)
                and (prev - obj) <= cfg.tol * max(abs(prev), 1e-12)
            )
            if stalled:
                # before declaring convergence, give local search one shot at
                # escaping the fixed point (unless it just ran this iteration)
                if cfg.local_search and it % cfg.reassign_every != 0:
                    plan_idx, alloc, new_obj = self._local_search(
                        tasks, candsets, plan_idx, alloc, obj
                    )
                    if new_obj < obj - cfg.tol * max(abs(obj), 1e-12):
                        obj = new_obj
                        history[-1] = obj
                        continue
                    obj = new_obj
                    history[-1] = obj
                converged = True
                break
        return obj, plan_idx, alloc, history, iters, converged

    def _refine(
        self,
        tasks: Sequence[TaskSpec],
        candsets: List[CandidateSet],
        plan_idx: List[int],
        alloc: Allocation,
        obj: float,
    ) -> Tuple[List[CandidateSet], List[int], Allocation, float]:
        """Per-exit threshold polish of the winning solution.

        Each task's chosen plan is refined by coordinate descent over a fine
        per-exit threshold grid (see :func:`repro.core.surgery.refine_thresholds`)
        under its final shares; shares are then re-solved once and the whole
        refined solution is accepted only if the global objective improves.
        """
        from repro.core.surgery import refine_thresholds

        new_candsets = list(candsets)
        new_idx = list(plan_idx)
        touched = False
        for i, task in enumerate(tasks):
            cs = candsets[i]
            feats = cs.features[plan_idx[i]]
            if len(feats.plan.kept_exits) <= 1:
                continue  # no early exits to tune
            device = self.cluster.by_name(task.device_name)
            s = alloc.assignment[i]
            server = self.cluster.servers[s] if s is not None else None
            link = (
                self.cluster.link(task.device_name, server.name)
                if server is not None
                else None
            )
            refined_plan, refined_feats = refine_thresholds(
                task.model,
                feats.plan,
                device,
                self.latency_model,
                task.accuracy_floor,
                server=server,
                link=link,
                compute_share=float(alloc.compute_shares[i]),
                bandwidth_share=float(alloc.bandwidth_shares[i]),
            )
            if refined_plan != feats.plan:
                new_candsets[i] = CandidateSet(cs.task, list(cs.features) + [refined_feats])
                new_idx[i] = len(cs.features)
                touched = True
        if not touched:
            return candsets, plan_idx, alloc, obj
        new_alloc = allocate_shares(
            tasks, new_candsets, new_idx, alloc.assignment,
            self.cluster, self.latency_model, self.objective,
        )
        new_obj = self._objective(tasks, new_candsets, new_idx, new_alloc)
        if new_obj < obj:
            return new_candsets, new_idx, new_alloc, new_obj
        return candsets, plan_idx, alloc, obj

    def _local_search(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        plan_idx: List[int],
        alloc: Allocation,
        obj: float,
    ) -> Tuple[List[int], Allocation, float]:
        """One greedy sweep of single-task (server, plan) moves.

        For each task, try every alternative placement (each server and
        local) with the plan re-picked for that placement; accept the first
        configuration that improves the *global* objective (shares re-solved
        in closed form for each trial).  Escapes assignment local optima the
        Hungarian step cannot see because it prices all tasks at once.
        """
        m = self.cluster.num_servers
        assignment = list(alloc.assignment)
        for i, task in enumerate(tasks):
            device = self.cluster.by_name(task.device_name)
            current = assignment[i]
            best = (obj, assignment[i], plan_idx[i], alloc)
            for option in [None] + list(range(m)):
                if option == current:
                    continue
                trial_assign = list(assignment)
                trial_assign[i] = option
                trial_idx = list(plan_idx)
                rate = task.arrival_rate if self.config.include_queueing else None
                if option is None:
                    lat = candsets[i].latencies(
                        device, self.latency_model, arrival_rate=rate
                    )
                else:
                    server = self.cluster.servers[option]
                    link = self.cluster.link(task.device_name, server.name)
                    prov = allocate_shares(
                        tasks, candsets, trial_idx, trial_assign,
                        self.cluster, self.latency_model, self.objective,
                    )
                    lat = candsets[i].latencies(
                        device,
                        self.latency_model,
                        server=server,
                        link=link,
                        compute_share=float(prov.compute_shares[i]),
                        bandwidth_share=float(prov.bandwidth_shares[i]),
                        arrival_rate=rate,
                    )
                j = int(np.argmin(lat))
                if not np.isfinite(lat[j]):
                    continue
                trial_idx[i] = j
                trial_alloc = allocate_shares(
                    tasks, candsets, trial_idx, trial_assign,
                    self.cluster, self.latency_model, self.objective,
                )
                trial_obj = self._objective(tasks, candsets, trial_idx, trial_alloc)
                if trial_obj < best[0]:
                    best = (trial_obj, option, j, trial_alloc)
            if best[0] < obj:
                obj, assignment[i], plan_idx[i], alloc = (
                    best[0],
                    best[1],
                    best[2],
                    best[3],
                )
        return plan_idx, alloc, obj

    def _surgery_step(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        alloc: Allocation,
    ) -> List[int]:
        """Per task, pick the latency-minimal candidate under current shares."""
        rate = lambda t: (t.arrival_rate if self.config.include_queueing else None)
        out: List[int] = []
        for i, task in enumerate(tasks):
            device = self.cluster.by_name(task.device_name)
            s = alloc.assignment[i]
            if s is None:
                lat = candsets[i].latencies(
                    device, self.latency_model, arrival_rate=rate(task)
                )
            else:
                server = self.cluster.servers[s]
                link = self.cluster.link(task.device_name, server.name)
                lat = candsets[i].latencies(
                    device,
                    self.latency_model,
                    server=server,
                    link=link,
                    compute_share=float(alloc.compute_shares[i]),
                    bandwidth_share=float(alloc.bandwidth_shares[i]),
                    arrival_rate=rate(task),
                )
            out.append(int(np.argmin(lat)))
        return out

    def _objective(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        plan_idx: Sequence[int],
        alloc: Allocation,
    ) -> float:
        # internal search objective: graded overload surrogate, so descent
        # keeps a gradient even when every reachable solution is overloaded
        # (the packaged plan reports honest inf for unstable tasks)
        lat = solution_latencies(
            tasks,
            candsets,
            plan_idx,
            alloc,
            self.cluster,
            self.latency_model,
            include_queueing=self.config.include_queueing,
            overload="penalty",
        )
        return self.objective.evaluate(lat, tasks)

    def _package(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        plan_idx: Sequence[int],
        alloc: Allocation,
        obj: float,
    ) -> JointPlan:
        # report honest latencies/objective (inf for unstable tasks) — the
        # graded surrogate in `obj` was only for steering the search
        lat = solution_latencies(
            tasks,
            candsets,
            plan_idx,
            alloc,
            self.cluster,
            self.latency_model,
            include_queueing=self.config.include_queueing,
        )
        obj = self.objective.evaluate(lat, tasks)
        return JointPlan(
            assignment={t.name: alloc.assignment[i] for i, t in enumerate(tasks)},
            features={t.name: candsets[i].features[plan_idx[i]] for i, t in enumerate(tasks)},
            compute_shares={t.name: float(alloc.compute_shares[i]) for i, t in enumerate(tasks)},
            bandwidth_shares={t.name: float(alloc.bandwidth_shares[i]) for i, t in enumerate(tasks)},
            latencies={t.name: float(lat[i]) for i, t in enumerate(tasks)},
            objective_value=float(obj),
        )
