"""The joint optimizer: block-coordinate descent over (surgery, allocation).

The two decision blocks are mutually dependent — the best surgery plan
depends on the shares a task gets, and the right shares depend on how much
work each plan ships to the edge — so the solver alternates:

1. **Surgery step.** Holding assignment + shares fixed, each task re-picks
   the latency-minimal plan from its (accuracy-feasible, dominance-pruned)
   candidate set.  One vectorized argmin per task.
2. **Allocation step.** Holding plans fixed, compute and bandwidth shares are
   re-solved in closed form (sqrt rule); every ``reassign_every`` iterations
   the task→server matching is re-solved too, and the new matching is kept
   only if it improves the objective (hill-climbing safeguard).

Each accepted step weakly decreases the objective over a finite solution
space, so the iteration reaches a fixed point; ``tol`` stops it early when
relative improvement stalls.  ``restarts`` runs the whole descent from
perturbed initial assignments — each from its own deterministically spawned
random stream, optionally in parallel (``restart_workers``) — and returns
the best fixed point found.

**Hot path.**  The share problem decomposes per server / per access link, so
trial moves in the local search re-solve only the (at most two) groups a task
moves between (:class:`~repro.core.allocation.IncrementalAllocator`), and
trial objectives re-evaluate only the tasks in those groups.  Candidate sets
come from a process-wide memoized pipeline (see
:func:`repro.core.candidates.build_candidates`).  Both optimizations are
bit-exact: a solve produces the same plan, shares, and objective as the
non-incremental code path.  :class:`~repro.profiling.counters.PerfCounters`
threaded through :class:`JointResult` counts the work actually done.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import (
    Allocation,
    IncrementalAllocator,
    allocate_shares,
    assign_servers,
    solution_latencies,
    solution_latency_task,
)
from repro.core.candidates import (
    CandidateSet,
    build_candidates,
    candidate_cache_stats,
)
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.core.risk import RiskConfig
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError, ConvergenceError
from repro.profiling.counters import PerfCounters
from repro.rng import SeedLike, as_generator, spawn
from repro.telemetry.trace import Span, Tracer, get_tracer


def package_plan(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: Sequence[int],
    alloc: "Allocation",
    cluster: EdgeCluster,
    latency_model: LatencyModel,
    objective: Objective,
    include_queueing: bool = True,
    counters: Optional[PerfCounters] = None,
    risk: Optional[RiskConfig] = None,
) -> JointPlan:
    """Package a solver state into a :class:`~repro.core.plan.JointPlan`.

    Reports *honest* latencies and objective — ``inf`` for queue-unstable
    tasks — regardless of the graded overload surrogate the search used
    internally.  Shared by the centralized solver and the sharded
    coordinator so both package identically.  An active ``risk`` config makes
    the packaged latencies the buffered ``μ + κ(ε)·σ`` values, so a plan
    whose latencies meet the deadlines is *certified* at tail level ``ε``.
    """
    lat = solution_latencies(
        tasks,
        candsets,
        plan_idx,
        alloc,
        cluster,
        latency_model,
        include_queueing=include_queueing,
        risk=risk,
    )
    if counters is not None:
        counters.latency_evals += len(tasks)
    obj = objective.evaluate(lat, tasks)
    return JointPlan(
        assignment={t.name: alloc.assignment[i] for i, t in enumerate(tasks)},
        features={t.name: candsets[i].features[plan_idx[i]] for i, t in enumerate(tasks)},
        compute_shares={t.name: float(alloc.compute_shares[i]) for i, t in enumerate(tasks)},
        bandwidth_shares={t.name: float(alloc.bandwidth_shares[i]) for i, t in enumerate(tasks)},
        latencies={t.name: float(lat[i]) for i, t in enumerate(tasks)},
        objective_value=float(obj),
    )


@dataclass(frozen=True)
class JointSolverConfig:
    """Tunables of the BCD joint optimizer.

    ``shards > 1`` switches :meth:`JointOptimizer.solve` to the sharded
    control plane (:mod:`repro.core.coordinator`): the cluster's servers are
    partitioned per ``shard_by``, each shard is solved independently, and up
    to ``migration_rounds`` rounds of cross-shard migration re-home boundary
    tasks whose relative latency gain beats ``migration_hysteresis``.

    ``affinity`` picks the coordinator's index build: ``"sparse"`` (default)
    answers the same homing/migration screens from top-k shortlists at
    sub-O(tasks × servers) cost; ``"dense"`` keeps the original full sweep
    as a bit-identical fallback.  ``nested_shards > 1`` makes each shard's
    solve re-shard its own server view (two-level regions → racks), running
    the same migration machinery one level down.

    ``restart_workers`` is the width of the solver's *one* thread pool.  With
    ``shards == 1`` it fans out restarts; with ``shards > 1`` the same pool
    fans out shard solves and each shard runs its restarts serially — shard
    fan-out reuses the restart pool, pools are never nested (there is no
    separate ``shard_workers`` knob).
    """

    max_iterations: int = 50
    tol: float = 1e-4  # relative objective improvement to keep iterating
    reassign_every: int = 5  # re-run Hungarian matching every k iterations
    local_search: bool = True  # per-task best-response reassignment sweeps
    refine_thresholds: bool = True  # per-exit threshold polish on the winner
    restarts: int = 1  # independent descents from perturbed starts
    restart_workers: int = 1  # threads in the solver pool (1 = serial)
    include_queueing: bool = True
    threshold_grid: Optional[Tuple[float, ...]] = None
    max_cuts: Optional[int] = None
    candidate_cache: bool = True  # reuse the memoized candidate pipeline
    strict_convergence: bool = False  # raise instead of warn on budget hit
    shards: int = 1  # server partitions solved independently (1 = centralized)
    shard_by: str = "contiguous"  # partition strategy (see core.sharding)
    migration_rounds: int = 3  # cross-shard re-homing rounds after shard solves
    migration_hysteresis: float = 1e-3  # relative gain a migration must beat
    affinity: str = "sparse"  # index build mode ("sparse" | "dense" fallback)
    nested_shards: int = 0  # >1: each shard re-shards its view (regions->racks)
    # chance-constrained mode: buffer every latency the solver sees to
    # μ + κ(ε)·σ (see repro.core.risk).  None (or buffer="none") keeps the
    # deterministic solver bit-identical.
    risk: Optional[RiskConfig] = None

    def __post_init__(self) -> None:
        from repro.core.sharding import AFFINITY_MODES, SHARD_STRATEGIES

        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if self.tol < 0:
            raise ConfigError("tol must be >= 0")
        if self.reassign_every < 1:
            raise ConfigError("reassign_every must be >= 1")
        if self.restarts < 1:
            raise ConfigError("restarts must be >= 1")
        if self.restart_workers < 1:
            raise ConfigError("restart_workers must be >= 1")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.shard_by not in SHARD_STRATEGIES:
            raise ConfigError(
                f"unknown shard_by {self.shard_by!r}; available {SHARD_STRATEGIES}"
            )
        if self.migration_rounds < 0:
            raise ConfigError("migration_rounds must be >= 0")
        if self.migration_hysteresis < 0:
            raise ConfigError("migration_hysteresis must be >= 0")
        if self.affinity not in AFFINITY_MODES:
            raise ConfigError(
                f"unknown affinity {self.affinity!r}; available {AFFINITY_MODES}"
            )
        if self.nested_shards < 0:
            raise ConfigError("nested_shards must be >= 0")


@dataclass
class JointResult:
    """Solver output: the plan plus convergence diagnostics."""

    plan: JointPlan
    iterations: int
    converged: bool
    history: List[float] = field(default_factory=list)  # objective per iteration
    candidate_counts: Dict[str, int] = field(default_factory=dict)
    perf: PerfCounters = field(default_factory=PerfCounters)


class _SolveContext:
    """Per-solve hoisted lookups shared (read-only) by all restarts.

    ``cluster.by_name`` / ``cluster.link`` resolve the same handful of objects
    for every task on every iteration of every trial move; resolving them once
    per solve removes dictionary traffic from the innermost loops.
    """

    def __init__(
        self,
        cluster: EdgeCluster,
        latency_model: LatencyModel,
        objective: Objective,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
    ) -> None:
        self.devices = [cluster.by_name(t.device_name) for t in tasks]
        self.links = [
            [cluster.link(t.device_name, s.name) for s in cluster.servers]
            for t in tasks
        ]
        self.allocator = IncrementalAllocator(
            tasks, candsets, cluster, latency_model, objective
        )


class JointOptimizer:
    """Joint model-surgery + resource-allocation solver for one cluster."""

    def __init__(
        self,
        cluster: EdgeCluster,
        latency_model: Optional[LatencyModel] = None,
        objective: Objective = Objective.AVG_LATENCY,
        config: Optional[JointSolverConfig] = None,
        stream_base: int = 0,
    ) -> None:
        self.cluster = cluster
        self.latency_model = latency_model or LatencyModel()
        self.objective = objective
        self.config = config or JointSolverConfig()
        # telemetry stream offset: restart r records on stream
        # ``stream_base + r + 1``.  The default 0 is the centralized layout;
        # the sharded coordinator gives shard s the disjoint block
        # ``s * (restarts + 1)`` so parallel shard solves never collide.
        self.stream_base = stream_base

    # -- public API -------------------------------------------------------------

    def solve(
        self,
        tasks: Sequence[TaskSpec],
        candidates: Optional[Sequence[CandidateSet]] = None,
        seed: SeedLike = None,
    ) -> JointResult:
        """Solve the joint problem for ``tasks``.

        Precomputed ``candidates`` (one set per task, same order) can be
        passed to amortize enumeration across repeated solves — e.g. the
        dynamic-bandwidth experiment re-solves every trace change-point.

        When the process tracer is enabled (``repro trace``), the solve
        records a span tree: ``solve`` → candidates / context / per-restart
        descend / refine / package (see DESIGN.md §9).  Disabled tracing adds
        no spans and no allocations.

        When ``config.shards > 1`` the solve is delegated to the sharded
        control plane (:func:`repro.core.coordinator.solve_sharded`), which
        returns a :class:`~repro.core.coordinator.ShardedResult` (a
        :class:`JointResult` plus shard/migration diagnostics).
        """
        if self.config.shards > 1:
            from repro.core.coordinator import solve_sharded

            return solve_sharded(
                tasks,
                self.cluster,
                latency_model=self.latency_model,
                objective=self.objective,
                config=self.config,
                candidates=candidates,
                seed=seed,
            )
        tracer = get_tracer()
        with tracer.span(
            "solve",
            {"tasks": len(tasks), "servers": self.cluster.num_servers}
            if tracer.enabled
            else None,
        ) as root:
            return self._solve(tasks, candidates, seed, tracer, root)

    def _solve(
        self,
        tasks: Sequence[TaskSpec],
        candidates: Optional[Sequence[CandidateSet]],
        seed: SeedLike,
        tracer: Tracer,
        root: Span,
    ) -> JointResult:
        t_start = time.perf_counter()
        if not tasks:
            raise ConfigError("no tasks to optimize")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate task names: {names}")
        for t in tasks:
            self.cluster.by_name(t.device_name)  # validates membership

        perf = PerfCounters()
        if candidates is None:
            with tracer.span("solve.candidates"):
                stats_before = candidate_cache_stats()
                candsets = [
                    build_candidates(
                        t,
                        threshold_grid=self.config.threshold_grid,
                        max_cuts=self.config.max_cuts,
                        cache=self.config.candidate_cache,
                    )
                    for t in tasks
                ]
                stats_after = candidate_cache_stats()
                perf.candidate_cache_hits += stats_after.hits - stats_before.hits
                perf.candidate_cache_misses += stats_after.misses - stats_before.misses
        else:
            if len(candidates) != len(tasks):
                raise ConfigError("candidates/tasks length mismatch")
            candsets = list(candidates)

        with tracer.span("solve.context"):
            ctx = _SolveContext(
                self.cluster, self.latency_model, self.objective, tasks, candsets
            )

        # one deterministic stream per restart: restart 0 reproduces the
        # single-restart descent exactly, and the spawned streams make the
        # result independent of whether restarts run serially or in parallel
        rng = as_generator(seed)
        restarts = self.config.restarts
        streams = [rng] if restarts == 1 else spawn(rng, restarts)
        restart_counters = [PerfCounters() for _ in range(restarts)]

        def _run(r: int) -> Tuple[float, List[int], Allocation, List[float], int, bool]:
            # telemetry stream base+r+1 == seed stream r; stream 0 is the
            # orchestrating thread, so restart spans merge deterministically
            # whether restarts run serially or on pool threads
            with tracer.stream(self.stream_base + r + 1, parent=root.span_id):
                with tracer.span("solve.descend", {"restart": r} if tracer.enabled else None):
                    return self._descend(
                        tasks, candsets, streams[r], perturb=(r > 0),
                        ctx=ctx, counters=restart_counters[r], tracer=tracer,
                    )

        workers = min(self.config.restart_workers, restarts)
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                outs = list(pool.map(_run, range(restarts)))
        else:
            outs = [_run(r) for r in range(restarts)]

        best: Optional[Tuple[float, List[int], Allocation, List[float], int, bool]] = None
        for out in outs:
            if best is None or out[0] < best[0]:
                best = out
        assert best is not None
        # merge per-restart counters in seed-stream order, so parallel and
        # serial runs report byte-identical work counts
        perf.merge(PerfCounters.merged(dict(enumerate(restart_counters))))
        perf.restarts += restarts

        obj, plan_idx, alloc, history, iters, converged = best
        if not converged and self.config.strict_convergence:
            raise ConvergenceError(
                f"joint optimizer did not converge in {self.config.max_iterations} iterations"
            )
        # counts reflect the enumerated search space (before any refinement
        # appends the polished plan as an extra candidate)
        counts = {t.name: len(c) for t, c in zip(tasks, candsets)}
        if self.config.refine_thresholds:
            with tracer.span("solve.refine"):
                candsets, plan_idx, alloc, obj = self._refine(
                    tasks, list(candsets), list(plan_idx), alloc, obj, ctx, perf
                )
        with tracer.span("solve.package"):
            jp = self._package(tasks, candsets, plan_idx, alloc, obj, perf)
        perf.solve_s = time.perf_counter() - t_start
        return JointResult(
            plan=jp,
            iterations=iters,
            converged=converged,
            history=history,
            candidate_counts=counts,
            perf=perf,
        )

    # -- internals -----------------------------------------------------------

    def _descend(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        rng: np.random.Generator,
        perturb: bool,
        ctx: _SolveContext,
        counters: PerfCounters,
        tracer: Optional[Tracer] = None,
    ) -> Tuple[float, List[int], Allocation, List[float], int, bool]:
        cfg = self.config
        if tracer is None:
            tracer = get_tracer()
        n = len(tasks)
        inc = ctx.allocator
        with tracer.span("solve.descend.init"):
            assignment = assign_servers(
                tasks, candsets, self.cluster, self.latency_model, risk=cfg.risk
            )
            if perturb:
                # randomize a third of the assignments across servers/local
                m = self.cluster.num_servers
                for i in rng.choice(n, size=max(1, n // 3), replace=False):
                    choice = int(rng.integers(m + 1))
                    assignment[i] = None if choice == m else choice

            plan_idx = [0] * n
            # bootstrap plans under optimistic full shares
            alloc = Allocation(list(assignment), np.ones(n), np.ones(n))
            plan_idx = self._surgery_step(tasks, candsets, alloc, ctx, counters)
            alloc = inc.solve(plan_idx, assignment, counters)
            obj = self._objective(tasks, candsets, plan_idx, alloc, counters)

        history = [obj]
        converged = False
        iters = 0
        for it in range(1, cfg.max_iterations + 1):
            iters = it
            # surgery step; `alloc` is always solved for the current plan_idx,
            # so the share re-solve only needs the groups of changed tasks
            new_idx = self._surgery_step(tasks, candsets, alloc, ctx, counters)
            changed = [i for i in range(n) if new_idx[i] != plan_idx[i]]
            new_alloc = inc.update(alloc, new_idx, alloc.assignment, changed, counters)
            new_obj = self._objective(tasks, candsets, new_idx, new_alloc, counters)
            if new_obj <= obj:
                plan_idx, alloc, obj = new_idx, new_alloc, new_obj

            # periodic re-assignment (accepted only on improvement)
            if it % cfg.reassign_every == 0:
                with tracer.span("solve.descend.reassign", {"iteration": it} if tracer.enabled else None):
                    cand_assignment = assign_servers(
                        tasks, candsets, self.cluster, self.latency_model,
                        risk=cfg.risk,
                    )
                    cand_alloc = inc.solve(plan_idx, cand_assignment, counters)
                    cand_obj = self._objective(tasks, candsets, plan_idx, cand_alloc, counters)
                    if cand_obj < obj:
                        alloc, obj = cand_alloc, cand_obj
                if cfg.local_search:
                    with tracer.span("solve.descend.local_search", {"iteration": it} if tracer.enabled else None):
                        plan_idx, alloc, obj = self._local_search(
                            tasks, candsets, plan_idx, alloc, obj, ctx, counters
                        )

            history.append(obj)
            prev = history[-2]
            stalled = prev == obj or (
                math.isfinite(prev)
                and math.isfinite(obj)
                and (prev - obj) <= cfg.tol * max(abs(prev), 1e-12)
            )
            if stalled:
                # before declaring convergence, give local search one shot at
                # escaping the fixed point (unless it just ran this iteration)
                if cfg.local_search and it % cfg.reassign_every != 0:
                    with tracer.span("solve.descend.local_search", {"iteration": it} if tracer.enabled else None):
                        plan_idx, alloc, new_obj = self._local_search(
                            tasks, candsets, plan_idx, alloc, obj, ctx, counters
                        )
                    if new_obj < obj - cfg.tol * max(abs(obj), 1e-12):
                        obj = new_obj
                        history[-1] = obj
                        continue
                    obj = new_obj
                    history[-1] = obj
                converged = True
                break
        return obj, plan_idx, alloc, history, iters, converged

    def _refine(
        self,
        tasks: Sequence[TaskSpec],
        candsets: List[CandidateSet],
        plan_idx: List[int],
        alloc: Allocation,
        obj: float,
        ctx: _SolveContext,
        counters: PerfCounters,
    ) -> Tuple[List[CandidateSet], List[int], Allocation, float]:
        """Per-exit threshold polish of the winning solution.

        Each task's chosen plan is refined by coordinate descent over a fine
        per-exit threshold grid (see :func:`repro.core.surgery.refine_thresholds`)
        under its final shares; shares are then re-solved once and the whole
        refined solution is accepted only if the global objective improves.
        """
        from repro.core.surgery import refine_thresholds

        new_candsets = list(candsets)
        new_idx = list(plan_idx)
        touched = False
        for i, task in enumerate(tasks):
            cs = candsets[i]
            feats = cs.features[plan_idx[i]]
            if len(feats.plan.kept_exits) <= 1:
                continue  # no early exits to tune
            device = ctx.devices[i]
            s = alloc.assignment[i]
            server = self.cluster.servers[s] if s is not None else None
            link = ctx.links[i][s] if s is not None else None
            refined_plan, refined_feats = refine_thresholds(
                task.model,
                feats.plan,
                device,
                self.latency_model,
                task.accuracy_floor,
                server=server,
                link=link,
                compute_share=float(alloc.compute_shares[i]),
                bandwidth_share=float(alloc.bandwidth_shares[i]),
            )
            if refined_plan != feats.plan:
                new_candsets[i] = CandidateSet(cs.task, list(cs.features) + [refined_feats])
                new_idx[i] = len(cs.features)
                touched = True
        if not touched:
            return candsets, plan_idx, alloc, obj
        # refined candidate sets differ from the ones the incremental
        # allocator was built over, so this one-off re-solve stays full
        new_alloc = allocate_shares(
            tasks, new_candsets, new_idx, alloc.assignment,
            self.cluster, self.latency_model, self.objective,
        )
        counters.allocate_calls += 1
        new_obj = self._objective(tasks, new_candsets, new_idx, new_alloc, counters)
        if new_obj < obj:
            return new_candsets, new_idx, new_alloc, new_obj
        return candsets, plan_idx, alloc, obj

    def _local_search(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        plan_idx: List[int],
        alloc: Allocation,
        obj: float,
        ctx: _SolveContext,
        counters: PerfCounters,
    ) -> Tuple[List[int], Allocation, float]:
        """One greedy sweep of single-task (server, plan) moves.

        For each task, try every alternative placement (each server and
        local) with the plan re-picked for that placement; accept the first
        configuration that improves the *global* objective.  Escapes
        assignment local optima the Hungarian step cannot see because it
        prices all tasks at once.

        A trial move touches at most the server/link groups the task leaves
        and joins, so shares are re-solved incrementally and the trial
        objective re-evaluates only the tasks in those groups — everything
        else is carried over from the incumbent, bit-exact.
        """
        cfg = self.config
        m = self.cluster.num_servers
        inc = ctx.allocator
        assignment = list(alloc.assignment)
        # incumbent per-task latencies, kept in sync with accepted moves
        base_lat = solution_latencies(
            tasks, candsets, plan_idx, alloc, self.cluster, self.latency_model,
            include_queueing=cfg.include_queueing, overload="penalty",
            risk=cfg.risk,
        )
        counters.latency_evals += len(tasks)
        for i, task in enumerate(tasks):
            device = ctx.devices[i]
            current = assignment[i]
            best = (obj, assignment[i], plan_idx[i], alloc, base_lat)
            rate = task.arrival_rate if cfg.include_queueing else None
            for option in [None] + list(range(m)):
                if option == current:
                    continue
                trial_assign = list(assignment)
                trial_assign[i] = option
                trial_idx = list(plan_idx)
                # shares with task i moved (plan unchanged yet): only the two
                # affected groups are re-solved
                prov = inc.update(alloc, plan_idx, trial_assign, (i,), counters)
                if option is None:
                    lat = candsets[i].latencies(
                        device, self.latency_model, arrival_rate=rate,
                        risk=cfg.risk,
                    )
                else:
                    server = self.cluster.servers[option]
                    link = ctx.links[i][option]
                    lat = candsets[i].latencies(
                        device,
                        self.latency_model,
                        server=server,
                        link=link,
                        compute_share=float(prov.compute_shares[i]),
                        bandwidth_share=float(prov.bandwidth_shares[i]),
                        arrival_rate=rate,
                        risk=cfg.risk,
                    )
                counters.candidate_evals += 1
                j = int(np.argmin(lat))
                if not np.isfinite(lat[j]):
                    continue
                trial_idx[i] = j
                if j == plan_idx[i]:
                    # the provisional solve already is the trial allocation
                    trial_alloc = prov
                else:
                    trial_alloc = inc.update(prov, trial_idx, trial_assign, (i,), counters)
                # only tasks sharing a touched group can change latency
                affected = {
                    t for t, a in enumerate(assignment)
                    if a == current or a == option
                }
                affected.add(i)
                trial_lat = base_lat.copy()
                for t_i in affected:
                    trial_lat[t_i] = solution_latency_task(
                        tasks[t_i],
                        candsets[t_i],
                        trial_idx[t_i],
                        trial_alloc.assignment[t_i],
                        float(trial_alloc.compute_shares[t_i]),
                        float(trial_alloc.bandwidth_shares[t_i]),
                        self.cluster,
                        self.latency_model,
                        include_queueing=cfg.include_queueing,
                        overload="penalty",
                        device=ctx.devices[t_i],
                        risk=cfg.risk,
                    )
                counters.latency_evals += len(affected)
                trial_obj = self.objective.evaluate(trial_lat, tasks)
                if trial_obj < best[0]:
                    best = (trial_obj, option, j, trial_alloc, trial_lat)
            if best[0] < obj:
                obj, assignment[i], plan_idx[i], alloc, base_lat = best
        return plan_idx, alloc, obj

    def _surgery_step(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        alloc: Allocation,
        ctx: _SolveContext,
        counters: PerfCounters,
    ) -> List[int]:
        """Per task, pick the latency-minimal candidate under current shares."""
        rate = lambda t: (t.arrival_rate if self.config.include_queueing else None)
        out: List[int] = []
        for i, task in enumerate(tasks):
            device = ctx.devices[i]
            s = alloc.assignment[i]
            if s is None:
                lat = candsets[i].latencies(
                    device, self.latency_model, arrival_rate=rate(task),
                    risk=self.config.risk,
                )
            else:
                server = self.cluster.servers[s]
                link = ctx.links[i][s]
                lat = candsets[i].latencies(
                    device,
                    self.latency_model,
                    server=server,
                    link=link,
                    compute_share=float(alloc.compute_shares[i]),
                    bandwidth_share=float(alloc.bandwidth_shares[i]),
                    arrival_rate=rate(task),
                    risk=self.config.risk,
                )
            counters.candidate_evals += 1
            out.append(int(np.argmin(lat)))
        return out

    def _objective(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        plan_idx: Sequence[int],
        alloc: Allocation,
        counters: Optional[PerfCounters] = None,
    ) -> float:
        # internal search objective: graded overload surrogate, so descent
        # keeps a gradient even when every reachable solution is overloaded
        # (the packaged plan reports honest inf for unstable tasks)
        lat = solution_latencies(
            tasks,
            candsets,
            plan_idx,
            alloc,
            self.cluster,
            self.latency_model,
            include_queueing=self.config.include_queueing,
            overload="penalty",
            risk=self.config.risk,
        )
        if counters is not None:
            counters.latency_evals += len(tasks)
        return self.objective.evaluate(lat, tasks)

    def _package(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        plan_idx: Sequence[int],
        alloc: Allocation,
        obj: float,
        counters: Optional[PerfCounters] = None,
    ) -> JointPlan:
        # honest latencies/objective (inf for unstable tasks) — the graded
        # surrogate in `obj` was only for steering the search
        return package_plan(
            tasks,
            candsets,
            plan_idx,
            alloc,
            self.cluster,
            self.latency_model,
            self.objective,
            include_queueing=self.config.include_queueing,
            counters=counters,
            risk=self.config.risk,
        )
