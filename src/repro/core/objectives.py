"""Optimization objectives over per-task expected latencies.

All objectives are *minimized*.  Deadline satisfaction is reported as a miss
fraction so that lower is uniformly better; analysis code converts back to
satisfaction ratios for tables.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

import numpy as np

from repro.core.plan import TaskSpec
from repro.errors import ConfigError


class Objective(str, Enum):
    """Supported joint-optimization objectives."""

    #: weight-and-rate-weighted mean expected latency
    AVG_LATENCY = "avg_latency"
    #: worst task latency (min-max fairness)
    MAX_LATENCY = "max_latency"
    #: fraction of tasks whose expected latency exceeds their deadline,
    #: tie-broken by normalized latency so gradients exist below 100%
    DEADLINE_MISS = "deadline_miss"

    def evaluate(self, latencies: np.ndarray, tasks: Sequence[TaskSpec]) -> float:
        """Scalar objective value; ``inf`` propagates from infeasible tasks."""
        lat = np.asarray(latencies, dtype=float)
        if len(tasks) == 0:
            raise ConfigError("cannot evaluate an objective over zero tasks")
        if lat.shape != (len(tasks),):
            raise ConfigError(
                f"latencies shape {lat.shape} != number of tasks {len(tasks)}"
            )
        if np.any(np.isinf(lat)):
            return float("inf")
        if self is Objective.AVG_LATENCY:
            w = np.array([t.weight for t in tasks])
            return float(np.dot(w, lat) / w.sum())
        if self is Objective.MAX_LATENCY:
            return float(lat.max())
        if self is Objective.DEADLINE_MISS:
            deadlines = np.array([t.deadline_s for t in tasks])
            norm = lat / deadlines
            miss = float(np.mean(norm > 1.0))
            # secondary term keeps the objective informative when all/none
            # miss; scaled << 1 so it never outweighs one missed deadline
            return miss + 1e-3 * float(np.mean(np.minimum(norm, 10.0)))
        raise ConfigError(f"unhandled objective {self}")  # pragma: no cover

    def task_weight(self, task: TaskSpec) -> float:
        """Per-task weight used by the closed-form share allocation.

        For deadline objectives, urgency (1/deadline) multiplies the task's
        own weight so tight-deadline tasks receive larger shares.
        """
        if self is Objective.DEADLINE_MISS:
            return task.weight / task.deadline_s
        return task.weight


def deadline_miss_fraction(latencies: np.ndarray, tasks: Sequence[TaskSpec]) -> float:
    """Plain miss fraction (no tie-break term), for reporting.

    An empty task list misses nothing: returns 0.0 (unlike
    :meth:`Objective.evaluate`, which refuses to score zero tasks).
    """
    lat = np.asarray(latencies, dtype=float)
    if len(tasks) == 0:
        return 0.0
    if lat.shape != (len(tasks),):
        raise ConfigError(
            f"latencies shape {lat.shape} != number of tasks {len(tasks)}"
        )
    deadlines = np.array([t.deadline_s for t in tasks])
    return float(np.mean(lat > deadlines))
