"""Chance-constrained deadline support: buffered latencies ``μ + κ(ε)·σ``.

The rest of :mod:`repro.core` scores plans against *expected* latency, so a
plan that "meets" its deadline in expectation can miss it a third of the
time under realistic service-time jitter.  This module adds the stochastic
half: a :class:`RiskConfig` describing the certification target
``P[latency ≤ deadline] ≥ 1 − ε`` and the per-request jitter model, the
buffer multiplier ``κ(ε)``, and the variance algebra the latency kernels
(:meth:`repro.core.candidates.CandidateSet.latencies`,
:func:`repro.core.allocation.solution_latency_task`) use to turn the
second-moment columns they already carry into a per-plan latency ``σ``.

**Buffer math.**  With ``T`` the per-request latency, ``μ = E[T]`` and
``σ̂ ≥ sqrt(Var T)`` any upper bound on its standard deviation, Cantelli's
(one-sided Chebyshev) inequality gives, for every distribution of ``T``,

    P[T > μ + κ·σ̂]  ≤  σ²/(σ² + κ²σ̂²)  ≤  1/(1 + κ²)   for σ ≤ σ̂,

so ``κ = sqrt((1−ε)/ε)`` certifies ``P[T ≤ μ + κσ̂] ≥ 1−ε`` — the buffer
rule `marcocaserta__surgery_schedule` uses for stochastic surgery
durations.  The bound is distribution-free and therefore loose (κ ≈ 4.36
at ε = 0.05 where a Gaussian needs 1.64); the ``"gaussian"`` buffer offers
the tighter ``κ = Φ⁻¹(1−ε)`` for users willing to assume near-normal
latency sums.  Crucially the Cantelli guarantee is *monotone in σ̂*: any
conservative (over-)estimate of σ preserves it, which is why the sum rule
below is safe.

**Variance model.**  Per-request latency is a sum of stage times (device
compute, uplink, server compute, downlink, RTT) plus queueing delays.  Two
variance sources are propagated:

1. *Exit mix* — which early exit a request takes decides how much work each
   stage sees; the enumerated second moments (``dev_flops_sq``,
   ``srv_flops_sq``, ``wire_bytes_sq``) give the exact per-stage variance
   of that mixture.
2. *Service jitter* — each stage's work is additionally scaled by an
   independent mean-one log-normal factor with log-σ ``service_noise``
   (relative variance ``e^{σ²} − 1``), mirroring the simulator's
   per-request draws and the profiler's ``noise`` machinery.

Stage stds combine by the triangle inequality ``σ(ΣX) ≤ Σσ(X)`` — an upper
bound whatever the cross-stage correlations, hence Cantelli-safe.
Queueing-delay variance has no closed form under the M/G/1 model; the
kernels use the M/M/1-exact surrogate ``E[W²] = 2·W̄·(m̄ + W̄)``
(:func:`wait_std`), and experiment E18 validates the end-to-end calibration
empirically: realized violation rates stay below the requested ε across
load and jitter levels, with the (large) conservatism gap reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.profiling.tables import ProfileTable

__all__ = ["RiskConfig", "kappa", "stage_std", "wait_std", "profile_service_noise"]

#: accepted buffer rules
BUFFERS = ("cantelli", "gaussian", "none")


def kappa(epsilon: float, buffer: str = "cantelli") -> float:
    """Buffer multiplier κ(ε) such that ``μ + κσ`` certifies ``1 − ε``.

    ``"cantelli"`` is distribution-free (``sqrt((1−ε)/ε)``); ``"gaussian"``
    assumes near-normal latency sums (``Φ⁻¹(1−ε)``, clamped at 0 for
    ε ≥ 0.5); ``"none"`` disables buffering (κ = 0).
    """
    if buffer == "none":
        return 0.0
    if not (0.0 < epsilon < 1.0):
        raise ConfigError(f"epsilon must lie in (0, 1), got {epsilon}")
    if buffer == "cantelli":
        return math.sqrt((1.0 - epsilon) / epsilon)
    if buffer == "gaussian":
        from scipy.special import ndtri

        return max(float(ndtri(1.0 - epsilon)), 0.0)
    raise ConfigError(f"buffer must be one of {BUFFERS}, got {buffer!r}")


@dataclass(frozen=True)
class RiskConfig:
    """Chance-constraint settings for the joint solver.

    ``epsilon`` is the allowed deadline-violation probability; ``buffer``
    picks the κ(ε) rule; ``service_noise`` is the per-stage multiplicative
    jitter's log-normal σ (the same parameter
    :class:`~repro.sim.runner.SimulationConfig` uses to realize it, and
    :func:`repro.profiling.profiler.profile_model` uses to measure it).
    With ``buffer="none"`` the solver's behavior is bit-identical to a
    risk-free config — the buffered code paths are never entered.
    """

    epsilon: float = 0.05
    buffer: str = "cantelli"
    service_noise: float = 0.0
    #: derived: the buffer multiplier κ(ε) (0.0 when ``buffer="none"``)
    kappa: float = field(init=False, repr=False)
    #: derived: relative service-time variance ``e^{σ²} − 1`` of the jitter
    rel_var: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.buffer not in BUFFERS:
            raise ConfigError(f"buffer must be one of {BUFFERS}, got {self.buffer!r}")
        if self.service_noise < 0:
            raise ConfigError(f"service_noise must be >= 0, got {self.service_noise}")
        if self.buffer != "none" and not (0.0 < self.epsilon < 1.0):
            raise ConfigError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        object.__setattr__(self, "kappa", kappa(self.epsilon, self.buffer))
        object.__setattr__(
            self, "rel_var", float(math.expm1(self.service_noise**2))
        )

    @property
    def active(self) -> bool:
        """True when latencies should be buffered (``buffer != "none"``)."""
        return self.buffer != "none"


ArrayLike = Union[float, np.ndarray]


def stage_std(
    work_mean: ArrayLike,
    work_sq: ArrayLike,
    overhead: ArrayLike,
    p_visit: ArrayLike,
    rel_var: float,
) -> ArrayLike:
    """Std of one stage's time ``X = W·(1+J) + overhead·B``.

    ``W`` is the (exit-mix-dependent) work time with mean ``work_mean`` and
    second moment ``work_sq``; ``J`` is the mean-zero jitter with relative
    variance ``rel_var`` (jitter scales work, not the fixed invocation
    overhead — matching the simulator); ``B`` is the Bernoulli(``p_visit``)
    visit indicator (1 for the device stage, ``p_offload`` for server/link
    stages; ``W > 0`` implies ``B = 1``, so ``E[W·B] = E[W]``).  Also covers
    the RTT term as ``stage_std(0, 0, rtt, p, 0)``.
    """
    m1 = work_mean + p_visit * overhead
    m2 = work_sq * (1.0 + rel_var) + 2.0 * overhead * work_mean + p_visit * overhead**2
    return np.sqrt(np.maximum(m2 - m1 * m1, 0.0))


def wait_std(
    wait_mean: ArrayLike, service_mean: ArrayLike, p_visit: ArrayLike = 1.0
) -> ArrayLike:
    """Surrogate std of a stage's queueing delay, visited w.p. ``p_visit``.

    For the M/M/1 queue the delay's second moment is exactly
    ``E[W²] = 2·W̄·(m̄ + W̄)`` (``W̄`` mean wait, ``m̄`` mean service), so
    ``σ(B·W) ≤ sqrt(p·E[W²]) = sqrt(2·p·W̄·(m̄ + W̄))`` — correct at both
    the low-ρ limit (rare but service-sized waits, std ≫ mean) and the
    heavy-traffic limit (std → mean).  Heavier-tailed service inflates the
    true value; Cantelli's slack absorbs the difference (validated by E18).
    Non-finite waits yield 0 — the overload penalty already dominates there.
    """
    w = np.where(np.isfinite(wait_mean), np.maximum(wait_mean, 0.0), 0.0)
    return np.sqrt(2.0 * p_visit * w * (np.maximum(service_mean, 0.0) + w))


def profile_service_noise(table: "ProfileTable") -> float:
    """Estimate ``RiskConfig.service_noise`` from a measured profile.

    Aggregates the per-layer variances into a model-level relative std
    ``s = sqrt(Σ var) / Σ mean`` (independent layers), then inverts the
    mean-one log-normal jitter model (``s² = e^{σ²} − 1``) to the log-σ the
    solver and simulator consume.  Returns 0.0 for noise-free profiles.
    """
    total = table.total_latency_s
    if total <= 0:
        return 0.0
    var = float(sum(row.latency_var_s2 for row in table.rows))
    if var <= 0:
        return 0.0
    rel = math.sqrt(var) / total
    return math.sqrt(math.log1p(rel * rel))
