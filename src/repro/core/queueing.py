"""Analytic queueing approximations used inside the optimizer.

Shared servers see a superposition of task request streams.  The optimizer
cannot afford a simulation per candidate solution, so congestion enters the
objective through classical single-queue formulas; experiment E14 validates
them against the discrete-event simulator.

All functions return *waiting* time (time in queue, excluding service) unless
named ``*_response``.  Inputs use rates in req/s and times in seconds.  An
offered load at or above capacity returns ``inf`` — the optimizer treats such
solutions as infeasible rather than raising, because they legitimately arise
mid-search.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def utilization(arrival_rate: float, service_time: float) -> float:
    """Offered load rho = lambda * E[S]."""
    if arrival_rate < 0 or service_time < 0:
        raise ConfigError("arrival rate and service time must be non-negative")
    return arrival_rate * service_time


def mm1_wait(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean waiting time ``rho / (mu - lambda)``; inf if overloaded."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ConfigError("need arrival_rate >= 0 and service_rate > 0")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        return float("inf")
    return rho / (service_rate - arrival_rate)


def mm1_response(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean response (sojourn) time ``1 / (mu - lambda)``."""
    if arrival_rate < 0 or service_rate <= 0:
        raise ConfigError("need arrival_rate >= 0 and service_rate > 0")
    if arrival_rate >= service_rate:
        return float("inf")
    return 1.0 / (service_rate - arrival_rate)


def mg1_wait(arrival_rate: float, mean_service: float, second_moment: float) -> float:
    """Pollaczek-Khinchine mean wait: ``lambda * E[S^2] / (2 (1 - rho))``.

    ``second_moment`` is E[S^2], not the variance.  Multi-exit service times
    are strongly bimodal (early exit vs. full depth), which is exactly the
    case where M/G/1 beats M/M/1 — and why the library carries E[S^2] around.
    """
    if arrival_rate < 0 or mean_service < 0 or second_moment < 0:
        raise ConfigError("queueing inputs must be non-negative")
    if second_moment < mean_service**2 * (1.0 - 1e-9):
        raise ConfigError(
            f"E[S^2]={second_moment} < E[S]^2={mean_service ** 2}: impossible moments"
        )
    second_moment = max(second_moment, mean_service**2)
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        return float("inf")
    if arrival_rate == 0:
        return 0.0
    return arrival_rate * second_moment / (2.0 * (1.0 - rho))


def mg1_wait_vec(
    arrival_rate: np.ndarray, mean_service: np.ndarray, second_moment: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`mg1_wait` (overload -> inf, no exceptions)."""
    lam = np.asarray(arrival_rate, dtype=float)
    es = np.asarray(mean_service, dtype=float)
    es2 = np.asarray(second_moment, dtype=float)
    rho = lam * es
    with np.errstate(divide="ignore", invalid="ignore"):
        w = lam * es2 / (2.0 * (1.0 - rho))
    w = np.where(rho >= 1.0, np.inf, w)
    return np.where(lam == 0.0, 0.0, w)


def aggregate_server_load(
    arrival_rates: np.ndarray, service_times: np.ndarray
) -> float:
    """Total utilization of a server serving several task streams."""
    lam = np.asarray(arrival_rates, dtype=float)
    es = np.asarray(service_times, dtype=float)
    if np.any(lam < 0) or np.any(es < 0):
        raise ConfigError("negative rates or service times")
    return float(np.dot(lam, es))


def superposed_mg1_wait(
    arrival_rates: np.ndarray, mean_services: np.ndarray, second_moments: np.ndarray
) -> float:
    """Mean wait at a FIFO server fed by independent Poisson task streams.

    The superposition of independent Poisson processes is Poisson with rate
    ``sum(lam_i)`` and service moments given by the rate-weighted mixture, so
    P-K applies directly.
    """
    lam = np.asarray(arrival_rates, dtype=float)
    if lam.sum() == 0:
        return 0.0
    es = float(np.dot(lam, mean_services) / lam.sum())
    es2 = float(np.dot(lam, second_moments) / lam.sum())
    return mg1_wait(float(lam.sum()), es, es2)
