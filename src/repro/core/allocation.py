"""Resource allocation: closed-form shares, server assignment, and the
shared solution-evaluation routine.

**Shares (KKT water-filling).**  Within one server, tasks ``i`` with expected
server work ``a_i`` (seconds at full speed) and weights ``w_i`` receive
compute shares minimizing ``sum_i w_i a_i / x_i`` subject to ``sum x_i <= 1``.
The Lagrangian stationarity condition gives ``x_i ∝ sqrt(w_i a_i)`` — the
classic square-root allocation (Cauchy–Schwarz shows optimality).  Bandwidth
shares on a contended access link follow the same rule with ``a_i`` replaced
by expected bytes.  Tasks with zero expected work on a resource receive a
full (unused) share of 1.

**Assignment (Hungarian).**  Tasks are matched to replicated "server slots"
(plus a private local-execution column per task) via
``scipy.optimize.linear_sum_assignment`` on a cost matrix of best-candidate
latencies under an equal-share estimate.  Slot replication bounds how many
tasks an assignment round can pile onto one server; the joint optimizer's
share re-solve then refines within each server.

**Evaluation.**  :func:`solution_latencies` is the single source of truth for
"what latency does this complete solution predict" — used identically by the
BCD solver, the best-response game, the exhaustive optimum, and the
experiment harness, so their objective values are directly comparable.
Congestion is charged with a tandem-queue approximation: each request stream
flows through up to three stages (device compute, link, server compute), each
modeled as an independent M/G/1 queue — Poisson input, service moments from
the plan's realized-demand distribution (multi-exit services are bimodal,
which is why :class:`~repro.core.plan.PlanFeatures` carries second moments).
The link and server stages see the *thinned* stream (rate ``λ·p_offload``)
with demand moments conditioned on offloading.  Per-stage waits add; any
stage at utilization >= 1 renders the solution infeasible (``inf``).
Experiment E14 validates this against the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.candidates import CandidateSet
from repro.core.objectives import Objective
from repro.core.plan import TaskSpec
from repro.core.queueing import mg1_wait
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError, PlanError
from repro.telemetry.trace import traced

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.risk import RiskConfig
    from repro.profiling.counters import PerfCounters


@dataclass
class Allocation:
    """Per-task server choice and resource shares."""

    assignment: List[Optional[int]]  # server index or None (local)
    compute_shares: np.ndarray
    bandwidth_shares: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.assignment)
        self.compute_shares = np.asarray(self.compute_shares, dtype=float)
        self.bandwidth_shares = np.asarray(self.bandwidth_shares, dtype=float)
        if self.compute_shares.shape != (n,) or self.bandwidth_shares.shape != (n,):
            raise ConfigError("share arrays must match assignment length")
        if np.any(self.compute_shares <= 0) or np.any(self.compute_shares > 1 + 1e-9):
            raise ConfigError(f"compute shares outside (0,1]: {self.compute_shares}")
        if np.any(self.bandwidth_shares <= 0) or np.any(
            self.bandwidth_shares > 1 + 1e-9
        ):
            raise ConfigError(f"bandwidth shares outside (0,1]: {self.bandwidth_shares}")


def power_shares(weights: np.ndarray, exponent: float = 0.5) -> np.ndarray:
    """Shares ``x_i ∝ weights_i**exponent`` summing to 1.

    ``exponent`` selects the fairness/efficiency point of a one-parameter
    allocation family (ablation A5):

    - ``0.0`` — equal shares regardless of demand (proportional fairness on
      shares; what a fair OS scheduler gives);
    - ``0.5`` — the KKT optimum of total weighted latency (the default; see
      :func:`sqrt_shares`);
    - ``1.0`` — shares proportional to demand, equalizing per-task latency
      contributions (max-min on latency).

    Zero-weight entries receive share 1 (they do not consume the resource).
    """
    if not (0.0 <= exponent <= 1.0):
        raise ConfigError(f"share exponent must be in [0,1], got {exponent}")
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ConfigError(f"negative share weights: {w}")
    active = w > 0
    x = np.ones_like(w)
    if np.any(active):
        s = w[active] ** exponent
        x[active] = s / s.sum()
    return x


def sqrt_shares(weights: np.ndarray) -> np.ndarray:
    """Optimal shares ``x_i ∝ sqrt(weights_i)`` summing to 1.

    ``weights_i = w_i * a_i`` (importance × full-speed resource seconds);
    the ``exponent=0.5`` member of :func:`power_shares`, which Cauchy–Schwarz
    shows minimizes ``sum_i w_i a_i / x_i`` subject to ``sum x_i <= 1``.
    """
    return power_shares(weights, 0.5)


@traced("alloc.full_solve")
def allocate_shares(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: Sequence[int],
    assignment: Sequence[Optional[int]],
    cluster: EdgeCluster,
    latency_model: LatencyModel,
    objective: Objective = Objective.AVG_LATENCY,
    share_exponent: float = 0.5,
) -> Allocation:
    """Closed-form compute and bandwidth shares given plans + assignment.

    Compute shares are solved per server; bandwidth shares per access link
    (tasks on the same end device contending for the same radio).
    ``share_exponent`` selects the fairness/efficiency point — see
    :func:`power_shares` (0.5 = latency-optimal default).
    """
    n = len(tasks)
    if not (len(candsets) == len(plan_idx) == len(assignment) == n):
        raise ConfigError("tasks/candsets/plan_idx/assignment length mismatch")
    compute = np.ones(n)
    bandwidth = np.ones(n)

    # group by server for compute shares
    by_server: Dict[int, List[int]] = {}
    for i, s in enumerate(assignment):
        if s is not None:
            by_server.setdefault(s, []).append(i)
    for s, members in by_server.items():
        server = cluster.servers[s]
        rate = latency_model.throughput(server)
        weights = np.array(
            [
                objective.task_weight(tasks[i])
                * tasks[i].arrival_rate
                * candsets[i].srv_flops[plan_idx[i]]
                / rate
                for i in members
            ]
        )
        compute[members] = power_shares(weights, share_exponent)

    # group by (device, server) link for bandwidth shares
    by_link: Dict[Tuple[str, int], List[int]] = {}
    for i, s in enumerate(assignment):
        if s is not None:
            by_link.setdefault((tasks[i].device_name, s), []).append(i)
    for (dev_name, s), members in by_link.items():
        link = cluster.link(dev_name, cluster.servers[s].name)
        weights = np.array(
            [
                objective.task_weight(tasks[i])
                * tasks[i].arrival_rate
                * candsets[i].wire_bytes[plan_idx[i]]
                / link.bandwidth_bps
                for i in members
            ]
        )
        bandwidth[members] = power_shares(weights, share_exponent)

    return Allocation(list(assignment), compute, bandwidth)


class _LazyLinkBW(dict):
    """``(device_name, server_idx) -> bandwidth_bps``, fetched on first use."""

    def __init__(self, cluster: "EdgeCluster") -> None:
        super().__init__()
        self._cluster = cluster

    def __missing__(self, key: Tuple[str, int]) -> float:
        name, s = key
        bw = self._cluster.link(name, self._cluster.servers[s].name).bandwidth_bps
        self[key] = bw
        return bw


class IncrementalAllocator:
    """Share allocator with O(affected groups) incremental re-solves.

    The share problem decomposes exactly: compute shares couple only tasks on
    the same server, bandwidth shares only tasks on the same (device, server)
    access link.  A single-task move or plan change therefore invalidates at
    most two server groups and two link groups; every other task's shares are
    unchanged.  :meth:`update` exploits this, while :meth:`solve` is a full
    solve bit-identical to :func:`allocate_shares` (same grouping order, same
    weight expressions, same float operation order) for a fixed problem.

    The constructor hoists everything that is invariant across re-solves —
    per-task ``weight × arrival_rate`` products, server throughputs, and link
    bandwidths — so the per-trial cost in the joint optimizer's local search
    drops from O(n + groups) dictionary/cluster lookups to O(|group|).

    Instances are safe to share across parallel restart threads: the only
    post-construction mutation is the lazy link-bandwidth memo, whose entries
    are deterministic (a racing double-fetch writes the same value); per-call
    work counters are passed in explicitly.
    """

    def __init__(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        cluster: EdgeCluster,
        latency_model: LatencyModel,
        objective: Objective = Objective.AVG_LATENCY,
        share_exponent: float = 0.5,
    ) -> None:
        if len(candsets) != len(tasks):
            raise ConfigError("tasks/candsets length mismatch")
        self.tasks = list(tasks)
        self.candsets = list(candsets)
        self.cluster = cluster
        self.exponent = share_exponent
        self._n = len(self.tasks)
        # invariant per-task factors of the share weights, multiplied in the
        # same order as allocate_shares: (weight * rate) * work / capacity
        self._base_w = [objective.task_weight(t) * t.arrival_rate for t in self.tasks]
        self._srv_rate = [latency_model.throughput(s) for s in cluster.servers]
        self._dev_name = [t.device_name for t in self.tasks]
        # link bandwidths resolve lazily: hoisting all devices × servers
        # upfront is O(n·m) cluster lookups on big instances, while a solve
        # only ever touches the (device, assigned-server) pairs it visits —
        # hot-path hits stay plain dict lookups
        self._link_bw = _LazyLinkBW(cluster)

    # -- group kernels ------------------------------------------------------

    def _solve_server(
        self, s: int, members: List[int], plan_idx: Sequence[int], out: np.ndarray
    ) -> None:
        rate = self._srv_rate[s]
        weights = np.array(
            [
                self._base_w[i] * self.candsets[i].srv_flops[plan_idx[i]] / rate
                for i in members
            ]
        )
        out[members] = power_shares(weights, self.exponent)

    def _solve_link(
        self,
        dev_name: str,
        s: int,
        members: List[int],
        plan_idx: Sequence[int],
        out: np.ndarray,
    ) -> None:
        bw = self._link_bw[(dev_name, s)]
        weights = np.array(
            [
                self._base_w[i] * self.candsets[i].wire_bytes[plan_idx[i]] / bw
                for i in members
            ]
        )
        out[members] = power_shares(weights, self.exponent)

    # -- public API ---------------------------------------------------------

    def solve(
        self,
        plan_idx: Sequence[int],
        assignment: Sequence[Optional[int]],
        counters: Optional["PerfCounters"] = None,
    ) -> Allocation:
        """Full share solve — bit-identical to :func:`allocate_shares`."""
        n = self._n
        if not (len(plan_idx) == len(assignment) == n):
            raise ConfigError("plan_idx/assignment length mismatch")
        compute = np.ones(n)
        bandwidth = np.ones(n)
        by_server: Dict[int, List[int]] = {}
        by_link: Dict[Tuple[str, int], List[int]] = {}
        for i, s in enumerate(assignment):
            if s is not None:
                by_server.setdefault(s, []).append(i)
                by_link.setdefault((self._dev_name[i], s), []).append(i)
        for s, members in by_server.items():
            self._solve_server(s, members, plan_idx, compute)
        for (dev_name, s), members in by_link.items():
            self._solve_link(dev_name, s, members, plan_idx, bandwidth)
        if counters is not None:
            counters.allocate_calls += 1
            counters.allocate_group_solves += len(by_server) + len(by_link)
        return Allocation(list(assignment), compute, bandwidth)

    def update(
        self,
        base: Allocation,
        plan_idx: Sequence[int],
        assignment: Sequence[Optional[int]],
        changed: Sequence[int],
        counters: Optional["PerfCounters"] = None,
        members_by_server: Optional[Dict[Optional[int], List[int]]] = None,
    ) -> Allocation:
        """Shares for ``(plan_idx, assignment)``, reusing a solved ``base``.

        ``base`` must be a valid allocation for a state that differs from the
        requested one only in the placement and/or plan of the tasks listed in
        ``changed``.  Only the server and link groups containing a changed
        task (in either the old or the new state) are re-solved; every other
        share is carried over.  The result is bit-identical to a full
        :meth:`solve` of the new state.

        ``members_by_server`` may supply the server→tasks inverse of
        ``assignment`` (each list ascending, exactly the order an index scan
        would produce) so touched groups resolve without the O(tasks) member
        scans — the cross-shard migration loop at 100k tasks maintains this
        inverse incrementally.  Shares are bit-identical either way because
        member order (hence float summation order) is unchanged.
        """
        compute = base.compute_shares.copy()
        bandwidth = base.bandwidth_shares.copy()
        servers: Set[int] = set()
        links: Set[Tuple[str, int]] = set()
        for i in changed:
            compute[i] = 1.0
            bandwidth[i] = 1.0
            for s in (base.assignment[i], assignment[i]):
                if s is not None:
                    servers.add(s)
                    links.add((self._dev_name[i], s))
        for s in sorted(servers):
            if members_by_server is not None:
                members = members_by_server.get(s, [])
            else:
                members = [i for i, a in enumerate(assignment) if a == s]
            if members:
                self._solve_server(s, members, plan_idx, compute)
        for dev_name, s in sorted(links):
            if members_by_server is not None:
                members = [
                    i
                    for i in members_by_server.get(s, [])
                    if self._dev_name[i] == dev_name
                ]
            else:
                members = [
                    i
                    for i, a in enumerate(assignment)
                    if a == s and self._dev_name[i] == dev_name
                ]
            if members:
                self._solve_link(dev_name, s, members, plan_idx, bandwidth)
        if counters is not None:
            counters.allocate_calls += 1
            counters.allocate_group_solves += len(servers) + len(links)
        return Allocation(list(assignment), compute, bandwidth)


#: Surrogate latency (seconds per unit of bottleneck utilization) used in
#: "penalty" overload mode — must dwarf any real latency so penalized
#: solutions never beat stable ones, while still ordering overloaded
#: solutions by how overloaded they are.
OVERLOAD_PENALTY_S = 1e4


def solution_latencies(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: Sequence[int],
    allocation: Allocation,
    cluster: EdgeCluster,
    latency_model: LatencyModel,
    include_queueing: bool = True,
    overload: str = "inf",
    risk: Optional["RiskConfig"] = None,
) -> np.ndarray:
    """Predicted expected latency per task for a complete solution.

    Includes per-stage M/G/1 waiting terms when ``include_queueing``
    (default) — see the module docstring.  Structurally infeasible choices
    (offloading plan with no server) are always ``inf``.  Queue-unstable
    choices (any stage utilization >= 1) are ``inf`` in the default
    ``overload="inf"`` mode — the honest report — or a large
    utilization-graded surrogate in ``overload="penalty"`` mode, which the
    iterative solvers use internally so that the search keeps a gradient even
    when every reachable solution is overloaded (degrade gracefully: shed the
    most load first).

    An active ``risk`` config buffers every latency to ``μ + κ(ε)·σ`` (see
    :mod:`repro.core.risk`); ``None`` or ``buffer="none"`` leaves the
    deterministic values bit-identical.
    """
    if overload not in ("inf", "penalty"):
        raise ConfigError(f"overload must be 'inf' or 'penalty', got {overload!r}")
    n = len(tasks)
    out = np.empty(n)
    for i, task in enumerate(tasks):
        out[i] = solution_latency_task(
            task,
            candsets[i],
            plan_idx[i],
            allocation.assignment[i],
            float(allocation.compute_shares[i]),
            float(allocation.bandwidth_shares[i]),
            cluster,
            latency_model,
            include_queueing=include_queueing,
            overload=overload,
            risk=risk,
        )
    return out


def solution_latency_task(
    task: TaskSpec,
    cs: CandidateSet,
    j: int,
    s: Optional[int],
    x: float,
    y: float,
    cluster: EdgeCluster,
    latency_model: LatencyModel,
    include_queueing: bool = True,
    overload: str = "inf",
    device=None,
    risk: Optional["RiskConfig"] = None,
) -> float:
    """Predicted latency of one task — the per-task kernel of
    :func:`solution_latencies`.

    Exposed separately so incremental solvers can re-evaluate only the tasks
    whose server or link groups changed after a trial move, instead of the
    whole solution.  ``x``/``y`` are the task's compute and bandwidth shares;
    ``device`` may be passed to skip the ``cluster.by_name`` lookup.
    ``overload`` is assumed pre-validated by the caller.  An active ``risk``
    config returns the buffered latency ``μ + κ(ε)·σ``, mirroring (stage for
    stage) the vectorized :meth:`CandidateSet._latency_stds` bound.
    """
    f = cs.features[j]
    if device is None:
        device = cluster.by_name(task.device_name)
    lam = task.arrival_rate
    r_dev = latency_model.throughput(device)
    oh_d = device.overhead_s if f.dev_flops > 0 else 0.0
    t_dev = f.dev_flops / r_dev + oh_d
    wait = 0.0
    rho_max = lam * t_dev
    buffered = risk is not None and risk.active
    sigma = 0.0
    if buffered:
        from repro.core.risk import stage_std

        sigma = stage_std(
            f.dev_flops / r_dev, f.dev_flops_sq / r_dev**2, oh_d, 1.0, risk.rel_var
        )
    if include_queueing and t_dev > 0:
        # device stage: every request visits it
        s1 = t_dev
        s2 = (
            f.dev_flops_sq / r_dev**2
            + 2.0 * oh_d * f.dev_flops / r_dev
            + oh_d**2
        )
        wait = mg1_wait(lam, s1, max(s2, s1 * s1))
        if buffered:
            from repro.core.risk import wait_std

            sigma += wait_std(wait, s1)
    if s is None:
        if not f.is_local_only:
            return float(np.inf)
        latency = t_dev + wait
        if not np.isfinite(latency):
            latency = (
                t_dev + OVERLOAD_PENALTY_S * rho_max
                if overload == "penalty"
                else float(np.inf)
            )
        return latency + risk.kappa * sigma if buffered else latency
    server = cluster.servers[s]
    link = cluster.link(task.device_name, server.name)
    r_srv = latency_model.throughput(server) * x
    bw = link.bandwidth_bps * y
    t_srv = f.srv_flops / r_srv + f.p_offload * server.overhead_s
    t_link = f.wire_bytes / bw
    base = t_dev + t_srv + t_link + f.p_offload * link.rtt_s
    if buffered:
        from repro.core.risk import stage_std

        sigma += (
            stage_std(
                f.srv_flops / r_srv, f.srv_flops_sq / r_srv**2,
                server.overhead_s, f.p_offload, risk.rel_var,
            )
            + stage_std(
                f.wire_bytes / bw, f.wire_bytes_sq / bw**2,
                0.0, f.p_offload, risk.rel_var,
            )
            + stage_std(0.0, 0.0, link.rtt_s, f.p_offload, 0.0)
        )
    total_wait = wait
    if include_queueing and f.p_offload > 0:
        lam_off = lam * f.p_offload
        # server stage: thinned stream, conditional service moments
        m1 = (f.srv_flops / f.p_offload) / r_srv + server.overhead_s
        m2 = (
            (f.srv_flops_sq / f.p_offload) / r_srv**2
            + 2.0 * server.overhead_s * (f.srv_flops / f.p_offload) / r_srv
            + server.overhead_s**2
        )
        w_srv = mg1_wait(lam_off, m1, max(m2, m1 * m1))
        # link stage: deterministic conditional service (fixed boundary)
        l1 = (f.wire_bytes / f.p_offload) / bw
        l2 = (f.wire_bytes_sq / f.p_offload) / bw**2
        w_link = mg1_wait(lam_off, l1, max(l2, l1 * l1))
        total_wait = wait + f.p_offload * (w_srv + w_link)
        rho_max = max(rho_max, lam_off * m1, lam_off * l1)
        if buffered:
            from repro.core.risk import wait_std

            sigma += wait_std(w_srv, m1, f.p_offload) + wait_std(
                w_link, l1, f.p_offload
            )
    buf = risk.kappa * sigma if buffered else 0.0
    if np.isfinite(total_wait):
        return base + total_wait + buf
    if overload == "penalty":
        return base + OVERLOAD_PENALTY_S * rho_max + buf
    return float(np.inf)


@traced("alloc.assign_servers")
def assign_servers(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    cluster: EdgeCluster,
    latency_model: LatencyModel,
    slots_per_server: Optional[int] = None,
    share_estimate: Optional[float] = None,
    risk: Optional["RiskConfig"] = None,
) -> List[Optional[int]]:
    """Initial task -> server assignment by min-cost matching.

    Cost of (task, server) = best candidate latency under an optimistic
    equal-share estimate; each task also gets a private "run locally" column
    priced at its best local-only latency (``inf`` if it has none).  Servers
    are replicated into ``slots_per_server`` columns (default: enough for all
    tasks to fit, +1 slack) so load spreads before share refinement.  An
    active ``risk`` config prices columns by buffered ``μ + κσ`` latencies so
    the matching already prefers low-variance placements.
    """
    n, m = len(tasks), cluster.num_servers
    if n == 0:
        return []
    if slots_per_server is None:
        slots_per_server = max(1, -(-n // m))  # ceil(n/m)
    if share_estimate is None:
        share_estimate = 1.0 / max(1, min(n, slots_per_server))

    cols = m * slots_per_server + n
    cost = np.full((n, cols), np.inf)
    for i, task in enumerate(tasks):
        device = cluster.by_name(task.device_name)
        for s in range(m):
            server = cluster.servers[s]
            link = cluster.link(task.device_name, server.name)
            lat = candsets[i].latencies(
                device,
                latency_model,
                server=server,
                link=link,
                compute_share=share_estimate,
                bandwidth_share=share_estimate,
                risk=risk,
            )
            best = float(np.min(lat))
            for k in range(slots_per_server):
                cost[i, s * slots_per_server + k] = best
        # private local column
        local_lat = candsets[i].latencies(device, latency_model, risk=risk)
        cost[i, m * slots_per_server + i] = float(np.min(local_lat))

    # linear_sum_assignment rejects inf rows; replace with a huge finite cost
    finite_max = np.nanmax(np.where(np.isinf(cost), np.nan, cost))
    big = (finite_max if np.isfinite(finite_max) else 1.0) * 1e6 + 1e3
    cost_f = np.where(np.isinf(cost), big, cost)
    rows, cols_sel = linear_sum_assignment(cost_f)
    assignment: List[Optional[int]] = [None] * n
    for r, c in zip(rows, cols_sel):
        if c < m * slots_per_server and cost[r, c] != np.inf:
            assignment[r] = int(c // slots_per_server)
        else:
            assignment[r] = None
    return assignment
