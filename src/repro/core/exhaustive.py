"""Brute-force optimum for small instances (optimality-gap measurement, E8).

Enumerates every task->server assignment (including local execution) crossed
with every combination of candidate plans, solving shares in closed form for
each combination.  The search space is ``(m+1)^n * prod_i |C_i|`` — viable
only for a handful of tasks with pruned candidate sets, which is exactly the
regime experiment E8 uses.  A hard budget guards against accidental blow-ups.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

import numpy as np

from repro.core.allocation import allocate_shares, solution_latencies
from repro.core.candidates import CandidateSet, build_candidates
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError, InfeasibleError


def exhaustive_optimum(
    tasks: Sequence[TaskSpec],
    cluster: EdgeCluster,
    latency_model: Optional[LatencyModel] = None,
    objective: Objective = Objective.AVG_LATENCY,
    candidates: Optional[Sequence[CandidateSet]] = None,
    include_queueing: bool = True,
    budget: int = 2_000_000,
) -> JointPlan:
    """Globally optimal joint plan by exhaustive enumeration.

    Raises :class:`ConfigError` if the instance exceeds ``budget`` evaluated
    combinations, and :class:`InfeasibleError` if nothing feasible exists.
    """
    if not tasks:
        raise ConfigError("no tasks")
    lm = latency_model or LatencyModel()
    n, m = len(tasks), cluster.num_servers
    if candidates is None:
        candsets = [build_candidates(t) for t in tasks]
    else:
        candsets = list(candidates)

    sizes = [len(c) for c in candsets]
    total = (m + 1) ** n
    for s in sizes:
        total *= s
        if total > budget:
            raise ConfigError(
                f"exhaustive search space too large (> {budget}); "
                f"n={n}, m={m}, candidate sizes={sizes}"
            )

    best_obj = np.inf
    best: Optional[JointPlan] = None
    options: List[Optional[int]] = [None] + list(range(m))
    for assign_combo in itertools.product(options, repeat=n):
        assignment = list(assign_combo)
        for plan_combo in itertools.product(*[range(s) for s in sizes]):
            plan_idx = list(plan_combo)
            alloc = allocate_shares(
                tasks, candsets, plan_idx, assignment, cluster, lm, objective
            )
            lat = solution_latencies(
                tasks, candsets, plan_idx, alloc, cluster, lm, include_queueing
            )
            obj = objective.evaluate(lat, tasks)
            if obj < best_obj:
                best_obj = obj
                best = JointPlan(
                    assignment={t.name: assignment[i] for i, t in enumerate(tasks)},
                    features={
                        t.name: candsets[i].features[plan_idx[i]]
                        for i, t in enumerate(tasks)
                    },
                    compute_shares={
                        t.name: float(alloc.compute_shares[i]) for i, t in enumerate(tasks)
                    },
                    bandwidth_shares={
                        t.name: float(alloc.bandwidth_shares[i])
                        for i, t in enumerate(tasks)
                    },
                    latencies={t.name: float(lat[i]) for i, t in enumerate(tasks)},
                    objective_value=float(obj),
                )
    if best is None or not np.isfinite(best_obj):
        raise InfeasibleError("no feasible joint plan exists for this instance")
    return best
