"""Baseline strategies the joint optimizer is evaluated against.

Every baseline implements the :class:`~repro.baselines.base.Strategy`
interface (tasks + cluster -> :class:`~repro.core.plan.JointPlan`) and is
solved with the *same* latency semantics (:func:`solution_latencies`) as the
joint optimizer, so comparisons are apples-to-apples.

=====================  ==========================================================
Strategy               What it models
=====================  ==========================================================
``DeviceOnly``         run the full model locally (no surgery, no offload)
``BranchyLocal``       BranchyNet: early exits, but everything stays local
``EdgeOnly``           ship raw input to a round-robin server (no surgery)
``CloudOnly``          ship raw input to the single fastest server
``Neurosurgeon``       per-task best partition point; no exits; no multi-user
                       allocation (equal shares)
``Edgent``             per-task surgery (exits + partition) assuming a private
                       server; no allocation awareness
``AllocationOnly``     smart assignment + shares, but no model surgery
``GreedyJoint``        one greedy sequential pass over tasks (deadline order)
``RandomStrategy``     random feasible choices (sanity floor)
``RoundRobinStrategy`` round-robin servers, best plan under equal shares
=====================  ==========================================================
"""

from repro.baselines.base import Strategy, equal_share_allocation, package_solution
from repro.baselines.branchy import BranchyLocal
from repro.baselines.edgent import Edgent
from repro.baselines.greedy import GreedyJoint
from repro.baselines.neurosurgeon import Neurosurgeon
from repro.baselines.random_alloc import RandomStrategy
from repro.baselines.round_robin import RoundRobinStrategy
from repro.baselines.static_placement import AllocationOnly, CloudOnly, DeviceOnly, EdgeOnly

__all__ = [
    "AllocationOnly",
    "BranchyLocal",
    "CloudOnly",
    "DeviceOnly",
    "EdgeOnly",
    "Edgent",
    "GreedyJoint",
    "Neurosurgeon",
    "RandomStrategy",
    "RoundRobinStrategy",
    "Strategy",
    "equal_share_allocation",
    "package_solution",
]
