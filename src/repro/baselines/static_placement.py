"""Static placement baselines: device-only, edge-only, cloud-only, and the
allocation-only ablation."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import (
    Strategy,
    equal_share_allocation,
    full_offload,
    no_exit,
    restrict,
)
from repro.core.allocation import allocate_shares, assign_servers
from repro.core.candidates import CandidateSet
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.rng import SeedLike


class DeviceOnly(Strategy):
    """Run the unmodified full-depth model on the end device.

    What a deployment without any edge infrastructure does; the weakest
    baseline on constrained hardware and the strongest at zero bandwidth.
    """

    name = "device_only"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        restricted = [
            restrict(cs, lambda f: no_exit(f) and f.is_local_only) for cs in candsets
        ]
        plan_idx = [0] * len(tasks)  # exactly one plan survives the restriction
        for i, cs in enumerate(restricted):
            device = cluster.by_name(tasks[i].device_name)
            lat = cs.latencies(device, self.latency_model)
            plan_idx[i] = int(np.argmin(lat))
        alloc = equal_share_allocation([None] * len(tasks), tasks)
        return self._finish(tasks, restricted, plan_idx, alloc, cluster)


class EdgeOnly(Strategy):
    """Ship the raw input to an edge server chosen round-robin; no surgery."""

    name = "edge_only"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        restricted = [
            restrict(cs, lambda f: no_exit(f) and full_offload(f)) for cs in candsets
        ]
        m = cluster.num_servers
        assignment: List[Optional[int]] = [i % m for i in range(len(tasks))]
        plan_idx = [0] * len(tasks)
        alloc = equal_share_allocation(assignment, tasks)
        return self._finish(tasks, restricted, plan_idx, alloc, cluster)


class CloudOnly(Strategy):
    """Ship the raw input to the single most powerful server (the "cloud").

    Models the pre-edge-computing status quo: all load converges on one
    remote site, contending for its compute and for the access links.
    """

    name = "cloud_only"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        restricted = [
            restrict(cs, lambda f: no_exit(f) and full_offload(f)) for cs in candsets
        ]
        best_server = int(
            np.argmax([s.peak_flops for s in cluster.servers])
        )
        assignment: List[Optional[int]] = [best_server] * len(tasks)
        plan_idx = [0] * len(tasks)
        alloc = equal_share_allocation(assignment, tasks)
        return self._finish(tasks, restricted, plan_idx, alloc, cluster)


class AllocationOnly(Strategy):
    """Smart allocation without model surgery (the allocation-only ablation).

    Keeps the full-depth model (no exits) but can choose local vs. any
    partition-free placement; assignment via Hungarian matching and shares
    via the KKT sqrt rule — i.e. everything the joint optimizer does except
    touching the model.
    """

    name = "allocation_only"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        # no surgery: final-exit-only plans; both extremes of partitioning
        # (fully local / full offload) are placement, not surgery
        restricted = [
            restrict(
                cs,
                lambda f: no_exit(f) and (f.is_local_only or full_offload(f)),
            )
            for cs in candsets
        ]
        assignment = assign_servers(tasks, restricted, cluster, self.latency_model)
        # pick best restricted plan per task under sqrt shares, iterated once
        plan_idx = [0] * len(tasks)
        alloc = allocate_shares(
            tasks, restricted, plan_idx, assignment, cluster, self.latency_model, self.objective
        )
        for i, t in enumerate(tasks):
            device = cluster.by_name(t.device_name)
            s = alloc.assignment[i]
            if s is None:
                lat = restricted[i].latencies(device, self.latency_model)
            else:
                server = cluster.servers[s]
                link = cluster.link(t.device_name, server.name)
                lat = restricted[i].latencies(
                    device,
                    self.latency_model,
                    server=server,
                    link=link,
                    compute_share=float(alloc.compute_shares[i]),
                    bandwidth_share=float(alloc.bandwidth_shares[i]),
                )
            plan_idx[i] = int(np.argmin(lat))
        alloc = allocate_shares(
            tasks, restricted, plan_idx, assignment, cluster, self.latency_model, self.objective
        )
        return self._finish(tasks, restricted, plan_idx, alloc, cluster)
