"""Neurosurgeon-style partition-only baseline (Kang et al., ASPLOS'17).

Per task, independently, pick the latency-minimal partition point of the
*unmodified* model (no early exits), assuming the server assigned round-robin
and fair equal shares.  This is the canonical "DNN partitioning" baseline:
compute/communication-aware, but blind to both multi-exit surgery and
cross-task resource contention at decision time.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import Strategy, equal_share_allocation, no_exit, restrict
from repro.core.plan import JointPlan
from repro.rng import SeedLike


class Neurosurgeon(Strategy):
    """Partition-only, contention-oblivious baseline."""

    name = "neurosurgeon"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        restricted = [restrict(cs, no_exit) for cs in candsets]
        m = cluster.num_servers
        assignment: List[Optional[int]] = [i % m for i in range(len(tasks))]
        # the original system decides as if it had the server to itself:
        # evaluate partitions at full share, then live with equal shares
        plan_idx = []
        for i, t in enumerate(tasks):
            device = cluster.by_name(t.device_name)
            server = cluster.servers[assignment[i]]
            link = cluster.link(t.device_name, server.name)
            lat = restricted[i].latencies(
                device, self.latency_model, server=server, link=link
            )
            plan_idx.append(int(np.argmin(lat)))
        # a task whose chosen plan turned out fully local needs no server
        for i in range(len(tasks)):
            if restricted[i].features[plan_idx[i]].is_local_only:
                assignment[i] = None
        alloc = equal_share_allocation(assignment, tasks)
        return self._finish(tasks, restricted, plan_idx, alloc, cluster)
