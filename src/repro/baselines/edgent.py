"""Edgent-style surgery-only baseline (Li et al., SEC'18 / TWC'19).

Joint early-exit + partition-point selection *per task in isolation*: each
task optimizes its own surgery as if it had the round-robin-assigned server
and the access link entirely to itself.  The surgery machinery is identical
to the joint optimizer's; what is missing is any awareness that servers and
links are shared — the resulting plans over-offload under load, which is the
gap experiments E4/E12 quantify.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import Strategy, equal_share_allocation
from repro.core.plan import JointPlan
from repro.rng import SeedLike


class Edgent(Strategy):
    """Per-task surgery (exits + partition), allocation-oblivious."""

    name = "edgent"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        m = cluster.num_servers
        assignment: List[Optional[int]] = [i % m for i in range(len(tasks))]
        plan_idx = []
        for i, t in enumerate(tasks):
            device = cluster.by_name(t.device_name)
            server = cluster.servers[assignment[i]]
            link = cluster.link(t.device_name, server.name)
            lat = candsets[i].latencies(
                device, self.latency_model, server=server, link=link
            )
            plan_idx.append(int(np.argmin(lat)))
        for i in range(len(tasks)):
            if candsets[i].features[plan_idx[i]].is_local_only:
                assignment[i] = None
        alloc = equal_share_allocation(assignment, tasks)
        return self._finish(tasks, candsets, plan_idx, alloc, cluster)
