"""Random baseline — the sanity floor every principled method must clear."""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import Strategy, equal_share_allocation
from repro.core.plan import JointPlan
from repro.rng import SeedLike, as_generator


class RandomStrategy(Strategy):
    """Uniformly random placement and plan choice (accuracy-feasible only)."""

    name = "random"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        rng = as_generator(seed)
        candsets = self._candidates(tasks, candidates)
        m = cluster.num_servers
        assignment: List[Optional[int]] = []
        plan_idx: List[int] = []
        for i, t in enumerate(tasks):
            choice = int(rng.integers(m + 1))
            want_local = choice == m
            cs = candsets[i]
            if want_local:
                local = [j for j, f in enumerate(cs.features) if f.is_local_only]
                if local:
                    assignment.append(None)
                    plan_idx.append(int(rng.choice(local)))
                    continue
                choice = int(rng.integers(m))  # no local plan: fall through
            assignment.append(choice)
            plan_idx.append(int(rng.integers(len(cs))))
        # a random offloading assignment with a local-only plan is wasteful
        # but valid; drop the unused server to keep the plan self-consistent
        for i in range(len(tasks)):
            if candsets[i].features[plan_idx[i]].is_local_only:
                assignment[i] = None
        alloc = equal_share_allocation(assignment, tasks)
        return self._finish(tasks, candsets, plan_idx, alloc, cluster)
