"""Round-robin placement with per-task best plan under equal shares.

A reasonable "simple system" point: spreads load evenly, lets each task do
surgery for the share it will actually get, but never specializes shares or
placement to the task mix.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import Strategy, equal_share_allocation
from repro.core.plan import JointPlan
from repro.rng import SeedLike


class RoundRobinStrategy(Strategy):
    """Round-robin servers + surgery under the implied equal shares."""

    name = "round_robin"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        n, m = len(tasks), cluster.num_servers
        assignment: List[Optional[int]] = [i % m for i in range(n)]
        alloc = equal_share_allocation(assignment, tasks)
        plan_idx = []
        for i, t in enumerate(tasks):
            device = cluster.by_name(t.device_name)
            server = cluster.servers[assignment[i]]
            link = cluster.link(t.device_name, server.name)
            lat = candsets[i].latencies(
                device,
                self.latency_model,
                server=server,
                link=link,
                compute_share=float(alloc.compute_shares[i]),
                bandwidth_share=float(alloc.bandwidth_shares[i]),
            )
            plan_idx.append(int(np.argmin(lat)))
        for i in range(n):
            if candsets[i].features[plan_idx[i]].is_local_only:
                assignment[i] = None
        alloc = equal_share_allocation(assignment, tasks)
        return self._finish(tasks, candsets, plan_idx, alloc, cluster)
