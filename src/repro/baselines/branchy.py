"""BranchyNet-style exit-only baseline (Teerapittayanon et al., ICPR'16).

Early exits with confidence thresholds, but everything executes on the end
device — no offloading, no allocation.  Picks the fastest local multi-exit
configuration meeting the accuracy floor.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Strategy, equal_share_allocation, restrict
from repro.core.plan import JointPlan
from repro.rng import SeedLike


class BranchyLocal(Strategy):
    """Early exits only; all computation stays on the device."""

    name = "branchy_local"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        restricted = [restrict(cs, lambda f: f.is_local_only) for cs in candsets]
        plan_idx = []
        for i, t in enumerate(tasks):
            device = cluster.by_name(t.device_name)
            lat = restricted[i].latencies(device, self.latency_model)
            plan_idx.append(int(np.argmin(lat)))
        alloc = equal_share_allocation([None] * len(tasks), tasks)
        return self._finish(tasks, restricted, plan_idx, alloc, cluster)
