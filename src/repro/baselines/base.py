"""Strategy interface and shared helpers for baselines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.allocation import Allocation, solution_latencies
from repro.core.candidates import CandidateSet, build_candidates
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, PlanFeatures, SurgeryPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import InfeasibleError
from repro.rng import SeedLike


class Strategy(ABC):
    """A decision procedure mapping an instance to a :class:`JointPlan`."""

    #: Human-readable name used in experiment tables.
    name: str = "strategy"

    def __init__(
        self,
        latency_model: Optional[LatencyModel] = None,
        objective: Objective = Objective.AVG_LATENCY,
        include_queueing: bool = True,
    ) -> None:
        self.latency_model = latency_model or LatencyModel()
        self.objective = objective
        self.include_queueing = include_queueing

    @abstractmethod
    def solve(
        self,
        tasks: Sequence[TaskSpec],
        cluster: EdgeCluster,
        candidates: Optional[Sequence[CandidateSet]] = None,
        seed: SeedLike = None,
    ) -> JointPlan:
        """Produce a complete joint plan for the instance."""

    # -- shared plumbing -------------------------------------------------------

    def _candidates(
        self,
        tasks: Sequence[TaskSpec],
        candidates: Optional[Sequence[CandidateSet]],
    ) -> List[CandidateSet]:
        if candidates is not None:
            return list(candidates)
        return [build_candidates(t) for t in tasks]

    def _finish(
        self,
        tasks: Sequence[TaskSpec],
        candsets: Sequence[CandidateSet],
        plan_idx: Sequence[int],
        allocation: Allocation,
        cluster: EdgeCluster,
    ) -> JointPlan:
        return package_solution(
            tasks,
            candsets,
            plan_idx,
            allocation,
            cluster,
            self.latency_model,
            self.objective,
            self.include_queueing,
        )


def restrict(cs: CandidateSet, pred: Callable[[PlanFeatures], bool]) -> CandidateSet:
    """Subset of a candidate set matching a plan predicate."""
    kept = [f for f in cs.features if pred(f)]
    if not kept:
        raise InfeasibleError(
            f"{cs.task.name}: no candidate satisfies the strategy's restriction"
        )
    return CandidateSet(cs.task, kept)


def no_exit(f: PlanFeatures) -> bool:
    """Plans that keep only the final exit (no early-exit surgery)."""
    return len(f.plan.kept_exits) == 1


def full_offload(f: PlanFeatures) -> bool:
    """Plans that ship the raw input (partition at the input node)."""
    return f.plan.partition_cut == 0


def equal_share_allocation(
    assignment: Sequence[Optional[int]],
    tasks: Sequence[TaskSpec],
) -> Allocation:
    """Fair 1/k compute and bandwidth shares per server / link group.

    What an allocation-unaware system gets from a fair OS scheduler.
    """
    n = len(assignment)
    compute = np.ones(n)
    bandwidth = np.ones(n)
    counts: Dict[int, int] = {}
    for s in assignment:
        if s is not None:
            counts[s] = counts.get(s, 0) + 1
    link_counts: Dict[tuple, int] = {}
    for i, s in enumerate(assignment):
        if s is not None:
            key = (tasks[i].device_name, s)
            link_counts[key] = link_counts.get(key, 0) + 1
    for i, s in enumerate(assignment):
        if s is not None:
            compute[i] = 1.0 / counts[s]
            bandwidth[i] = 1.0 / link_counts[(tasks[i].device_name, s)]
    return Allocation(list(assignment), compute, bandwidth)


def package_solution(
    tasks: Sequence[TaskSpec],
    candsets: Sequence[CandidateSet],
    plan_idx: Sequence[int],
    allocation: Allocation,
    cluster: EdgeCluster,
    latency_model: LatencyModel,
    objective: Objective,
    include_queueing: bool = True,
) -> JointPlan:
    """Evaluate a complete solution and wrap it as a :class:`JointPlan`."""
    lat = solution_latencies(
        tasks, candsets, plan_idx, allocation, cluster, latency_model, include_queueing
    )
    obj = objective.evaluate(lat, tasks)
    return JointPlan(
        assignment={t.name: allocation.assignment[i] for i, t in enumerate(tasks)},
        features={t.name: candsets[i].features[plan_idx[i]] for i, t in enumerate(tasks)},
        compute_shares={
            t.name: float(allocation.compute_shares[i]) for i, t in enumerate(tasks)
        },
        bandwidth_shares={
            t.name: float(allocation.bandwidth_shares[i]) for i, t in enumerate(tasks)
        },
        latencies={t.name: float(lat[i]) for i, t in enumerate(tasks)},
        objective_value=float(obj),
    )
