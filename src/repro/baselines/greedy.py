"""Greedy sequential joint heuristic.

Tasks are processed once in deadline order (most urgent first); each picks
the (server-or-local, plan) pair minimizing its own predicted latency given
the shares that would result from joining the already-placed tasks.  This is
effectively a single round of best response with a fixed visiting order —
cheap, contention-aware, but with no back-tracking, so early placements can
strand later tasks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.allocation import allocate_shares, solution_latencies
from repro.baselines.base import Strategy
from repro.core.plan import JointPlan
from repro.rng import SeedLike


class GreedyJoint(Strategy):
    """One-pass greedy joint placement + surgery."""

    name = "greedy"

    def solve(self, tasks, cluster, candidates=None, seed=None) -> JointPlan:
        candsets = self._candidates(tasks, candidates)
        n, m = len(tasks), cluster.num_servers
        order = sorted(range(n), key=lambda i: tasks[i].deadline_s)
        assignment: List[Optional[int]] = [None] * n
        plan_idx = [0] * n
        # start everyone on their best local plan so partially-built states
        # are always evaluable
        for i, t in enumerate(tasks):
            device = cluster.by_name(t.device_name)
            plan_idx[i] = int(np.argmin(candsets[i].latencies(device, self.latency_model)))

        placed: List[int] = []
        for i in order:
            t = tasks[i]
            device = cluster.by_name(t.device_name)
            best_lat = np.inf
            best_choice: tuple = (None, plan_idx[i])
            for option in [None] + list(range(m)):
                assignment[i] = option
                if option is None:
                    lat_vec = candsets[i].latencies(device, self.latency_model)
                    j = int(np.argmin(lat_vec))
                else:
                    server = cluster.servers[option]
                    link = cluster.link(t.device_name, server.name)
                    prov = allocate_shares(
                        tasks, candsets, plan_idx, assignment, cluster,
                        self.latency_model, self.objective,
                    )
                    lat_vec = candsets[i].latencies(
                        device,
                        self.latency_model,
                        server=server,
                        link=link,
                        compute_share=float(prov.compute_shares[i]),
                        bandwidth_share=float(prov.bandwidth_shares[i]),
                    )
                    j = int(np.argmin(lat_vec))
                saved = plan_idx[i]
                plan_idx[i] = j
                alloc = allocate_shares(
                    tasks, candsets, plan_idx, assignment, cluster,
                    self.latency_model, self.objective,
                )
                lat_all = solution_latencies(
                    tasks, candsets, plan_idx, alloc, cluster,
                    self.latency_model, self.include_queueing,
                    overload="penalty",
                )
                my_lat = float(lat_all[i])
                plan_idx[i] = saved
                if my_lat < best_lat:
                    best_lat = my_lat
                    best_choice = (option, j)
            assignment[i], plan_idx[i] = best_choice
            placed.append(i)

        alloc = allocate_shares(
            tasks, candsets, plan_idx, assignment, cluster, self.latency_model, self.objective
        )
        return self._finish(tasks, candsets, plan_idx, alloc, cluster)
