"""Graph construction helpers shared by the model zoo.

:class:`GraphBuilder` accumulates layers and edges with a "current tail"
cursor so sequential sections read like a layer list, while still allowing
explicit fan-out/fan-in for residual and Inception blocks.  The zoo modules
compose the block helpers below (``conv_bn_relu``, ``residual_block``,
``separable_block``, ``inception_module``) into full architectures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Input,
    Layer,
    Pool,
    Shape,
)


class GraphBuilder:
    """Incrementally build a :class:`ModelGraph`.

    The builder tracks the most recently added node; ``add`` with no explicit
    predecessor extends from it, so straight-line sections need no wiring.
    """

    def __init__(self, name: str, input_shape: Shape) -> None:
        self.name = name
        self._layers: dict[str, Layer] = {}
        self._edges: List[Tuple[str, str]] = []
        inp = Input("input", shape=tuple(input_shape))
        self._layers["input"] = inp
        self._tail = "input"

    @property
    def tail(self) -> str:
        """Name of the node new layers attach to by default."""
        return self._tail

    def add(self, layer: Layer, after: Optional[str] = None) -> str:
        """Append ``layer`` after ``after`` (default: current tail)."""
        if layer.name in self._layers:
            raise ModelError(f"{self.name}: duplicate layer name {layer.name!r}")
        src = after if after is not None else self._tail
        if src not in self._layers:
            raise ModelError(f"{self.name}: unknown predecessor {src!r}")
        self._layers[layer.name] = layer
        self._edges.append((src, layer.name))
        self._tail = layer.name
        return layer.name

    def merge(self, layer: Layer, inputs: Sequence[str]) -> str:
        """Append a merge layer combining ``inputs``."""
        if layer.name in self._layers:
            raise ModelError(f"{self.name}: duplicate layer name {layer.name!r}")
        for src in inputs:
            if src not in self._layers:
                raise ModelError(f"{self.name}: unknown merge input {src!r}")
        self._layers[layer.name] = layer
        self._edges.extend((src, layer.name) for src in inputs)
        self._tail = layer.name
        return layer.name

    def build(self) -> ModelGraph:
        """Finalize into a validated :class:`ModelGraph`."""
        return ModelGraph(self.name, self._layers, self._edges)


# --- reusable blocks ---------------------------------------------------------


def conv_bn_relu(
    b: GraphBuilder,
    prefix: str,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    after: Optional[str] = None,
    batchnorm: bool = True,
) -> str:
    """Conv → (BN) → ReLU; returns the ReLU node name."""
    b.add(
        Conv2D(
            f"{prefix}_conv",
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            bias=not batchnorm,
        ),
        after=after,
    )
    if batchnorm:
        b.add(BatchNorm(f"{prefix}_bn"))
    return b.add(Activation(f"{prefix}_relu"))


def residual_block(
    b: GraphBuilder,
    prefix: str,
    out_channels: int,
    stride: int = 1,
    bottleneck: bool = False,
    after: Optional[str] = None,
) -> str:
    """ResNet basic or bottleneck block with identity/projection shortcut."""
    entry = after if after is not None else b.tail
    if bottleneck:
        mid = out_channels // 4
        conv_bn_relu(b, f"{prefix}_a", mid, 1, stride, 0, after=entry)
        conv_bn_relu(b, f"{prefix}_b", mid, 3, 1, 1)
        b.add(Conv2D(f"{prefix}_c_conv", out_channels=out_channels, kernel=1, bias=False))
        b.add(BatchNorm(f"{prefix}_c_bn"))
    else:
        conv_bn_relu(b, f"{prefix}_a", out_channels, 3, stride, 1, after=entry)
        b.add(Conv2D(f"{prefix}_b_conv", out_channels=out_channels, kernel=3, padding=1, bias=False))
        b.add(BatchNorm(f"{prefix}_b_bn"))
    main = b.tail
    # shortcut: projection when stride > 1 or (heuristically) always via 1x1
    # on the first block of a stage; identity otherwise.
    shortcut = entry
    if stride != 1 or prefix.endswith("_0"):
        b.add(
            Conv2D(f"{prefix}_down_conv", out_channels=out_channels, kernel=1, stride=stride, bias=False),
            after=entry,
        )
        shortcut = b.add(BatchNorm(f"{prefix}_down_bn"))
    b.merge(Add(f"{prefix}_add"), [main, shortcut])
    return b.add(Activation(f"{prefix}_relu_out"))


def separable_block(
    b: GraphBuilder,
    prefix: str,
    out_channels: int,
    stride: int = 1,
    after: Optional[str] = None,
) -> str:
    """MobileNetV1 depthwise-separable block: DW conv → BN → ReLU → PW conv → BN → ReLU."""
    b.add(DepthwiseConv2D(f"{prefix}_dw", kernel=3, stride=stride, padding=1), after=after)
    b.add(BatchNorm(f"{prefix}_dw_bn"))
    b.add(Activation(f"{prefix}_dw_relu"))
    b.add(Conv2D(f"{prefix}_pw_conv", out_channels=out_channels, kernel=1, bias=False))
    b.add(BatchNorm(f"{prefix}_pw_bn"))
    return b.add(Activation(f"{prefix}_pw_relu"))


def inverted_residual(
    b: GraphBuilder,
    prefix: str,
    in_channels: int,
    out_channels: int,
    expand: int,
    stride: int = 1,
    after: Optional[str] = None,
) -> str:
    """MobileNetV2 inverted residual block (expansion → DW → projection)."""
    entry = after if after is not None else b.tail
    hidden = in_channels * expand
    cursor = entry
    if expand != 1:
        cursor = conv_bn_relu(b, f"{prefix}_expand", hidden, 1, after=entry)
    b.add(DepthwiseConv2D(f"{prefix}_dw", kernel=3, stride=stride, padding=1), after=cursor)
    b.add(BatchNorm(f"{prefix}_dw_bn"))
    b.add(Activation(f"{prefix}_dw_relu"))
    b.add(Conv2D(f"{prefix}_project", out_channels=out_channels, kernel=1, bias=False))
    proj = b.add(BatchNorm(f"{prefix}_project_bn"))
    if stride == 1 and in_channels == out_channels:
        return b.merge(Add(f"{prefix}_add"), [proj, entry])
    return proj


def inception_module(
    b: GraphBuilder,
    prefix: str,
    ch1: int,
    ch3_reduce: int,
    ch3: int,
    ch5_reduce: int,
    ch5: int,
    pool_proj: int,
    after: Optional[str] = None,
) -> str:
    """GoogLeNet/Inception-v1 module: four parallel branches + concat."""
    entry = after if after is not None else b.tail
    br1 = conv_bn_relu(b, f"{prefix}_b1", ch1, 1, after=entry)
    conv_bn_relu(b, f"{prefix}_b2r", ch3_reduce, 1, after=entry)
    br2 = conv_bn_relu(b, f"{prefix}_b2", ch3, 3, padding=1)
    conv_bn_relu(b, f"{prefix}_b3r", ch5_reduce, 1, after=entry)
    br3 = conv_bn_relu(b, f"{prefix}_b3", ch5, 5, padding=2)
    b.add(Pool(f"{prefix}_b4_pool", kernel=3, stride=1, padding=1), after=entry)
    br4 = conv_bn_relu(b, f"{prefix}_b4", pool_proj, 1)
    return b.merge(Concat(f"{prefix}_concat"), [br1, br2, br3, br4])
