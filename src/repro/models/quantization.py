"""Precision selection — the third surgery knob.

Beyond early exits and partitioning, deployments routinely *quantize*: run
the network (and ship its boundary activations) at reduced precision.  This
module models the three standard operating points.  Effects per level:

- **compute speedup** — effective throughput multiplier on both sides of the
  cut (uniform across devices; a simplification documented in DESIGN.md —
  real speedups vary per accelerator, but the *ordering* fp32 < fp16 < int8
  holds everywhere that matters);
- **wire scale** — boundary activations shrink with precision, directly
  cutting the transfer that partitioning tries to minimize;
- **accuracy delta** — absolute top-1 drop (post-training-quantization
  ballparks: fp16 is free, int8 costs ~1–2 points).

Quantization composes with exits/partitioning through
:class:`~repro.core.plan.SurgeryPlan`'s ``quantization`` field; the
enumeration in :mod:`repro.core.surgery` sweeps the requested levels and the
ablation bench A2 measures what the knob buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class QuantizationLevel:
    """One precision operating point."""

    name: str
    compute_speedup: float  # effective FLOP/s multiplier
    wire_scale: float  # boundary-activation size multiplier
    accuracy_delta: float  # absolute top-1 change (<= 0)

    def __post_init__(self) -> None:
        if self.compute_speedup < 1.0:
            raise ConfigError(f"{self.name}: speedup must be >= 1")
        if not (0.0 < self.wire_scale <= 1.0):
            raise ConfigError(f"{self.name}: wire scale must be in (0,1]")
        if self.accuracy_delta > 0.0:
            raise ConfigError(f"{self.name}: accuracy delta must be <= 0")


#: Registry of supported levels.
LEVELS: Dict[str, QuantizationLevel] = {
    "fp32": QuantizationLevel("fp32", compute_speedup=1.0, wire_scale=1.0, accuracy_delta=0.0),
    "fp16": QuantizationLevel("fp16", compute_speedup=1.8, wire_scale=0.5, accuracy_delta=-0.001),
    "int8": QuantizationLevel("int8", compute_speedup=3.2, wire_scale=0.25, accuracy_delta=-0.015),
}

#: Every level name, cheapest precision last.
ALL_LEVELS: Tuple[str, ...] = ("fp32", "fp16", "int8")


def quantization_level(name: str) -> QuantizationLevel:
    """Look up a level by name."""
    try:
        return LEVELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown quantization level {name!r}; available: {sorted(LEVELS)}"
        ) from None
