"""The multi-exit transform: attach side-branch classifiers to a backbone.

:func:`insert_exits` performs the *structural* half of model surgery — it
selects attach points among the backbone's valid cut points (evenly spaced in
cumulative FLOPs, BranchyNet-style) and synthesizes a small classifier branch
(global average pool → dense → softmax) at each.  The result is a
:class:`MultiExitModel` carrying, for every exit, the precomputed cost and
accuracy metadata the surgery optimizer consumes:

- cumulative backbone FLOPs up to the attach point,
- branch FLOPs and parameter counts,
- attach-point activation bytes (what crosses the network if we also cut there),
- marginal exit accuracy (from the backbone's :class:`AccuracyModel`) and the
  calibrated competence used by threshold semantics.

The *behavioural* half — choosing which exits to keep and their thresholds —
lives in :mod:`repro.core.surgery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError, PlanError
from repro.models.accuracy import AccuracyModel, profile_for
from repro.models.exits import DifficultyDistribution
from repro.models.graph import CutPoint, ModelGraph
from repro.models.layers import shape_bytes


@dataclass(frozen=True)
class ExitBranch:
    """One early exit: a classifier branch attached at a backbone cut point.

    ``cut_index`` indexes the backbone's ``cut_points`` list; the *final* exit
    is represented as a branch at the last cut point with zero branch cost.
    """

    name: str
    cut_index: int
    attach_node: str
    backbone_flops: int  # cumulative backbone FLOPs through the attach point
    branch_flops: int  # extra FLOPs of the side classifier itself
    branch_params: int
    attach_bytes: int  # activation size at the attach point
    depth_fraction: float
    accuracy: float  # marginal (all-samples) accuracy of this exit
    is_final: bool = False

    @property
    def total_flops(self) -> int:
        """FLOPs to produce this exit's prediction from the input."""
        return self.backbone_flops + self.branch_flops


class MultiExitModel:
    """A backbone :class:`ModelGraph` plus an ordered list of exits.

    Exits are sorted by depth; the last is always the backbone's own
    classifier (``is_final=True``).  Competences are calibrated once per
    (model, difficulty distribution) at construction.
    """

    def __init__(
        self,
        backbone: ModelGraph,
        exits: Sequence[ExitBranch],
        accuracy_model: AccuracyModel,
        difficulty: DifficultyDistribution,
        result_bytes: int = 4096,
    ) -> None:
        if not exits:
            raise ModelError(f"{backbone.name}: multi-exit model needs >= 1 exit")
        order = sorted(exits, key=lambda e: e.cut_index)
        if not order[-1].is_final:
            raise ModelError(f"{backbone.name}: deepest exit must be the final exit")
        if sum(e.is_final for e in order) != 1:
            raise ModelError(f"{backbone.name}: exactly one final exit required")
        indices = [e.cut_index for e in order]
        if len(set(indices)) != len(indices):
            raise ModelError(f"{backbone.name}: duplicate exit attach points {indices}")
        self.backbone = backbone
        self.exits: List[ExitBranch] = order
        self.accuracy_model = accuracy_model
        self.difficulty = difficulty
        #: bytes of a prediction shipped back to the device after a remote exit
        self.result_bytes = int(result_bytes)

        grid, weights = difficulty.grid()
        accs = np.array([e.accuracy for e in order])
        self._competences = accuracy_model.calibrate_competence(accs, grid, weights)

        cuts = backbone.cut_points
        #: cumulative backbone FLOPs at every cut point (partition search data)
        self.cut_flops = np.array([c.head_flops for c in cuts], dtype=float)
        #: boundary activation bytes at every cut point
        self.cut_bytes = np.array([c.boundary_bytes for c in cuts], dtype=float)

    # -- accessors -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.backbone.name

    @property
    def num_exits(self) -> int:
        return len(self.exits)

    @property
    def final_exit(self) -> ExitBranch:
        return self.exits[-1]

    @property
    def competences(self) -> np.ndarray:
        """Calibrated competence per exit (depth order)."""
        return self._competences.copy()

    @property
    def exit_cut_indices(self) -> np.ndarray:
        return np.array([e.cut_index for e in self.exits], dtype=int)

    @property
    def exit_total_flops(self) -> np.ndarray:
        return np.array([e.total_flops for e in self.exits], dtype=float)

    @property
    def exit_depth_fractions(self) -> np.ndarray:
        return np.array([e.depth_fraction for e in self.exits], dtype=float)

    @property
    def exit_accuracies(self) -> np.ndarray:
        return np.array([e.accuracy for e in self.exits], dtype=float)

    @property
    def input_bytes(self) -> int:
        return self.backbone.input_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiExitModel({self.name!r}, exits={self.num_exits})"


def _branch_cost(backbone: ModelGraph, attach_node: str, num_classes: int) -> Tuple[int, int]:
    """FLOPs and params of a GAP->Dense->Softmax side classifier at a node."""
    shape = backbone.output_shape_of(attach_node)
    if len(shape) == 3:
        c = shape[0]
        gap_flops = int(np.prod(shape))
        feat = c
    else:
        gap_flops = 0
        feat = int(np.prod(shape))
    dense_flops = 2 * feat * num_classes
    softmax_flops = 5 * num_classes
    params = feat * num_classes + num_classes
    return gap_flops + dense_flops + softmax_flops, params


def select_attach_points(
    backbone: ModelGraph, num_exits: int, min_depth: float = 0.05, max_depth: float = 0.85
) -> List[CutPoint]:
    """Pick ``num_exits`` early-exit attach points evenly spaced in FLOPs.

    Targets are equally spaced depth fractions within [min_depth, max_depth];
    each maps to the nearest distinct cut point.  The final exit is *not*
    among these — it is implied.
    """
    if num_exits < 0:
        raise PlanError(f"num_exits must be >= 0, got {num_exits}")
    cuts = backbone.cut_points
    interior = [c for c in cuts if 0.0 < c.depth_fraction < 1.0]
    if num_exits == 0 or not interior:
        return []
    fractions = np.array([c.depth_fraction for c in interior])
    targets = np.linspace(min_depth, max_depth, num_exits)
    chosen: List[CutPoint] = []
    used: set = set()
    for t in targets:
        order = np.argsort(np.abs(fractions - t))
        for j in order:
            if interior[j].index not in used:
                used.add(interior[j].index)
                chosen.append(interior[j])
                break
    chosen.sort(key=lambda c: c.index)
    return chosen


def insert_exits(
    backbone: ModelGraph,
    num_exits: int = 4,
    accuracy_model: Optional[AccuracyModel] = None,
    difficulty: Optional[DifficultyDistribution] = None,
    num_classes: int = 1000,
    attach_points: Optional[Sequence[str]] = None,
) -> MultiExitModel:
    """Attach ``num_exits`` early exits to ``backbone`` plus the final exit.

    ``attach_points`` (cut-point node names) overrides automatic selection.
    """
    acc_model = accuracy_model if accuracy_model is not None else profile_for(backbone.name)
    diff = difficulty if difficulty is not None else DifficultyDistribution()

    if attach_points is not None:
        cuts = [backbone.cut_by_name(n) for n in attach_points]
        for c in cuts:
            if c.depth_fraction >= 1.0:
                raise PlanError(f"attach point {c.name} is the final layer")
        cuts.sort(key=lambda c: c.index)
    else:
        cuts = select_attach_points(backbone, num_exits)

    exits: List[ExitBranch] = []
    for i, cut in enumerate(cuts):
        branch_flops, branch_params = _branch_cost(backbone, cut.name, num_classes)
        acc = float(acc_model.accuracy_at(cut.depth_fraction))
        exits.append(
            ExitBranch(
                name=f"exit{i}",
                cut_index=cut.index,
                attach_node=cut.name,
                backbone_flops=cut.head_flops,
                branch_flops=branch_flops,
                branch_params=branch_params,
                attach_bytes=cut.boundary_bytes,
                depth_fraction=cut.depth_fraction,
                accuracy=acc,
            )
        )
    last = backbone.cut_points[-1]
    exits.append(
        ExitBranch(
            name="final",
            cut_index=last.index,
            attach_node=last.name,
            backbone_flops=last.head_flops,
            branch_flops=0,
            branch_params=0,
            attach_bytes=last.boundary_bytes,
            depth_fraction=1.0,
            accuracy=acc_model.final_accuracy,
            is_final=True,
        )
    )
    return MultiExitModel(backbone, exits, acc_model, diff)
