"""DNN model substrate: layer algebra, model DAGs, zoo, and multi-exit transforms.

This package provides everything the optimizer needs to know about a DNN
*without running it*: per-layer FLOP counts, parameter counts, activation
tensor sizes (what crosses the network if we cut there), valid cut points of
the DAG, and — after the multi-exit transform — candidate early exits with
parametric accuracy and exit-rate models.

Public surface:

- :class:`~repro.models.layers.Layer` and concrete layer types
- :class:`~repro.models.graph.ModelGraph` — validated DAG with shape/FLOPs
  inference and cut-point enumeration
- :mod:`repro.models.zoo` — AlexNet, VGG, ResNet, MobileNet, Inception builders
- :class:`~repro.models.multiexit.MultiExitModel` — backbone + side exits
- :class:`~repro.models.accuracy.AccuracyModel` /
  :class:`~repro.models.exits.ExitPolicy` — accuracy & exit-rate semantics
"""

from repro.models.accuracy import AccuracyModel
from repro.models.exits import ExitPolicy, exit_probabilities
from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    Layer,
    LocalResponseNorm,
    Pool,
    Softmax,
)
from repro.models.multiexit import ExitBranch, MultiExitModel, insert_exits

__all__ = [
    "AccuracyModel",
    "Activation",
    "Add",
    "BatchNorm",
    "Concat",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "Dropout",
    "ExitBranch",
    "ExitPolicy",
    "Flatten",
    "GlobalAvgPool",
    "Input",
    "Layer",
    "LocalResponseNorm",
    "ModelGraph",
    "MultiExitModel",
    "Pool",
    "Softmax",
    "exit_probabilities",
    "insert_exits",
]
