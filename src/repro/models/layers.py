"""Layer algebra: shapes, FLOPs, parameters, and activation sizes.

Each layer type knows three things about itself, all as pure functions of the
input shape (no tensors are ever materialized):

- ``output_shape(in_shape)`` — shape algebra, raising :class:`ShapeError` on
  invalid inputs;
- ``flops(in_shape)`` — forward-pass cost in FLOPs, counting one multiply-add
  as **2 FLOPs** (the convention used by Neurosurgeon-class profilers);
- ``params()`` — learnable parameter count (drives weight-transfer costs for
  model provisioning, reported in model summaries).

Shapes are tuples: feature maps are ``(C, H, W)``; flattened vectors are
``(F,)``.  Activation size in bytes is ``prod(shape) * FLOAT32_BYTES`` — this
is exactly what crosses the network if the model is cut after the layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.errors import ShapeError
from repro.units import FLOAT32_BYTES

Shape = Tuple[int, ...]


def shape_elements(shape: Shape) -> int:
    """Number of scalar elements in a tensor of ``shape``."""
    return int(math.prod(shape))


def shape_bytes(shape: Shape) -> int:
    """Size in bytes of a float32 tensor of ``shape``."""
    return shape_elements(shape) * FLOAT32_BYTES


def _expect_chw(layer: "Layer", shape: Shape) -> Tuple[int, int, int]:
    if len(shape) != 3 or any(d <= 0 for d in shape):
        raise ShapeError(f"{layer.name}: expected (C,H,W) input, got {shape}")
    return shape  # type: ignore[return-value]


def conv_out_hw(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pool along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"kernel {kernel}/stride {stride}/padding {padding} collapses dim {size}"
        )
    return out


@dataclass(frozen=True)
class Layer:
    """Abstract base of all layers.

    ``name`` must be unique within a :class:`~repro.models.graph.ModelGraph`.
    Subclasses implement the three cost functions; merge layers (``Add``,
    ``Concat``) additionally accept multiple input shapes via
    ``merge_output_shape``.
    """

    name: str

    #: True for layers that combine several predecessor tensors.
    is_merge: bool = field(default=False, init=False, repr=False)

    def output_shape(self, in_shape: Shape) -> Shape:
        raise NotImplementedError

    def flops(self, in_shape: Shape) -> int:
        raise NotImplementedError

    def params(self) -> int:
        return 0

    def output_bytes(self, in_shape: Shape) -> int:
        """Bytes of the layer's output activation (float32)."""
        return shape_bytes(self.output_shape(in_shape))


@dataclass(frozen=True)
class Input(Layer):
    """Source node pinning the model's input shape (e.g. ``(3, 224, 224)``)."""

    shape: Shape = (3, 224, 224)

    def output_shape(self, in_shape: Shape) -> Shape:
        return tuple(self.shape)

    def flops(self, in_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Conv2D(Layer):
    """Standard 2-D convolution (square kernel)."""

    out_channels: int = 64
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    bias: bool = True

    def output_shape(self, in_shape: Shape) -> Shape:
        c, h, w = _expect_chw(self, in_shape)
        oh = conv_out_hw(h, self.kernel, self.stride, self.padding)
        ow = conv_out_hw(w, self.kernel, self.stride, self.padding)
        return (self.out_channels, oh, ow)

    def flops(self, in_shape: Shape) -> int:
        c, _, _ = _expect_chw(self, in_shape)
        _, oh, ow = self.output_shape(in_shape)
        macs = self.kernel * self.kernel * c * self.out_channels * oh * ow
        return 2 * macs

    def params(self) -> int:
        # in_channels is unknown statically here only if never bound; params
        # are computed by ModelGraph which passes the resolved input shape via
        # params_for. Keep a conservative 0 fallback for unbound use.
        return 0

    def params_for(self, in_shape: Shape) -> int:
        c, _, _ = _expect_chw(self, in_shape)
        p = self.kernel * self.kernel * c * self.out_channels
        return p + (self.out_channels if self.bias else 0)


@dataclass(frozen=True)
class DepthwiseConv2D(Layer):
    """Depthwise (per-channel) convolution, as in MobileNet."""

    kernel: int = 3
    stride: int = 1
    padding: int = 1

    def output_shape(self, in_shape: Shape) -> Shape:
        c, h, w = _expect_chw(self, in_shape)
        oh = conv_out_hw(h, self.kernel, self.stride, self.padding)
        ow = conv_out_hw(w, self.kernel, self.stride, self.padding)
        return (c, oh, ow)

    def flops(self, in_shape: Shape) -> int:
        c, _, _ = _expect_chw(self, in_shape)
        _, oh, ow = self.output_shape(in_shape)
        return 2 * self.kernel * self.kernel * c * oh * ow

    def params_for(self, in_shape: Shape) -> int:
        c, _, _ = _expect_chw(self, in_shape)
        return self.kernel * self.kernel * c + c


@dataclass(frozen=True)
class Pool(Layer):
    """Max or average pooling."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0
    kind: str = "max"  # "max" | "avg"

    def output_shape(self, in_shape: Shape) -> Shape:
        c, h, w = _expect_chw(self, in_shape)
        oh = conv_out_hw(h, self.kernel, self.stride, self.padding)
        ow = conv_out_hw(w, self.kernel, self.stride, self.padding)
        return (c, oh, ow)

    def flops(self, in_shape: Shape) -> int:
        out = self.output_shape(in_shape)
        # one comparison/add per window element per output element
        return self.kernel * self.kernel * shape_elements(out)


@dataclass(frozen=True)
class GlobalAvgPool(Layer):
    """Global average pooling: (C,H,W) -> (C,)."""

    def output_shape(self, in_shape: Shape) -> Shape:
        c, _, _ = _expect_chw(self, in_shape)
        return (c,)

    def flops(self, in_shape: Shape) -> int:
        return shape_elements(in_shape)


@dataclass(frozen=True)
class Flatten(Layer):
    """Reshape to a vector; zero cost."""

    def output_shape(self, in_shape: Shape) -> Shape:
        return (shape_elements(in_shape),)

    def flops(self, in_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Dense(Layer):
    """Fully connected layer on a flat vector."""

    out_features: int = 1000
    bias: bool = True

    def output_shape(self, in_shape: Shape) -> Shape:
        if len(in_shape) != 1:
            raise ShapeError(f"{self.name}: Dense expects a flat input, got {in_shape}")
        return (self.out_features,)

    def flops(self, in_shape: Shape) -> int:
        (f,) = in_shape
        return 2 * f * self.out_features

    def params_for(self, in_shape: Shape) -> int:
        (f,) = in_shape
        return f * self.out_features + (self.out_features if self.bias else 0)


@dataclass(frozen=True)
class Activation(Layer):
    """Elementwise nonlinearity (ReLU, ReLU6, sigmoid...); 1 FLOP/element."""

    kind: str = "relu"

    def output_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return shape_elements(in_shape)


@dataclass(frozen=True)
class BatchNorm(Layer):
    """Batch normalization (inference mode: scale + shift)."""

    def output_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return 2 * shape_elements(in_shape)

    def params_for(self, in_shape: Shape) -> int:
        return 2 * in_shape[0]


@dataclass(frozen=True)
class LocalResponseNorm(Layer):
    """AlexNet-style LRN; ~5 FLOPs per element."""

    def output_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return 5 * shape_elements(in_shape)


@dataclass(frozen=True)
class Dropout(Layer):
    """Dropout — a no-op at inference time."""

    rate: float = 0.5

    def output_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Softmax(Layer):
    """Softmax over a flat vector; ~5 FLOPs/element (exp + sum + div)."""

    def output_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return 5 * shape_elements(in_shape)


@dataclass(frozen=True)
class Add(Layer):
    """Elementwise sum of N equal-shaped inputs (residual connections)."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "is_merge", True)

    def merge_output_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if not in_shapes:
            raise ShapeError(f"{self.name}: Add needs at least one input")
        first = in_shapes[0]
        for s in in_shapes[1:]:
            if tuple(s) != tuple(first):
                raise ShapeError(f"{self.name}: Add shape mismatch {in_shapes}")
        return tuple(first)

    def output_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def merge_flops(self, in_shapes: Sequence[Shape]) -> int:
        return (len(in_shapes) - 1) * shape_elements(in_shapes[0])

    def flops(self, in_shape: Shape) -> int:
        return shape_elements(in_shape)


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation of (C,H,W) inputs (Inception modules)."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "is_merge", True)

    def merge_output_shape(self, in_shapes: Sequence[Shape]) -> Shape:
        if not in_shapes:
            raise ShapeError(f"{self.name}: Concat needs at least one input")
        hw = None
        channels = 0
        for s in in_shapes:
            c, h, w = _expect_chw(self, tuple(s))
            if hw is None:
                hw = (h, w)
            elif hw != (h, w):
                raise ShapeError(f"{self.name}: Concat spatial mismatch {in_shapes}")
            channels += c
        assert hw is not None
        return (channels, hw[0], hw[1])

    def output_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def merge_flops(self, in_shapes: Sequence[Shape]) -> int:
        return 0  # pure memory movement; negligible under our cost model

    def flops(self, in_shape: Shape) -> int:
        return 0


def layer_params(layer: Layer, in_shape: Shape) -> int:
    """Parameter count of ``layer`` given its (resolved) input shape."""
    fn = getattr(layer, "params_for", None)
    if fn is not None:
        return int(fn(in_shape))
    return int(layer.params())
