"""Exit-policy semantics: thresholds → exit rates and conditional accuracy.

A multi-exit model is operated by an :class:`ExitPolicy`: the ordered set of
*kept* exits and a confidence threshold per kept exit (the final exit always
has threshold 0 — every remaining sample leaves there).  At inference time a
sample leaves at the first kept exit whose confidence clears its threshold.

We model confidence at an exit with competence ``c`` on an input of difficulty
``d`` as ``conf = sigmoid(g * (c - d))`` with gate sharpness ``g``.  Because
``conf`` is strictly decreasing in ``d``, "confidence >= t" is equivalent to
"difficulty <= d*(t)" where

    d*(t) = c - logit(t) / g

so a policy induces per-exit difficulty cutoffs, and exit rates / conditional
accuracies are one-dimensional integrals over the difficulty distribution.
These are evaluated by fixed-grid quadrature (vectorized, ~µs per policy),
which is what makes enumerating thousands of candidate policies in the
surgery optimizer affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, PlanError
from repro.models.accuracy import AccuracyModel

#: Quadrature resolution over the difficulty axis [0, 1].
DIFFICULTY_GRID_POINTS = 512

#: Gate sharpness g of the confidence sigmoid (how crisply confidence
#: separates easy from hard inputs).  Held fixed library-wide.
GATE_SHARPNESS = 8.0

#: Quadrature grids per (alpha, beta, points); see DifficultyDistribution.grid.
_GRID_CACHE: dict = {}


@dataclass(frozen=True)
class DifficultyDistribution:
    """Beta-distributed input difficulty on [0, 1].

    ``alpha < beta`` skews the workload easy (most inputs exit early, as with
    mostly-empty surveillance frames); ``alpha > beta`` skews it hard.
    """

    alpha: float = 2.0
    beta: float = 5.0

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ConfigError(f"Beta parameters must be positive: {self}")

    def grid(self, n: int = DIFFICULTY_GRID_POINTS) -> Tuple[np.ndarray, np.ndarray]:
        """Midpoint-rule quadrature nodes and normalized weights.

        Memoized per (alpha, beta, n): the Beta pdf evaluation dominates the
        cost of every exit-rate integral, and the same distribution is queried
        thousands of times during candidate enumeration and threshold
        refinement.  The returned arrays are shared and marked read-only.
        """
        key = (self.alpha, self.beta, n)
        cached = _GRID_CACHE.get(key)
        if cached is not None:
            return cached
        edges = np.linspace(0.0, 1.0, n + 1)
        mid = 0.5 * (edges[:-1] + edges[1:])
        from scipy import stats

        w = stats.beta.pdf(mid, self.alpha, self.beta)
        total = w.sum()
        if total <= 0:  # pragma: no cover - defensive
            raise ConfigError(f"degenerate difficulty distribution {self}")
        w = w / total
        mid.setflags(write=False)
        w.setflags(write=False)
        _GRID_CACHE[key] = (mid, w)
        return mid, w

    def cdf(self, x: np.ndarray | float) -> np.ndarray:
        from scipy import stats

        return stats.beta.cdf(np.asarray(x, dtype=float), self.alpha, self.beta)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw difficulties for ``size`` simulated inference requests."""
        return rng.beta(self.alpha, self.beta, size=size)


def _logit(t: np.ndarray) -> np.ndarray:
    t = np.clip(t, 1e-12, 1 - 1e-12)
    return np.log(t / (1.0 - t))


@dataclass(frozen=True)
class ExitPolicy:
    """Thresholds for an ordered set of kept exits.

    ``thresholds[k]`` is the confidence threshold of the k-th *kept* exit in
    depth order; the last entry must be 0 (the mandatory final exit of the
    kept set).  A threshold of 1 effectively disables an exit; thresholds are
    in [0, 1).
    """

    thresholds: Tuple[float, ...]

    def __post_init__(self) -> None:
        t = np.asarray(self.thresholds, dtype=float)
        if t.size == 0:
            raise PlanError("ExitPolicy needs at least one exit")
        if np.any(t < 0.0) or np.any(t >= 1.0):
            raise PlanError(f"thresholds must lie in [0,1): {self.thresholds}")
        if t[-1] != 0.0:
            raise PlanError(
                f"last kept exit must be unconditional (threshold 0): {self.thresholds}"
            )

    @property
    def num_exits(self) -> int:
        return len(self.thresholds)


def difficulty_cutoffs(
    competences: np.ndarray, thresholds: np.ndarray, gate_sharpness: float = GATE_SHARPNESS
) -> np.ndarray:
    """Per-exit difficulty cutoffs d* (exit fires iff difficulty <= d*).

    A threshold of exactly 0 yields ``+inf`` (the exit accepts everything).
    """
    thresholds = np.asarray(thresholds, dtype=float)
    competences = np.asarray(competences, dtype=float)
    cut = competences - _logit(thresholds) / gate_sharpness
    return np.where(thresholds <= 0.0, np.inf, cut)


def exit_probabilities(
    competences: Sequence[float],
    thresholds: Sequence[float],
    difficulty: DifficultyDistribution,
    accuracy_model: AccuracyModel,
    gate_sharpness: float = GATE_SHARPNESS,
    grid_points: int = DIFFICULTY_GRID_POINTS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exit rates and conditional accuracies of a policy.

    Parameters
    ----------
    competences:
        Calibrated competence of each kept exit, depth order (see
        :meth:`AccuracyModel.calibrate_competence`).
    thresholds:
        Confidence threshold per kept exit; last must be 0.
    difficulty:
        Deployment input-difficulty distribution.
    accuracy_model:
        Provides P(correct | difficulty, competence).

    Returns
    -------
    (p, acc):
        ``p[k]``  — probability a sample exits at kept exit k (sums to 1);
        ``acc[k]`` — P(correct | exited at k).  For ``p[k] = 0`` the
        conditional accuracy is reported as the exit's marginal accuracy.
    """
    comp = np.asarray(competences, dtype=float)
    thr = np.asarray(thresholds, dtype=float)
    if comp.shape != thr.shape:
        raise PlanError(f"competences {comp.shape} vs thresholds {thr.shape} mismatch")
    if thr[-1] != 0.0:
        raise PlanError("final kept exit must have threshold 0")

    grid, weights = difficulty.grid(grid_points)
    cutoffs = difficulty_cutoffs(comp, thr, gate_sharpness)  # (K,)
    # fires[k, d] — exit k would accept difficulty d
    fires = grid[None, :] <= cutoffs[:, None]
    # first-fire indicator: k fires and no earlier exit fired
    earlier = np.zeros(grid.shape, dtype=bool)
    p = np.empty(comp.shape, dtype=float)
    acc = np.empty(comp.shape, dtype=float)
    correct = accuracy_model.correctness(comp, grid)  # (K, D)
    for k in range(comp.size):
        takes = fires[k] & ~earlier
        mass = float(weights[takes].sum())
        p[k] = mass
        if mass > 0:
            acc[k] = float((correct[k][takes] * weights[takes]).sum() / mass)
        else:
            acc[k] = float(correct[k] @ weights)
        earlier |= fires[k]
    # final exit has cutoff +inf, so total mass is exactly 1 up to quadrature
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-9):  # pragma: no cover - invariant
        raise PlanError(f"exit probabilities sum to {total}, expected 1")
    p /= total
    return p, acc


def expected_accuracy(p: np.ndarray, acc: np.ndarray) -> float:
    """Workload accuracy of a policy: exit-rate-weighted conditional accuracy."""
    return float(np.dot(p, acc))


def expected_exit_depth(p: np.ndarray, depth_fractions: np.ndarray) -> float:
    """Average backbone depth fraction at which samples leave."""
    return float(np.dot(p, np.asarray(depth_fractions, dtype=float)))
