"""Validated model DAG with shape/FLOPs inference and cut-point enumeration.

A :class:`ModelGraph` is an immutable single-source/single-sink DAG of
:class:`~repro.models.layers.Layer` objects.  On construction it

1. validates structure (acyclic, one ``Input`` source, one sink, arity of
   merge vs. chain layers);
2. infers every node's output shape, FLOPs, activation bytes, and parameter
   count by topological propagation;
3. enumerates the model's **cut points** — the nodes that dominate the sink,
   i.e. positions where slicing the network yields a head producing exactly
   one tensor to ship.  This makes partitioning correct for non-chain models
   (ResNet skip connections, Inception branches): you can only cut at block
   boundaries, which is precisely what the dominator computation yields.

The optimizer consumes only the derived arrays (cumulative head FLOPs and
boundary activation bytes per cut point), so all graph work happens once per
model, not per optimization step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import ModelError
from repro.models.layers import Input, Layer, Shape, layer_params, shape_bytes


@dataclass(frozen=True)
class CutPoint:
    """A valid partition position: cut *after* node ``name``.

    Attributes
    ----------
    name:
        Node after which the network is cut.
    index:
        Position in the model's topologically ordered cut-point list
        (0 = cut after the input, i.e. everything remote).
    head_flops:
        Total FLOPs of the head (all layers at or before the cut).
    boundary_bytes:
        Bytes of the single activation tensor crossing the cut.
    depth_fraction:
        ``head_flops / total_flops`` — used by the accuracy model.
    """

    name: str
    index: int
    head_flops: int
    boundary_bytes: int
    depth_fraction: float


class ModelGraph:
    """Immutable layer DAG with derived cost metadata.

    Parameters
    ----------
    name:
        Model identifier (e.g. ``"vgg16"``).
    layers:
        Mapping node name -> :class:`Layer`.
    edges:
        Iterable of ``(src, dst)`` node-name pairs.
    """

    def __init__(
        self,
        name: str,
        layers: Mapping[str, Layer],
        edges: Iterable[Tuple[str, str]],
    ) -> None:
        self.name = name
        self._g = nx.DiGraph()
        for node, layer in layers.items():
            if layer.name != node:
                raise ModelError(
                    f"{name}: node key {node!r} != layer.name {layer.name!r}"
                )
            self._g.add_node(node, layer=layer)
        for src, dst in edges:
            if src not in self._g or dst not in self._g:
                raise ModelError(f"{name}: edge ({src},{dst}) references unknown node")
            self._g.add_edge(src, dst)
        self._validate()
        self._infer()
        self._cuts = self._compute_cut_points()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def chain(cls, name: str, layers: Sequence[Layer]) -> "ModelGraph":
        """Build a purely sequential model from an ordered layer list."""
        if not layers or not isinstance(layers[0], Input):
            raise ModelError(f"{name}: chain must start with an Input layer")
        mapping = {lyr.name: lyr for lyr in layers}
        if len(mapping) != len(layers):
            raise ModelError(f"{name}: duplicate layer names in chain")
        edges = [(layers[i].name, layers[i + 1].name) for i in range(len(layers) - 1)]
        return cls(name, mapping, edges)

    # -- validation / inference ----------------------------------------------

    def _validate(self) -> None:
        g = self._g
        if g.number_of_nodes() == 0:
            raise ModelError(f"{self.name}: empty model")
        if not nx.is_directed_acyclic_graph(g):
            raise ModelError(f"{self.name}: model graph has a cycle")
        sources = [n for n in g if g.in_degree(n) == 0]
        sinks = [n for n in g if g.out_degree(n) == 0]
        if len(sources) != 1:
            raise ModelError(f"{self.name}: expected exactly 1 source, got {sources}")
        if len(sinks) != 1:
            raise ModelError(f"{self.name}: expected exactly 1 sink, got {sinks}")
        self._source, self._sink = sources[0], sinks[0]
        if not isinstance(g.nodes[self._source]["layer"], Input):
            raise ModelError(f"{self.name}: source {self._source} is not an Input layer")
        for n in g:
            layer: Layer = g.nodes[n]["layer"]
            indeg = g.in_degree(n)
            if isinstance(layer, Input):
                if indeg != 0:
                    raise ModelError(f"{self.name}: Input {n} has predecessors")
            elif layer.is_merge:
                if indeg < 2:
                    raise ModelError(
                        f"{self.name}: merge layer {n} has {indeg} input(s); needs >= 2"
                    )
            elif indeg != 1:
                raise ModelError(
                    f"{self.name}: layer {n} has {indeg} inputs; non-merge layers take 1"
                )

    def _infer(self) -> None:
        g = self._g
        self._topo: List[str] = list(nx.topological_sort(g))
        self._shape: Dict[str, Shape] = {}
        self._flops: Dict[str, int] = {}
        self._params: Dict[str, int] = {}
        self._out_bytes: Dict[str, int] = {}
        for n in self._topo:
            layer: Layer = g.nodes[n]["layer"]
            preds = list(g.predecessors(n))
            if isinstance(layer, Input):
                out = layer.output_shape(())
                fl = 0
                pr = 0
            elif layer.is_merge:
                in_shapes = [self._shape[p] for p in preds]
                out = layer.merge_output_shape(in_shapes)  # type: ignore[attr-defined]
                fl = layer.merge_flops(in_shapes)  # type: ignore[attr-defined]
                pr = 0
            else:
                in_shape = self._shape[preds[0]]
                out = layer.output_shape(in_shape)
                fl = layer.flops(in_shape)
                pr = layer_params(layer, in_shape)
            self._shape[n] = tuple(out)
            self._flops[n] = int(fl)
            self._params[n] = int(pr)
            self._out_bytes[n] = shape_bytes(tuple(out))
        self._total_flops = sum(self._flops.values())
        self._total_params = sum(self._params.values())

    def _compute_cut_points(self) -> List[CutPoint]:
        idom = nx.immediate_dominators(self._g, self._source)
        # Walk the dominator chain of the sink up to the source: these are all
        # nodes through which every input->output path passes.
        chain = [self._sink]
        while chain[-1] != self._source:
            chain.append(idom[chain[-1]])
        chain.reverse()  # source .. sink in dominance (= topological) order
        cuts: List[CutPoint] = []
        anc_cache: Dict[str, set] = {}
        for idx, node in enumerate(chain):
            ancestors = nx.ancestors(self._g, node)
            anc_cache[node] = ancestors
            head_flops = self._flops[node] + sum(self._flops[a] for a in ancestors)
            cuts.append(
                CutPoint(
                    name=node,
                    index=idx,
                    head_flops=int(head_flops),
                    boundary_bytes=self._out_bytes[node],
                    depth_fraction=(
                        head_flops / self._total_flops if self._total_flops else 0.0
                    ),
                )
            )
        self._head_nodes = {
            node: anc_cache[node] | {node} for node in (c.name for c in cuts)
        }
        return cuts

    # -- public accessors ------------------------------------------------------

    @property
    def source(self) -> str:
        """Name of the unique Input node."""
        return self._source

    @property
    def sink(self) -> str:
        """Name of the unique output node."""
        return self._sink

    @property
    def input_shape(self) -> Shape:
        return self._shape[self._source]

    @property
    def input_bytes(self) -> int:
        """Bytes of the raw input tensor (what device->edge full offload ships)."""
        return self._out_bytes[self._source]

    @property
    def total_flops(self) -> int:
        return self._total_flops

    @property
    def total_params(self) -> int:
        return self._total_params

    @property
    def num_layers(self) -> int:
        return self._g.number_of_nodes()

    @property
    def topological_order(self) -> List[str]:
        return list(self._topo)

    @property
    def cut_points(self) -> List[CutPoint]:
        """All valid cut points, topologically ordered (input first, sink last)."""
        return list(self._cuts)

    def layer(self, node: str) -> Layer:
        return self._g.nodes[node]["layer"]

    def output_shape_of(self, node: str) -> Shape:
        return self._shape[node]

    def flops_of(self, node: str) -> int:
        return self._flops[node]

    def params_of(self, node: str) -> int:
        return self._params[node]

    def output_bytes_of(self, node: str) -> int:
        return self._out_bytes[node]

    def predecessors(self, node: str) -> List[str]:
        return list(self._g.predecessors(node))

    def successors(self, node: str) -> List[str]:
        return list(self._g.successors(node))

    def head_nodes(self, cut: str) -> set:
        """All nodes executed by the head when cutting after ``cut``."""
        if cut not in self._head_nodes:
            raise ModelError(f"{self.name}: {cut!r} is not a valid cut point")
        return set(self._head_nodes[cut])

    def cut_by_name(self, name: str) -> CutPoint:
        for c in self._cuts:
            if c.name == name:
                return c
        raise ModelError(f"{self.name}: {name!r} is not a valid cut point")

    def summary(self) -> str:
        """Human-readable per-layer table (name, type, out shape, MFLOPs, KiB)."""
        lines = [
            f"Model {self.name}: {self.num_layers} layers, "
            f"{self._total_flops / 1e9:.2f} GFLOPs, "
            f"{self._total_params / 1e6:.2f} M params, "
            f"{len(self._cuts)} cut points"
        ]
        header = f"{'layer':<24}{'type':<18}{'out shape':<18}{'MFLOPs':>10}{'out KiB':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for n in self._topo:
            layer = self.layer(n)
            lines.append(
                f"{n:<24}{type(layer).__name__:<18}"
                f"{str(self._shape[n]):<18}"
                f"{self._flops[n] / 1e6:>10.2f}"
                f"{self._out_bytes[n] / 1024:>10.1f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelGraph({self.name!r}, layers={self.num_layers}, "
            f"gflops={self._total_flops / 1e9:.2f})"
        )
