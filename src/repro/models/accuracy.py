"""Parametric accuracy semantics for (multi-exit) DNNs.

The optimizer never runs a trained network; it consumes *accuracy profiles*.
We model the accuracy of an exit attached at depth fraction ``f`` (fraction of
backbone FLOPs executed) with a saturating exponential

    acc(f) = final - (final - base) * exp(-sharpness * f)

which matches the published exit-accuracy curves of BranchyNet / MSDNet-class
models: steep gains early, saturation near the full-depth accuracy.  ``base``
is the accuracy of a hypothetical depth-0 classifier (roughly, logistic
regression on raw pixels) and ``final`` the full model's top-1 accuracy.

The same object also provides the *per-difficulty correctness probability*

    P(correct | difficulty d, exit at depth f) = sigmoid(s * (c(f) - d))

where the competence ``c(f)`` is calibrated (by bisection) so that the
difficulty-averaged correctness equals ``acc(f)``.  This is what couples exit
*thresholds* to *conditional* accuracy: raising a threshold keeps only easy
samples at an exit, and easy samples are more often correct.  See
:mod:`repro.models.exits` for the integration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass(frozen=True)
class AccuracyModel:
    """Accuracy profile of one backbone architecture.

    Parameters
    ----------
    final_accuracy:
        Top-1 accuracy of the unmodified full-depth model, in (0, 1].
    base_accuracy:
        Accuracy of a depth-0 classifier; must be < ``final_accuracy``.
    sharpness:
        Rate of the saturating exponential; larger = accuracy saturates at
        shallower depth (typical published curves: 2–5).
    difficulty_sensitivity:
        Slope ``s`` of the per-difficulty correctness sigmoid; larger =
        correctness depends more strongly on input difficulty.
    """

    final_accuracy: float = 0.76
    base_accuracy: float = 0.25
    sharpness: float = 3.0
    difficulty_sensitivity: float = 6.0

    def __post_init__(self) -> None:
        if not (0.0 < self.final_accuracy <= 1.0):
            raise ConfigError(f"final_accuracy must be in (0,1], got {self.final_accuracy}")
        if not (0.0 <= self.base_accuracy < self.final_accuracy):
            raise ConfigError(
                "base_accuracy must be in [0, final_accuracy); got "
                f"{self.base_accuracy} vs {self.final_accuracy}"
            )
        if self.sharpness <= 0 or self.difficulty_sensitivity <= 0:
            raise ConfigError("sharpness and difficulty_sensitivity must be positive")

    def accuracy_at(self, depth_fraction: np.ndarray | float) -> np.ndarray:
        """Average accuracy of an exit at the given backbone depth fraction(s)."""
        f = np.asarray(depth_fraction, dtype=float)
        if np.any(f < -1e-9) or np.any(f > 1.0 + 1e-9):
            raise ConfigError(f"depth_fraction outside [0,1]: {f}")
        acc = self.final_accuracy - (self.final_accuracy - self.base_accuracy) * np.exp(
            -self.sharpness * np.clip(f, 0.0, 1.0)
        )
        return acc

    def correctness(
        self, competence: np.ndarray, difficulty: np.ndarray
    ) -> np.ndarray:
        """P(correct | difficulty, competence); broadcasts its arguments."""
        s = self.difficulty_sensitivity
        return sigmoid(s * (np.asarray(competence)[..., None] - np.asarray(difficulty)))

    def calibrate_competence(
        self,
        target_accuracy: np.ndarray,
        difficulty_grid: np.ndarray,
        difficulty_weights: np.ndarray,
    ) -> np.ndarray:
        """Find competences ``c`` with ``E_d[sigmoid(s(c-d))] = target_accuracy``.

        ``difficulty_grid``/``difficulty_weights`` are quadrature nodes and
        normalized weights of the deployment difficulty distribution.  The
        expectation is monotone increasing in ``c``, so vectorized bisection
        converges geometrically; 60 iterations ≈ 1e-18 bracket width.
        """
        target = np.asarray(target_accuracy, dtype=float)
        if np.any(target <= 0) or np.any(target >= 1):
            raise ConfigError(f"target accuracies must lie strictly in (0,1): {target}")
        lo = np.full(target.shape, -20.0)
        hi = np.full(target.shape, 21.0)
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            got = self.correctness(mid, difficulty_grid) @ difficulty_weights
            too_low = got < target
            lo = np.where(too_low, mid, lo)
            hi = np.where(too_low, hi, mid)
        return 0.5 * (lo + hi)


#: Published-ballpark accuracy profiles per zoo model (ImageNet top-1).
PROFILES = {
    "alexnet": AccuracyModel(final_accuracy=0.565, base_accuracy=0.10, sharpness=3.2),
    "vgg11": AccuracyModel(final_accuracy=0.690, base_accuracy=0.12, sharpness=2.8),
    "vgg16": AccuracyModel(final_accuracy=0.715, base_accuracy=0.12, sharpness=2.6),
    "vgg19": AccuracyModel(final_accuracy=0.724, base_accuracy=0.12, sharpness=2.5),
    "resnet18": AccuracyModel(final_accuracy=0.698, base_accuracy=0.15, sharpness=3.0),
    "resnet34": AccuracyModel(final_accuracy=0.733, base_accuracy=0.15, sharpness=2.8),
    "resnet50": AccuracyModel(final_accuracy=0.761, base_accuracy=0.15, sharpness=2.7),
    "mobilenet_v1": AccuracyModel(final_accuracy=0.706, base_accuracy=0.14, sharpness=3.1),
    "mobilenet_v2": AccuracyModel(final_accuracy=0.718, base_accuracy=0.14, sharpness=3.0),
    "inception_v1": AccuracyModel(final_accuracy=0.698, base_accuracy=0.13, sharpness=2.9),
    "squeezenet": AccuracyModel(final_accuracy=0.583, base_accuracy=0.11, sharpness=3.3),
    "densenet121": AccuracyModel(final_accuracy=0.745, base_accuracy=0.15, sharpness=2.8),
}


def profile_for(model_name: str) -> AccuracyModel:
    """Accuracy profile for a zoo model, with a generic fallback."""
    return PROFILES.get(model_name, AccuracyModel())
