"""DenseNet-121 (Huang et al., 2017).

Dense connectivity — every layer's input is the concatenation of all earlier
feature maps in its block — makes DenseNets the adversarial case for DNN
partitioning: the accumulated feature map *is* a valid single-tensor cut
after every dense layer, but its size grows with depth inside a block, so
the only cuts that ship a *small* boundary are the compressing transition
layers.  Including it keeps the optimizer honest about models where most
cut points exist but are uneconomical.
"""

from __future__ import annotations

from repro.models.builders import GraphBuilder, conv_bn_relu
from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    GlobalAvgPool,
    Pool,
    Softmax,
)

#: Dense layers per block for DenseNet-121.
_BLOCKS = (6, 12, 24, 16)
_GROWTH = 32


def _dense_layer(b: GraphBuilder, name: str, state: str, growth: int) -> str:
    """BN-ReLU-Conv1x1(4k)-BN-ReLU-Conv3x3(k), concatenated onto ``state``."""
    b.add(BatchNorm(f"{name}_bn1"), after=state)
    b.add(Activation(f"{name}_relu1"))
    b.add(Conv2D(f"{name}_conv1", out_channels=4 * growth, kernel=1, bias=False))
    b.add(BatchNorm(f"{name}_bn2"))
    b.add(Activation(f"{name}_relu2"))
    new = b.add(Conv2D(f"{name}_conv2", out_channels=growth, kernel=3, padding=1, bias=False))
    return b.merge(Concat(f"{name}_cat"), [state, new])


def _transition(b: GraphBuilder, name: str, state: str, out_channels: int) -> str:
    """BN-ReLU-Conv1x1(compress)-AvgPool2: the only cut points mid-network."""
    b.add(BatchNorm(f"{name}_bn"), after=state)
    b.add(Activation(f"{name}_relu"))
    b.add(Conv2D(f"{name}_conv", out_channels=out_channels, kernel=1, bias=False))
    return b.add(Pool(f"{name}_pool", kernel=2, stride=2, kind="avg"))


def build_densenet121(num_classes: int = 1000) -> ModelGraph:
    """DenseNet-121; ~5.7 GFLOPs, ~8 M params."""
    b = GraphBuilder("densenet121", (3, 224, 224))
    conv_bn_relu(b, "stem", 64, 7, stride=2, padding=3)
    state = b.add(Pool("stem_pool", kernel=3, stride=2, padding=1))
    channels = 64
    for block_idx, n_layers in enumerate(_BLOCKS, 1):
        for l in range(n_layers):
            state = _dense_layer(b, f"b{block_idx}_l{l}", state, _GROWTH)
            channels += _GROWTH
        if block_idx < len(_BLOCKS):
            channels //= 2
            state = _transition(b, f"trans{block_idx}", state, channels)
    b.add(BatchNorm("head_bn"), after=state)
    b.add(Activation("head_relu"))
    b.add(GlobalAvgPool("gap"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("softmax"))
    return b.build()
