"""Model zoo: reference architectures used throughout the evaluation.

Every builder returns a fresh :class:`~repro.models.graph.ModelGraph` with
ImageNet-scale input ``(3, 224, 224)`` and a 1000-way classifier head (unless
noted).  FLOP/param totals land within a few percent of published numbers —
close enough that latency profiles and partition tradeoffs are realistic.

Use :func:`build` with a registry name, or call the per-architecture builders
directly for custom widths/depths.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ModelError
from repro.models.graph import ModelGraph
from repro.models.zoo.alexnet import build_alexnet
from repro.models.zoo.densenet import build_densenet121
from repro.models.zoo.inception import build_inception_v1
from repro.models.zoo.mobilenet import build_mobilenet_v1, build_mobilenet_v2
from repro.models.zoo.resnet import build_resnet
from repro.models.zoo.squeezenet import build_squeezenet

_REGISTRY: Dict[str, Callable[[], ModelGraph]] = {}


def _register(name: str, fn: Callable[[], ModelGraph]) -> None:
    _REGISTRY[name] = fn


def available_models() -> List[str]:
    """Names accepted by :func:`build`, sorted."""
    return sorted(_REGISTRY)


def build(name: str) -> ModelGraph:
    """Build a zoo model by registry name (e.g. ``"resnet18"``)."""
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    return fn()


# imported late to avoid a cycle through this module's registry helpers
from repro.models.zoo.vgg import build_vgg  # noqa: E402

_register("alexnet", build_alexnet)
_register("vgg11", lambda: build_vgg(11))
_register("vgg16", lambda: build_vgg(16))
_register("vgg19", lambda: build_vgg(19))
_register("resnet18", lambda: build_resnet(18))
_register("resnet34", lambda: build_resnet(34))
_register("resnet50", lambda: build_resnet(50))
_register("mobilenet_v1", build_mobilenet_v1)
_register("mobilenet_v2", build_mobilenet_v2)
_register("inception_v1", build_inception_v1)
_register("squeezenet", build_squeezenet)
_register("densenet121", build_densenet121)

__all__ = [
    "available_models",
    "build",
    "build_alexnet",
    "build_densenet121",
    "build_inception_v1",
    "build_mobilenet_v1",
    "build_mobilenet_v2",
    "build_resnet",
    "build_squeezenet",
    "build_vgg",
]
