"""MobileNet V1/V2 (Howard et al., 2017; Sandler et al., 2018).

The lightweight end of the zoo (~0.6–1.1 GFLOPs): the models where device-only
execution is competitive and joint optimization must *not* blindly offload —
a key sanity check for the crossover behaviour in experiment E2.
"""

from __future__ import annotations

from repro.models.builders import (
    GraphBuilder,
    conv_bn_relu,
    inverted_residual,
    separable_block,
)
from repro.models.graph import ModelGraph
from repro.models.layers import Dense, GlobalAvgPool, Softmax

#: MobileNetV1 body: (output channels, stride) per depthwise-separable block.
_V1_BLOCKS = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
]

#: MobileNetV2 body: (expansion, out channels, repeats, first-stride).
_V2_BLOCKS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def build_mobilenet_v1(num_classes: int = 1000) -> ModelGraph:
    """MobileNetV1 (width 1.0); ~1.1 GFLOPs, ~4.2 M params."""
    b = GraphBuilder("mobilenet_v1", (3, 224, 224))
    conv_bn_relu(b, "stem", 32, 3, stride=2, padding=1)
    for i, (ch, stride) in enumerate(_V1_BLOCKS):
        separable_block(b, f"sep{i}", ch, stride=stride)
    b.add(GlobalAvgPool("gap"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("softmax"))
    return b.build()


def build_mobilenet_v2(num_classes: int = 1000) -> ModelGraph:
    """MobileNetV2 (width 1.0); ~0.6 GFLOPs, ~3.5 M params."""
    b = GraphBuilder("mobilenet_v2", (3, 224, 224))
    conv_bn_relu(b, "stem", 32, 3, stride=2, padding=1)
    in_ch = 32
    idx = 0
    for expand, out_ch, repeats, first_stride in _V2_BLOCKS:
        for r in range(repeats):
            stride = first_stride if r == 0 else 1
            inverted_residual(b, f"ir{idx}", in_ch, out_ch, expand, stride=stride)
            in_ch = out_ch
            idx += 1
    conv_bn_relu(b, "head", 1280, 1)
    b.add(GlobalAvgPool("gap"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("softmax"))
    return b.build()
