"""Inception-v1 / GoogLeNet (Szegedy et al., 2015).

Historically the first mainstream network *designed with* auxiliary side
classifiers — the architectural ancestor of BranchyNet-style early exits —
and a stress test for cut-point enumeration (four-way branch fan-out).
"""

from __future__ import annotations

from repro.models.builders import GraphBuilder, conv_bn_relu, inception_module
from repro.models.graph import ModelGraph
from repro.models.layers import Dense, Dropout, GlobalAvgPool, Pool, Softmax

#: Inception module parameters: (1x1, 3x3reduce, 3x3, 5x5reduce, 5x5, poolproj).
_MODULES = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def build_inception_v1(num_classes: int = 1000) -> ModelGraph:
    """GoogLeNet backbone (without training-time auxiliary heads); ~3 GFLOPs."""
    b = GraphBuilder("inception_v1", (3, 224, 224))
    conv_bn_relu(b, "stem1", 64, 7, stride=2, padding=3)
    b.add(Pool("stem1_pool", kernel=3, stride=2, padding=1))
    conv_bn_relu(b, "stem2a", 64, 1)
    conv_bn_relu(b, "stem2b", 192, 3, padding=1)
    b.add(Pool("stem2_pool", kernel=3, stride=2, padding=1))
    for name, cfg in _MODULES.items():
        inception_module(b, f"inc{name}", *cfg)
        if name in ("3b", "4e"):
            b.add(Pool(f"pool_{name}", kernel=3, stride=2, padding=1))
    b.add(GlobalAvgPool("gap"))
    b.add(Dropout("drop"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("softmax"))
    return b.build()
