"""SqueezeNet 1.1 (Iandola et al., 2016).

The original "AlexNet accuracy at 50x fewer parameters" edge model: fire
modules (1x1 squeeze -> parallel 1x1/3x3 expands -> concat) give it a branchy
topology with tiny weights — the model you'd actually provision onto a
constrained device, and another stress case for cut-point enumeration.
"""

from __future__ import annotations

from repro.models.builders import GraphBuilder, conv_bn_relu
from repro.models.graph import ModelGraph
from repro.models.layers import Concat, Conv2D, Dropout, GlobalAvgPool, Pool, Softmax

#: Fire module parameters: (squeeze, expand1x1, expand3x3).
_FIRES = {
    "f2": (16, 64, 64),
    "f3": (16, 64, 64),
    "f4": (32, 128, 128),
    "f5": (32, 128, 128),
    "f6": (48, 192, 192),
    "f7": (48, 192, 192),
    "f8": (64, 256, 256),
    "f9": (64, 256, 256),
}

#: Max-pools come *before* these modules in the 1.1 layout.
_POOL_BEFORE = {"f2", "f4", "f6"}


def _fire(b: GraphBuilder, name: str, squeeze: int, e1: int, e3: int) -> str:
    """One fire module; returns the concat node name."""
    sq = conv_bn_relu(b, f"{name}_squeeze", squeeze, 1, batchnorm=False)
    left = conv_bn_relu(b, f"{name}_e1", e1, 1, after=sq, batchnorm=False)
    right = conv_bn_relu(b, f"{name}_e3", e3, 3, padding=1, after=sq, batchnorm=False)
    return b.merge(Concat(f"{name}_concat"), [left, right])


def build_squeezenet(num_classes: int = 1000) -> ModelGraph:
    """SqueezeNet 1.1; ~0.7 GFLOPs, ~1.2 M params."""
    b = GraphBuilder("squeezenet", (3, 224, 224))
    conv_bn_relu(b, "stem", 64, 3, stride=2, padding=0, batchnorm=False)
    for name, cfg in _FIRES.items():
        if name in _POOL_BEFORE:
            b.add(Pool(f"pool_{name}", kernel=3, stride=2))
        _fire(b, name, *cfg)
    b.add(Dropout("drop"))
    # classifier is a conv, not an FC — part of why the model is so small
    conv_bn_relu(b, "head", num_classes, 1, batchnorm=False)
    b.add(GlobalAvgPool("gap"))
    b.add(Softmax("softmax"))
    return b.build()
