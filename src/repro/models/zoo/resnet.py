"""ResNet-18/34/50 (He et al., 2016).

ResNets exercise the DAG machinery: skip connections mean the model can only
be partitioned at block boundaries, which the dominator-based cut-point
enumeration in :class:`~repro.models.graph.ModelGraph` discovers automatically.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ModelError
from repro.models.builders import GraphBuilder, conv_bn_relu, residual_block
from repro.models.graph import ModelGraph
from repro.models.layers import Dense, GlobalAvgPool, Pool, Softmax

#: (blocks per stage, bottleneck?) for each supported depth.
_CONFIGS: Dict[int, Tuple[List[int], bool]] = {
    18: ([2, 2, 2, 2], False),
    34: ([3, 4, 6, 3], False),
    50: ([3, 4, 6, 3], True),
}

_STAGE_CHANNELS_BASIC = [64, 128, 256, 512]
_STAGE_CHANNELS_BOTTLENECK = [256, 512, 1024, 2048]


def build_resnet(depth: int = 18, num_classes: int = 1000) -> ModelGraph:
    """ResNet-``depth`` (18/34 basic blocks, 50 bottleneck blocks)."""
    if depth not in _CONFIGS:
        raise ModelError(f"ResNet depth must be one of {sorted(_CONFIGS)}, got {depth}")
    blocks, bottleneck = _CONFIGS[depth]
    channels = _STAGE_CHANNELS_BOTTLENECK if bottleneck else _STAGE_CHANNELS_BASIC

    b = GraphBuilder(f"resnet{depth}", (3, 224, 224))
    conv_bn_relu(b, "stem", 64, 7, stride=2, padding=3)
    b.add(Pool("stem_pool", kernel=3, stride=2, padding=1))
    for stage, (n_blocks, ch) in enumerate(zip(blocks, channels), 1):
        for i in range(n_blocks):
            stride = 2 if (stage > 1 and i == 0) else 1
            residual_block(
                b, f"s{stage}_{i}", ch, stride=stride, bottleneck=bottleneck
            )
    b.add(GlobalAvgPool("gap"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("softmax"))
    return b.build()
