"""VGG-11/16/19 (Simonyan & Zisserman, 2014).

VGG is the heavyweight of the zoo (~15.5 GFLOPs, ~138 M params for VGG-16):
the model where device-only execution is hopeless on embedded hardware and
where partitioning + early exits pay off most.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ModelError
from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Input,
    Layer,
    Pool,
    Softmax,
)

#: Convs per stage for each VGG depth (stages are separated by 2x2 max-pools).
_CONFIGS: Dict[int, List[int]] = {
    11: [1, 1, 2, 2, 2],
    16: [2, 2, 3, 3, 3],
    19: [2, 2, 4, 4, 4],
}

_STAGE_CHANNELS = [64, 128, 256, 512, 512]


def build_vgg(depth: int = 16, num_classes: int = 1000) -> ModelGraph:
    """VGG-``depth`` with the standard 3x3-conv stages and 4096-wide FC head."""
    if depth not in _CONFIGS:
        raise ModelError(f"VGG depth must be one of {sorted(_CONFIGS)}, got {depth}")
    layers: List[Layer] = [Input("input", shape=(3, 224, 224))]
    for stage, (n_convs, ch) in enumerate(zip(_CONFIGS[depth], _STAGE_CHANNELS), 1):
        for i in range(1, n_convs + 1):
            layers.append(
                Conv2D(f"conv{stage}_{i}", out_channels=ch, kernel=3, padding=1)
            )
            layers.append(Activation(f"relu{stage}_{i}"))
        layers.append(Pool(f"pool{stage}", kernel=2, stride=2))
    layers += [
        Flatten("flatten"),
        Dense("fc6", out_features=4096),
        Activation("relu6"),
        Dropout("drop6"),
        Dense("fc7", out_features=4096),
        Activation("relu7"),
        Dropout("drop7"),
        Dense("fc8", out_features=num_classes),
        Softmax("softmax"),
    ]
    return ModelGraph.chain(f"vgg{depth}", layers)
