"""AlexNet (Krizhevsky et al., 2012) — the canonical Neurosurgeon case study.

AlexNet's sharply decreasing activation sizes across its conv stack make it
the textbook demonstration that the best partition point sits in the middle
of the network, which is why partition-aware papers always include it.
"""

from __future__ import annotations

from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Input,
    LocalResponseNorm,
    Pool,
    Softmax,
)


def build_alexnet(num_classes: int = 1000) -> ModelGraph:
    """Single-tower AlexNet; ~1.4 GFLOPs, ~61 M params."""
    layers = [
        Input("input", shape=(3, 224, 224)),
        Conv2D("conv1", out_channels=64, kernel=11, stride=4, padding=2),
        Activation("relu1"),
        LocalResponseNorm("lrn1"),
        Pool("pool1", kernel=3, stride=2),
        Conv2D("conv2", out_channels=192, kernel=5, padding=2),
        Activation("relu2"),
        LocalResponseNorm("lrn2"),
        Pool("pool2", kernel=3, stride=2),
        Conv2D("conv3", out_channels=384, kernel=3, padding=1),
        Activation("relu3"),
        Conv2D("conv4", out_channels=256, kernel=3, padding=1),
        Activation("relu4"),
        Conv2D("conv5", out_channels=256, kernel=3, padding=1),
        Activation("relu5"),
        Pool("pool5", kernel=3, stride=2),
        Flatten("flatten"),
        Dropout("drop6"),
        Dense("fc6", out_features=4096),
        Activation("relu6"),
        Dropout("drop7"),
        Dense("fc7", out_features=4096),
        Activation("relu7"),
        Dense("fc8", out_features=num_classes),
        Softmax("softmax"),
    ]
    return ModelGraph.chain("alexnet", layers)
