"""Network substrate: links, transfer times, topologies, wireless dynamics.

Replaces the paper's physical Wi-Fi/LAN testbed links.  A :class:`Link` is a
(bandwidth, propagation-delay) pair with optional time-varying bandwidth via
:class:`~repro.network.wireless.BandwidthTrace`; star topologies connect each
end device to every edge server.
"""

from repro.network.link import Link
from repro.network.topology import StarTopology
from repro.network.transfer import transfer_time, transfer_time_vec
from repro.network.wireless import BandwidthTrace, GaussMarkovBandwidth, MarkovBandwidth

__all__ = [
    "BandwidthTrace",
    "GaussMarkovBandwidth",
    "Link",
    "MarkovBandwidth",
    "StarTopology",
    "transfer_time",
    "transfer_time_vec",
]
