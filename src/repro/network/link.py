"""Point-to-point link model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Link:
    """A directed link with fixed nominal bandwidth and propagation delay.

    Parameters
    ----------
    bandwidth_bps:
        Nominal capacity in **bytes** per second (see :mod:`repro.units`
    for Mbit/s helpers).
    rtt_s:
        Round-trip propagation delay; one data transfer pays half of it
        (``rtt_s / 2``) plus the serialization time.
    name:
        Optional identifier for reporting.
    """

    bandwidth_bps: float
    rtt_s: float = 10e-3
    name: str = ""

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigError(f"link {self.name!r}: bandwidth must be positive")
        if self.rtt_s < 0:
            raise ConfigError(f"link {self.name!r}: rtt must be >= 0")

    def scaled(self, factor: float) -> "Link":
        """A copy with bandwidth multiplied by ``factor`` (fading, sharing)."""
        if factor <= 0:
            raise ConfigError(f"link scale factor must be positive, got {factor}")
        return Link(self.bandwidth_bps * factor, self.rtt_s, self.name)

    def with_bandwidth(self, bandwidth_bps: float) -> "Link":
        """A copy with bandwidth replaced (time-varying traces)."""
        return Link(bandwidth_bps, self.rtt_s, self.name)
