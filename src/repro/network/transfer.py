"""Transfer-time arithmetic.

One logical data transfer of ``nbytes`` over a link with bandwidth share
``share`` costs

    one-way propagation (rtt/2)  +  nbytes / (bandwidth * share)

Zero-byte transfers cost zero (no message is sent at all) — this matters for
plans that execute entirely on one side of the network.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.network.link import Link


def transfer_time(nbytes: float, link: Link, share: float = 1.0) -> float:
    """Seconds to move ``nbytes`` across ``link`` at the given bandwidth share."""
    if nbytes < 0:
        raise ConfigError(f"negative transfer size: {nbytes}")
    if not (0.0 < share <= 1.0 + 1e-12):
        raise ConfigError(f"bandwidth share must be in (0,1], got {share}")
    if nbytes == 0:
        return 0.0
    return link.rtt_s / 2.0 + nbytes / (link.bandwidth_bps * share)


def transfer_time_vec(nbytes: np.ndarray, link: Link, share: float = 1.0) -> np.ndarray:
    """Vectorized :func:`transfer_time` over an array of sizes."""
    if not (0.0 < share <= 1.0 + 1e-12):
        raise ConfigError(f"bandwidth share must be in (0,1], got {share}")
    nbytes = np.asarray(nbytes, dtype=float)
    if np.any(nbytes < 0):
        raise ConfigError("negative transfer size in vector")
    t = link.rtt_s / 2.0 + nbytes / (link.bandwidth_bps * share)
    return np.where(nbytes == 0.0, 0.0, t)


def round_trip_time(
    up_bytes: float, down_bytes: float, link: Link, share: float = 1.0
) -> float:
    """Upload + download time for a remote call shipping ``up_bytes`` and
    receiving ``down_bytes`` (both legs share the same link and quota)."""
    return transfer_time(up_bytes, link, share) + transfer_time(down_bytes, link, share)
