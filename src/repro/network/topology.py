"""Edge topologies.

The paper family's deployment is a star: each end device reaches every edge
server over its own access link (possibly with different bandwidths per
server — a nearby AP vs. a metro backhaul).  :class:`StarTopology` stores the
directed device->server links and answers the optimizer's only topology
question: "what link does task i use if assigned to server j?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.network.link import Link


@dataclass
class StarTopology:
    """Device->server access links.

    Construct either with an explicit ``links`` mapping
    ``(device_name, server_name) -> Link`` or via :meth:`uniform`.
    """

    device_names: List[str]
    server_names: List[str]
    links: Dict[Tuple[str, str], Link] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.device_names or not self.server_names:
            raise ConfigError("topology needs at least one device and one server")
        if len(set(self.device_names)) != len(self.device_names):
            raise ConfigError("duplicate device names")
        if len(set(self.server_names)) != len(self.server_names):
            raise ConfigError("duplicate server names")
        for (d, s) in self.links:
            if d not in self.device_names or s not in self.server_names:
                raise ConfigError(f"link ({d},{s}) references unknown endpoint")
        missing = [
            (d, s)
            for d in self.device_names
            for s in self.server_names
            if (d, s) not in self.links
        ]
        if missing:
            raise ConfigError(f"missing links for pairs: {missing[:5]}...")

    @classmethod
    def uniform(
        cls,
        device_names: Iterable[str],
        server_names: Iterable[str],
        link: Link,
        per_server_scale: Optional[Mapping[str, float]] = None,
    ) -> "StarTopology":
        """Same access link everywhere, optionally scaled per server."""
        devices = list(device_names)
        servers = list(server_names)
        scale = dict(per_server_scale or {})
        links = {
            (d, s): link.scaled(scale.get(s, 1.0)) if scale.get(s, 1.0) != 1.0 else link
            for d in devices
            for s in servers
        }
        return cls(devices, servers, links)

    def link(self, device: str, server: str) -> Link:
        """The access link used when ``device`` offloads to ``server``."""
        try:
            return self.links[(device, server)]
        except KeyError:
            raise ConfigError(f"no link between {device!r} and {server!r}") from None

    def with_link(self, device: str, server: str, link: Link) -> "StarTopology":
        """A copy with one link replaced (dynamic-bandwidth experiments)."""
        new_links = dict(self.links)
        new_links[(device, server)] = link
        return StarTopology(list(self.device_names), list(self.server_names), new_links)

    def scale_all(self, factor: float) -> "StarTopology":
        """A copy with every link's bandwidth scaled by ``factor``."""
        return StarTopology(
            list(self.device_names),
            list(self.server_names),
            {k: l.scaled(factor) for k, l in self.links.items()},
        )
