"""Edge topologies.

The paper family's deployment is a star: each end device reaches every edge
server over its own access link (possibly with different bandwidths per
server — a nearby AP vs. a metro backhaul).  :class:`StarTopology` stores the
directed device->server links and answers the optimizer's only topology
question: "what link does task i use if assigned to server j?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.network.link import Link


@dataclass
class StarTopology:
    """Device->server access links.

    Construct either with an explicit ``links`` mapping
    ``(device_name, server_name) -> Link`` or via :meth:`uniform`.
    """

    device_names: List[str]
    server_names: List[str]
    links: Dict[Tuple[str, str], Link] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.device_names or not self.server_names:
            raise ConfigError("topology needs at least one device and one server")
        dev_set = set(self.device_names)
        srv_set = set(self.server_names)
        if len(dev_set) != len(self.device_names):
            raise ConfigError("duplicate device names")
        if len(srv_set) != len(self.server_names):
            raise ConfigError("duplicate server names")
        # set-based endpoint checks: the link table has devices × servers
        # entries, so per-entry list scans would make construction quadratic
        # in the device count (minutes at 10k+ devices)
        for (d, s) in self.links:
            if d not in dev_set or s not in srv_set:
                raise ConfigError(f"link ({d},{s}) references unknown endpoint")
        # keys are unique and all within devices × servers, so a simple count
        # proves completeness; the pair sweep runs only to name the gap
        if len(self.links) != len(self.device_names) * len(self.server_names):
            missing = [
                (d, s)
                for d in self.device_names
                for s in self.server_names
                if (d, s) not in self.links
            ]
            raise ConfigError(f"missing links for pairs: {missing[:5]}...")
        # per-server link row shared by every device (uniform topologies);
        # set by :meth:`uniform`, consumed by the sparse affinity index
        self._uniform_row: Optional[Tuple[Link, ...]] = None
        self._row_cache: Dict[str, Tuple[int, ...]] = {}

    @property
    def is_row_uniform(self) -> bool:
        """True when every device shares one per-server link row.

        Only construction through :meth:`uniform` asserts this (provenance,
        not inspection); explicitly-built topologies answer False even if
        their rows happen to coincide.
        """
        return self._uniform_row is not None

    def row_key(self, device: str) -> Tuple[int, ...]:
        """Hashable fingerprint of ``device``'s per-server link row.

        Two devices with equal ``row_key`` see identical :class:`Link`
        objects on every server, so any per-(device, server) latency screen
        may share their results.  Uniform topologies answer a shared
        constant in O(1); explicit topologies fall back to the O(servers)
        id-tuple, memoized per device.
        """
        if self._uniform_row is not None:
            return ()
        key = self._row_cache.get(device)
        if key is None:
            key = tuple(id(self.links[(device, s)]) for s in self.server_names)
            self._row_cache[device] = key
        return key

    @classmethod
    def uniform(
        cls,
        device_names: Iterable[str],
        server_names: Iterable[str],
        link: Link,
        per_server_scale: Optional[Mapping[str, float]] = None,
    ) -> "StarTopology":
        """Same access link everywhere, optionally scaled per server."""
        devices = list(device_names)
        servers = list(server_names)
        scale = dict(per_server_scale or {})
        row = [
            link.scaled(scale[s]) if scale.get(s, 1.0) != 1.0 else link
            for s in servers
        ]
        links = {(d, s): l for d in devices for s, l in zip(servers, row)}
        topo = cls(devices, servers, links)
        # every device shares this per-server row by construction — record
        # the provenance so row_key() answers in O(1) instead of O(servers)
        topo._uniform_row = tuple(row)
        return topo

    def link(self, device: str, server: str) -> Link:
        """The access link used when ``device`` offloads to ``server``."""
        try:
            return self.links[(device, server)]
        except KeyError:
            raise ConfigError(f"no link between {device!r} and {server!r}") from None

    def with_link(self, device: str, server: str, link: Link) -> "StarTopology":
        """A copy with one link replaced (dynamic-bandwidth experiments)."""
        new_links = dict(self.links)
        new_links[(device, server)] = link
        return StarTopology(list(self.device_names), list(self.server_names), new_links)

    def scale_all(self, factor: float) -> "StarTopology":
        """A copy with every link's bandwidth scaled by ``factor``."""
        return StarTopology(
            list(self.device_names),
            list(self.server_names),
            {k: l.scaled(factor) for k, l in self.links.items()},
        )
