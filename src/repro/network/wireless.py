"""Time-varying wireless bandwidth models.

Real deployments (the "in the wild" part of this paper family) see link
capacity fluctuate; the dynamic-environment experiment (E11) drives the
simulator with these traces and measures how much re-optimization recovers.

Two standard generators:

- :class:`GaussMarkovBandwidth` — an AR(1) (Ornstein-Uhlenbeck-like) process
  reverting to a mean rate; models slow fading / congestion drift.
- :class:`MarkovBandwidth` — a continuous-time Markov chain over discrete
  quality states (e.g. good/degraded/bad Wi-Fi), producing piecewise-constant
  traces with abrupt drops.

Both emit a :class:`BandwidthTrace`: a step function ``bandwidth(t)`` that is
cheap to query from the simulator's event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.rng import SeedLike, as_generator


@dataclass(frozen=True)
class BandwidthTrace:
    """Piecewise-constant bandwidth over time.

    ``times[i]`` is the start of segment i (``times[0]`` must be 0); the
    bandwidth in effect for ``t in [times[i], times[i+1])`` is ``values[i]``,
    and ``values[-1]`` holds forever after the last breakpoint.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=float)
        v = np.asarray(self.values, dtype=float)
        if t.ndim != 1 or t.shape != v.shape or t.size == 0:
            raise ConfigError("trace times/values must be equal-length 1-D arrays")
        if t[0] != 0.0:
            raise ConfigError(f"trace must start at t=0, got {t[0]}")
        if np.any(np.diff(t) <= 0):
            raise ConfigError("trace times must be strictly increasing")
        if np.any(v <= 0):
            raise ConfigError("trace bandwidths must be positive")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "values", v)

    def bandwidth(self, t: float) -> float:
        """Bandwidth (bytes/s) in effect at time ``t`` (>= 0)."""
        if t < 0:
            raise ConfigError(f"negative time {t}")
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self.values[idx])

    def mean(self) -> float:
        """Time-average bandwidth over the trace's covered span."""
        if self.times.size == 1:
            return float(self.values[0])
        durations = np.diff(self.times)
        return float(np.dot(self.values[:-1], durations) / durations.sum())

    def change_points(self) -> np.ndarray:
        """Times at which the bandwidth changes (excludes t=0)."""
        return self.times[1:].copy()


@dataclass(frozen=True)
class GaussMarkovBandwidth:
    """AR(1) bandwidth process sampled on a fixed step grid.

    ``b[k+1] = mean + memory * (b[k] - mean) + sigma * sqrt(1-memory^2) * N(0,1)``
    clipped to ``[floor, cap]``.  ``memory`` in [0,1): 0 = i.i.d., ->1 = slow drift.
    """

    mean_bps: float
    sigma_bps: float
    memory: float = 0.9
    step_s: float = 1.0
    floor_bps: float = 0.1e6 / 8
    cap_bps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mean_bps <= 0 or self.sigma_bps < 0:
            raise ConfigError("mean must be positive, sigma non-negative")
        if not (0.0 <= self.memory < 1.0):
            raise ConfigError(f"memory must be in [0,1), got {self.memory}")
        if self.step_s <= 0:
            raise ConfigError("step must be positive")
        if self.floor_bps <= 0:
            raise ConfigError("floor must be positive")

    def generate(self, horizon_s: float, seed: SeedLike = None) -> BandwidthTrace:
        """Sample a trace covering ``[0, horizon_s]``."""
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        rng = as_generator(seed)
        n = int(np.ceil(horizon_s / self.step_s)) + 1
        noise = rng.standard_normal(n) * self.sigma_bps * np.sqrt(
            1.0 - self.memory**2
        )
        vals = np.empty(n)
        vals[0] = self.mean_bps
        for k in range(1, n):
            vals[k] = self.mean_bps + self.memory * (vals[k - 1] - self.mean_bps) + noise[k]
        cap = self.cap_bps if self.cap_bps is not None else np.inf
        vals = np.clip(vals, self.floor_bps, cap)
        times = np.arange(n) * self.step_s
        return BandwidthTrace(times=times, values=vals)


@dataclass(frozen=True)
class MarkovBandwidth:
    """Continuous-time Markov chain over discrete link-quality states."""

    state_bps: Sequence[float] = (50e6 / 8, 10e6 / 8, 1e6 / 8)
    mean_holding_s: Sequence[float] = (20.0, 8.0, 3.0)

    def __post_init__(self) -> None:
        if len(self.state_bps) != len(self.mean_holding_s) or not self.state_bps:
            raise ConfigError("state_bps and mean_holding_s must be equal-length, non-empty")
        if any(b <= 0 for b in self.state_bps) or any(h <= 0 for h in self.mean_holding_s):
            raise ConfigError("states and holding times must be positive")

    def generate(self, horizon_s: float, seed: SeedLike = None) -> BandwidthTrace:
        """Sample a piecewise-constant trace: uniform next-state, exp holding."""
        if horizon_s <= 0:
            raise ConfigError("horizon must be positive")
        rng = as_generator(seed)
        n_states = len(self.state_bps)
        times = [0.0]
        state = int(rng.integers(n_states))
        values = [float(self.state_bps[state])]
        t = 0.0
        while t < horizon_s:
            t += float(rng.exponential(self.mean_holding_s[state]))
            if t >= horizon_s:
                break
            if n_states > 1:
                nxt = int(rng.integers(n_states - 1))
                state = nxt if nxt < state else nxt + 1
            times.append(t)
            values.append(float(self.state_bps[state]))
        return BandwidthTrace(times=np.array(times), values=np.array(values))
