"""Plan sensitivity analysis: what is each task's latency bound by?

Operators of a solved deployment need to know where the next dollar goes:
which tasks speed up if the link is upgraded, which need a faster server,
and which are device-bound and only improve with better surgery.
:func:`plan_sensitivity` answers this by finite-difference elasticities of
each task's *predicted* latency with respect to access bandwidth and
assigned-server speed, holding the plan and shares fixed (the question is
about the current operating point, not about re-optimization — the online
controller handles that).

Elasticity is ``(%Δ latency) / (%Δ resource)``; for a task whose latency is
pure serialization time it approaches −1 for bandwidth, for a pure
server-compute task −1 for server speed, and 0 for resources it doesn't use.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.allocation import Allocation, solution_latencies
from repro.core.candidates import CandidateSet
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.network.link import Link
from repro.network.topology import StarTopology


@dataclass(frozen=True)
class TaskSensitivity:
    """Elasticities of one task's predicted latency at the operating point."""

    task_name: str
    latency_s: float
    bandwidth_elasticity: float  # d%lat / d%bw (<= 0)
    server_elasticity: float  # d%lat / d%server-speed (<= 0)

    @property
    def dominant_resource(self) -> str:
        """Which upgrade helps most: 'bandwidth', 'server', or 'device'."""
        b, s = abs(self.bandwidth_elasticity), abs(self.server_elasticity)
        if max(b, s) < 0.05:
            return "device"
        return "bandwidth" if b >= s else "server"


def _plan_state(tasks: Sequence[TaskSpec], plan: JointPlan):
    """Freeze a JointPlan into (candsets, idx, allocation) for evaluation."""
    candsets = [CandidateSet(t, [plan.features[t.name]]) for t in tasks]
    idx = [0] * len(tasks)
    alloc = Allocation(
        [plan.assignment[t.name] for t in tasks],
        np.array([plan.compute_shares[t.name] for t in tasks]),
        np.array([plan.bandwidth_shares[t.name] for t in tasks]),
    )
    return candsets, idx, alloc


def _scaled_cluster(
    cluster: EdgeCluster, bw_factor: float = 1.0, server_factor: float = 1.0
) -> EdgeCluster:
    servers = [
        dataclasses.replace(s, peak_flops=s.peak_flops * server_factor)
        for s in cluster.servers
    ]
    topo = cluster.topology
    links = {
        k: Link(l.bandwidth_bps * bw_factor, rtt_s=l.rtt_s, name=l.name)
        for k, l in topo.links.items()
    }
    return EdgeCluster(
        list(cluster.end_devices),
        servers,
        StarTopology(list(topo.device_names), list(topo.server_names), links),
    )


def plan_sensitivity(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cluster: EdgeCluster,
    latency_model: Optional[LatencyModel] = None,
    perturbation: float = 0.05,
    include_queueing: bool = True,
) -> List[TaskSensitivity]:
    """Finite-difference elasticities of every task's predicted latency.

    ``perturbation`` is the relative resource change used for the central
    difference (default ±5%).
    """
    if not (0.0 < perturbation < 0.5):
        raise ConfigError(f"perturbation must be in (0, 0.5), got {perturbation}")
    lm = latency_model or LatencyModel()
    for t in tasks:
        if t.name not in plan.features:
            raise ConfigError(f"plan has no entry for task {t.name!r}")
    candsets, idx, alloc = _plan_state(tasks, plan)

    def latencies(bw_factor: float = 1.0, server_factor: float = 1.0) -> np.ndarray:
        scaled = _scaled_cluster(cluster, bw_factor, server_factor)
        return solution_latencies(
            tasks, candsets, idx, alloc, scaled, lm,
            include_queueing=include_queueing, overload="penalty",
        )

    base = latencies()
    eps = perturbation
    d_bw = (latencies(bw_factor=1 + eps) - latencies(bw_factor=1 - eps)) / (2 * eps)
    d_srv = (latencies(server_factor=1 + eps) - latencies(server_factor=1 - eps)) / (
        2 * eps
    )
    out: List[TaskSensitivity] = []
    for i, t in enumerate(tasks):
        lat = float(base[i])
        out.append(
            TaskSensitivity(
                task_name=t.name,
                latency_s=lat,
                bandwidth_elasticity=float(d_bw[i] / lat) if lat > 0 else 0.0,
                server_elasticity=float(d_srv[i] / lat) if lat > 0 else 0.0,
            )
        )
    return out


def sensitivity_table(sensitivities: Sequence[TaskSensitivity]) -> str:
    """Render sensitivities as the ASCII table operators read."""
    from repro.analysis.tables import format_table

    return format_table(
        ["task", "latency_ms", "bw_elasticity", "srv_elasticity", "bound_by"],
        [
            (
                s.task_name,
                s.latency_s * 1e3,
                s.bandwidth_elasticity,
                s.server_elasticity,
                s.dominant_resource,
            )
            for s in sensitivities
        ],
        title="latency sensitivity at the current operating point",
    )
