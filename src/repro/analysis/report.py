"""Markdown report rendering for experiment results.

Turns a collection of :class:`~repro.experiments.common.ExperimentResult`
objects into the measured sections of ``EXPERIMENTS.md`` (or any standalone
report).  Commentary is supplied by the caller; this module owns only the
mechanical formatting, so regenerating the record after a change is one
script run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError

if TYPE_CHECKING:  # avoid a circular import: experiments.common uses analysis
    from repro.experiments.common import ExperimentResult


def _sort_key(exp_id: str):
    """E-experiments first in numeric order, then A-ablations."""
    return (0 if exp_id.startswith("E") else 1, int(exp_id[1:]))


def render_experiment_section(
    result: "ExperimentResult", commentary: Optional[str] = None
) -> str:
    """One markdown section: heading, commentary, fenced result table."""
    lines = [f"## {result.exp_id} — {result.title}", ""]
    if commentary:
        lines += [commentary.strip(), ""]
    lines += ["```", result.format(), "```", ""]
    return "\n".join(lines)


def render_markdown_report(
    results: Sequence["ExperimentResult"],
    title: str = "Experiment report",
    preamble: str = "",
    commentary: Optional[Dict[str, str]] = None,
) -> str:
    """A full markdown report over many experiments, sorted by id."""
    if not results:
        raise ConfigError("no experiment results to render")
    ids = [r.exp_id for r in results]
    if len(set(ids)) != len(ids):
        raise ConfigError(f"duplicate experiment ids: {ids}")
    commentary = commentary or {}
    parts: List[str] = [f"# {title}", ""]
    if preamble:
        parts += [preamble.strip(), ""]
    for r in sorted(results, key=lambda r: _sort_key(r.exp_id)):
        parts.append(render_experiment_section(r, commentary.get(r.exp_id)))
    return "\n".join(parts)


def render_scorecard(
    rows: Iterable[Sequence[str]],
    headers: Sequence[str] = ("ID", "Artifact", "Expected shape", "Holds?"),
) -> str:
    """A markdown summary table (the scorecard at the end of EXPERIMENTS.md)."""
    rows = [list(r) for r in rows]
    for r in rows:
        if len(r) != len(headers):
            raise ConfigError(f"scorecard row width mismatch: {r}")
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("----" for _ in headers) + "|")
    for r in rows:
        out.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(out)
