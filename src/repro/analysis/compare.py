"""Strategy comparison helpers: speedups and crossover detection."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


def speedup(baseline_latency: float, optimized_latency: float) -> float:
    """Ratio ``baseline / optimized`` (>1 means the optimized method wins)."""
    if baseline_latency < 0 or optimized_latency <= 0:
        raise ConfigError(
            f"invalid latencies: baseline={baseline_latency}, optimized={optimized_latency}"
        )
    return baseline_latency / optimized_latency


def speedups_over(
    results: Dict[str, float], reference: str = "joint"
) -> Dict[str, float]:
    """Speedup of ``reference`` over every other strategy in ``results``.

    ``results`` maps strategy name -> latency/objective (lower is better).
    """
    if reference not in results:
        raise ConfigError(f"reference {reference!r} not in results {sorted(results)}")
    ref = results[reference]
    if ref <= 0:
        raise ConfigError(f"reference value must be positive, got {ref}")
    return {
        name: val / ref for name, val in results.items() if name != reference
    }


def crossover_point(
    x: Sequence[float], series_a: Sequence[float], series_b: Sequence[float]
) -> Optional[float]:
    """x-value where series A stops/starts beating series B, or None.

    Finds the first sign change of (A - B) along increasing ``x`` and
    linearly interpolates the crossing.  Used to report e.g. the bandwidth at
    which edge execution overtakes local execution (experiment E2).
    """
    xv = np.asarray(x, dtype=float)
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if not (xv.shape == a.shape == b.shape) or xv.ndim != 1 or xv.size < 2:
        raise ConfigError("crossover_point needs equal-length 1-D series, size >= 2")
    if np.any(np.diff(xv) <= 0):
        raise ConfigError("x must be strictly increasing")
    finite = np.isfinite(a) & np.isfinite(b)
    if finite.sum() < 2:
        return None
    xv, a, b = xv[finite], a[finite], b[finite]
    diff = a - b
    sign = np.sign(diff)
    for i in range(1, sign.size):
        if sign[i] != sign[i - 1] and sign[i - 1] != 0:
            # linear interpolation of the zero crossing
            x0, x1 = xv[i - 1], xv[i]
            d0, d1 = diff[i - 1], diff[i]
            if d1 == d0:
                return float(x0)
            return float(x0 + (x1 - x0) * (-d0) / (d1 - d0))
    return None
