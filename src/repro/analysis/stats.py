"""Statistical utilities for experiment reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigError
from repro.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float


def summarize(samples: np.ndarray) -> Summary:
    """Summary statistics of a 1-D sample."""
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ConfigError("summarize needs a non-empty 1-D sample")
    return Summary(
        n=int(x.size),
        mean=float(x.mean()),
        std=float(x.std(ddof=1)) if x.size > 1 else 0.0,
        p50=float(np.percentile(x, 50)),
        p95=float(np.percentile(x, 95)),
        p99=float(np.percentile(x, 99)),
        minimum=float(x.min()),
        maximum=float(x.max()),
    )


def mean_ci(samples: np.ndarray, confidence: float = 0.95) -> Tuple[float, float, float]:
    """(mean, lo, hi) Student-t confidence interval for the mean."""
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ConfigError("mean_ci needs a non-empty 1-D sample")
    if not (0.0 < confidence < 1.0):
        raise ConfigError(f"confidence must be in (0,1), got {confidence}")
    m = float(x.mean())
    if x.size == 1:
        return m, m, m
    se = float(x.std(ddof=1) / np.sqrt(x.size))
    half = float(sps.t.ppf(0.5 + confidence / 2.0, df=x.size - 1)) * se
    return m, m - half, m + half


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in (0, 1].

    1 = perfectly equal; 1/n = one value dominates.  Used on per-task
    latencies (after normalizing by deadline where appropriate) to score how
    evenly an allocation treats tasks — ablation A5.
    """
    x = np.asarray(values, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ConfigError("jain_index needs a non-empty 1-D sample")
    if np.any(x < 0):
        raise ConfigError("jain_index needs non-negative values")
    denom = x.size * float(np.sum(x * x))
    if denom == 0:
        return 1.0
    return float(np.sum(x) ** 2 / denom)


def bootstrap_ci(
    samples: np.ndarray,
    statistic=np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: SeedLike = None,
) -> Tuple[float, float, float]:
    """(point, lo, hi) percentile-bootstrap interval for any statistic."""
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ConfigError("bootstrap_ci needs a non-empty 1-D sample")
    if not (0.0 < confidence < 1.0):
        raise ConfigError(f"confidence must be in (0,1), got {confidence}")
    rng = as_generator(seed)
    idx = rng.integers(0, x.size, size=(n_boot, x.size))
    boots = np.apply_along_axis(statistic, 1, x[idx])
    alpha = (1.0 - confidence) / 2.0
    return (
        float(statistic(x)),
        float(np.percentile(boots, 100 * alpha)),
        float(np.percentile(boots, 100 * (1 - alpha))),
    )
