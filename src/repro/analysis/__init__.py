"""Result analysis: statistics, ASCII tables, strategy comparison."""

from repro.analysis.compare import crossover_point, speedup, speedups_over
from repro.analysis.stats import bootstrap_ci, jain_index, mean_ci, summarize
from repro.analysis.sensitivity import TaskSensitivity, plan_sensitivity, sensitivity_table
from repro.analysis.report import render_experiment_section, render_markdown_report, render_scorecard
from repro.analysis.tables import format_table

__all__ = [
    "bootstrap_ci",
    "crossover_point",
    "format_table",
    "jain_index",
    "mean_ci",
    "render_experiment_section",
    "render_markdown_report",
    "render_scorecard",
    "TaskSensitivity",
    "plan_sensitivity",
    "sensitivity_table",
    "speedup",
    "speedups_over",
    "summarize",
]
