"""ASCII table rendering for experiment output.

Benchmarks print the same rows/series a paper table or figure would carry;
this module is the single place that formats them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width table; floats use ``float_fmt``, others ``str``."""
    body: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row width {len(row)} != header width {len(headers)}: {row}"
            )
        body.append(
            [
                float_fmt.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(h), *(len(r[i]) for r in body)) if body else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
