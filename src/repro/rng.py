"""Deterministic random-number-generation helpers.

Reproducibility rule: *no module in this library ever calls*
``np.random.default_rng()`` *without a seed or uses the global NumPy state*.
Every stochastic component takes either a seed or a ``numpy.random.Generator``;
these helpers normalize between the two and derive independent child streams.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

#: Seed used when a caller passes ``None``; fixed so default runs reproduce.
DEFAULT_SEED = 20220822  # ICPP 2022 conference date


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` maps to :data:`DEFAULT_SEED` (deterministic default), an ``int``
    or :class:`~numpy.random.SeedSequence` seeds a fresh PCG64 generator, and
    an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Used when an experiment fans out over scenarios/strategies so each branch
    sees an identical, isolated stream regardless of evaluation order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
    if not isinstance(seq, np.random.SeedSequence):  # pragma: no cover
        seq = np.random.SeedSequence(int(rng.integers(2**63)))
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_material(seed: SeedLike, *tokens: Union[int, str]) -> list[int]:
    """Entropy material for :func:`derive`, exposed for stream caching.

    The simulator's fast path derives one child stream per request by
    appending the request id to a fixed per-task prefix; computing the prefix
    once via this helper (and finishing with :func:`derive_from` or
    :mod:`repro.rng_vec`) avoids re-hashing the task tokens per request while
    producing byte-identical streams to ``derive(seed, *tokens, req_id)``.

    Note the generator case consumes one draw from ``seed`` exactly like
    :func:`derive` does.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(2**31))
    elif seed is None:
        base = DEFAULT_SEED
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    else:
        base = int(seed)
    return [base] + [
        t if isinstance(t, int) else int.from_bytes(t.encode()[:8].ljust(8, b"\0"), "little")
        for t in tokens
    ]


def derive_from(material: list[int], *tokens: Union[int, str]) -> np.random.Generator:
    """Finish a derivation started with :func:`derive_material`.

    ``derive_from(derive_material(seed, "exec", name), req_id)`` is the same
    stream as ``derive(seed, "exec", name, req_id)``.
    """
    extra = [
        t if isinstance(t, int) else int.from_bytes(t.encode()[:8].ljust(8, b"\0"), "little")
        for t in tokens
    ]
    return np.random.default_rng(np.random.SeedSequence(material + extra))


def derive_seed(seed: SeedLike, *tokens: Union[int, str]) -> int:
    """A derived 63-bit integer seed for a named child stream.

    Used where a plain ``int`` must cross a process boundary (e.g. per-
    replication simulator seeds): deterministic in ``seed`` and ``tokens``,
    independent across distinct token tuples.
    """
    material = derive_material(seed, *tokens)
    state = np.random.SeedSequence(material).generate_state(1, np.uint64)
    return int(state[0]) & (2**63 - 1)


def derive(seed: SeedLike, *tokens: Union[int, str]) -> np.random.Generator:
    """Derive a named child stream, stable across runs and call order.

    ``derive(seed, "arrivals", 3)`` always yields the same stream for the
    same ``seed`` — unlike :func:`spawn`, which depends on spawn order.
    """
    return np.random.default_rng(np.random.SeedSequence(derive_material(seed, *tokens)))
