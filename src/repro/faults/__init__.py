"""Failure-aware edge runtime: fault injection and recovery policies.

Deterministic, seed-derived fault schedules (:mod:`repro.faults.schedule`)
are driven into the simulator by an injector (:mod:`repro.faults.injector`);
the failure-aware runtime (:mod:`repro.faults.runtime`) detects failed
offload stages and walks the :class:`FailurePolicy` recovery ladder —
timeout, backoff retry, failover to a standby server slice, graceful
degradation to the best on-device exit.  Entirely opt-in: with
``SimulationConfig.faults`` unset, the base simulator paths run untouched
and fixed-seed outputs are bit-identical to pre-fault builds.
"""

from repro.faults.injector import FaultInjector
from repro.faults.policy import FailurePolicy, PlanUpdate
from repro.faults.runtime import simulate_with_faults
from repro.faults.schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    sample_fault_schedule,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FailurePolicy",
    "PlanUpdate",
    "sample_fault_schedule",
    "simulate_with_faults",
]
