"""Failure-handling policies and mid-run plan repair directives.

:class:`FailurePolicy` parameterizes the recovery ladder the failure-aware
runtime walks when an offload attempt fails (timeout, loss, crash-interrupt,
down-at-submit):

1. **retry** — re-drive the whole offload after exponential backoff, up to
   ``max_retries`` extra attempts;
2. **failover** — a retry targets the task's standby server slice whenever
   the primary route is down at retry time (and ``failover`` is enabled);
3. **degrade** — once retries are exhausted, complete locally at the
   deepest on-device exit (``degrade_local``), trading accuracy for a
   guaranteed answer;
4. **lost** — with the ladder disabled (or no local fallback wanted), the
   request is dropped and counted in ``counters.lost``.

``None`` in :attr:`~repro.sim.runner.SimulationConfig.failure_policy` is the
no-policy baseline: any failed offload attempt is immediately lost.

:class:`PlanUpdate` is the controller-to-simulator interface for failure-
triggered plan repair: a re-solved :class:`~repro.core.plan.JointPlan`
(plus tasks to shed) taking effect for arrivals at ``time_s`` onward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.plan import JointPlan
from repro.errors import ConfigError

__all__ = ["FailurePolicy", "PlanUpdate"]


@dataclass(frozen=True)
class FailurePolicy:
    """Knobs of the timeout/retry/failover/degradation ladder."""

    #: give up on an offload stage whose completion lies further than this
    #: beyond its submission (queueing included)
    stage_timeout_s: float = 0.25
    #: extra attempts after the first failed one
    max_retries: int = 2
    #: backoff before retry ``i`` is ``backoff_base_s * backoff_factor**i``
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    #: retries may target the standby server slice when the primary is down
    failover: bool = True
    #: exhausted requests complete locally at the best on-device exit
    degrade_local: bool = True
    #: lag between a fault manifesting and the runtime acting on it
    detection_delay_s: float = 0.005

    def __post_init__(self) -> None:
        if self.stage_timeout_s <= 0:
            raise ConfigError("stage_timeout_s must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.detection_delay_s < 0:
            raise ConfigError("detection_delay_s must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor**attempt


@dataclass(frozen=True)
class PlanUpdate:
    """A repaired plan taking effect for arrivals at ``time_s`` onward.

    In-flight requests keep the resources they launched with; ``shed_tasks``
    arrivals after ``time_s`` are dropped at admission (counted in
    ``counters.shed``) instead of launched.
    """

    time_s: float
    plan: JointPlan
    shed_tasks: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigError("plan update time must be >= 0")
        for t in self.shed_tasks:
            if t not in self.plan.assignment:
                raise ConfigError(f"shed task {t!r} unknown to the repaired plan")
