"""Deterministic fault schedules: what breaks, when, and how badly.

A :class:`FaultSchedule` is a static, validated list of :class:`FaultEvent`
windows fixed before the simulation starts — faults are part of the
experiment's configuration, not sampled on the fly, so a fixed seed replays
the exact same outage pattern across policies, replications, and
serial/parallel fan-outs.  :func:`sample_fault_schedule` derives a random
schedule from a seed via the library's deterministic RNG tree for chaos
sweeps.

Event semantics by kind (``target`` names the affected entity):

- ``server_crash`` — edge server ``target`` is down during ``[start, end)``;
  queued/in-flight work on its slices is abandoned at ``start``.
- ``link_outage`` — task ``target``'s access link is down during
  ``[start, end)`` (both directions).
- ``link_degrade`` — task ``target``'s link runs at ``severity`` × nominal
  bandwidth during the window (``0 < severity < 1``).
- ``server_slowdown`` — server ``target`` is a straggler: ``severity`` ×
  nominal rate during the window.
- ``request_loss`` — each offload attempt of task ``target`` started inside
  the window is lost in the network with probability ``severity``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.rng import derive

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "sample_fault_schedule",
]

#: Recognized fault kinds (see module docstring for semantics).
FAULT_KINDS = (
    "server_crash",
    "link_outage",
    "link_degrade",
    "server_slowdown",
    "request_loss",
)

#: Kinds that take a resource *down* (vs. merely slowing/lossy ones).
_OUTAGE_KINDS = frozenset({"server_crash", "link_outage"})
_SPEED_KINDS = frozenset({"link_degrade", "server_slowdown"})


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: ``kind`` hits ``target`` during ``[start_s, end_s)``.

    ``end_s`` may be ``math.inf`` for a permanent fault (no recovery).
    ``severity`` is kind-specific: remaining speed fraction for
    degrade/slowdown, loss probability for ``request_loss``, ignored (1.0)
    for outages.
    """

    kind: str
    target: str
    start_s: float
    end_s: float
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; known {FAULT_KINDS}")
        if not self.target:
            raise FaultError("fault event needs a target name")
        if self.start_s < 0:
            raise FaultError(f"fault start {self.start_s} must be >= 0")
        if not self.end_s > self.start_s:
            raise FaultError(
                f"fault window [{self.start_s}, {self.end_s}) is empty or inverted"
            )
        if self.kind in _SPEED_KINDS and not (0.0 < self.severity < 1.0):
            raise FaultError(
                f"{self.kind} severity {self.severity} must be in (0,1) "
                "(remaining speed fraction)"
            )
        if self.kind == "request_loss" and not (0.0 < self.severity <= 1.0):
            raise FaultError(
                f"request_loss severity {self.severity} must be in (0,1] "
                "(per-attempt loss probability)"
            )

    @property
    def permanent(self) -> bool:
        return math.isinf(self.end_s)


@dataclass(frozen=True)
class FaultSchedule:
    """Validated, time-sorted collection of fault windows.

    Windows of the same ``(kind, target)`` pair must not overlap — the
    injector drives each resource through a simple down/up (or slow/normal)
    state machine and overlapping windows would make transitions ambiguous.
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.start_s, e.kind, e.target))
        )
        object.__setattr__(self, "events", ordered)
        last_end: dict = {}
        for e in ordered:
            key = (e.kind, e.target)
            if key in last_end and e.start_s < last_end[key]:
                raise FaultError(
                    f"overlapping {e.kind} windows on {e.target!r} "
                    f"(second starts at t={e.start_s:.6g} before "
                    f"t={last_end[key]:.6g})"
                )
            last_end[key] = e.end_s

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def targets(self) -> Tuple[str, ...]:
        return tuple(sorted({e.target for e in self.events}))

    @property
    def last_start_s(self) -> float:
        return max((e.start_s for e in self.events), default=0.0)

    def for_kind(self, kind: str) -> List[FaultEvent]:
        if kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {kind!r}")
        return [e for e in self.events if e.kind == kind]

    def outage_windows(self, kind: str, target: str) -> List[Tuple[float, float]]:
        """Down windows of ``target`` under outage kind ``kind``, sorted."""
        return [
            (e.start_s, e.end_s)
            for e in self.events
            if e.kind == kind and e.target == target
        ]

    def is_down(self, kind: str, target: str, t: float) -> bool:
        """Whether ``target`` is inside a ``kind`` outage window at ``t``."""
        return any(s <= t < e for s, e in self.outage_windows(kind, target))

    def next_failure_in(
        self, kind: str, target: str, t0: float, t1: float
    ) -> Optional[float]:
        """Earliest ``kind`` window start on ``target`` in ``(t0, t1)``.

        The failure-aware runtime uses this to detect crash-during-service:
        a stage submitted at ``t0`` with service finishing at ``t1`` is
        interrupted iff the resource goes down strictly inside the interval.
        """
        starts = [
            s for s, _ in self.outage_windows(kind, target) if t0 < s < t1
        ]
        return min(starts) if starts else None

    def loss_probability(self, task: str, t: float) -> float:
        """Per-attempt network loss probability for ``task`` at time ``t``."""
        for e in self.events:
            if e.kind == "request_loss" and e.target == task and e.start_s <= t < e.end_s:
                return e.severity
        return 0.0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def crash_recover(
        cls, server: str, crash_s: float, down_s: float
    ) -> "FaultSchedule":
        """Single crash of ``server`` at ``crash_s``, recovering ``down_s`` later."""
        if down_s <= 0:
            raise FaultError(f"down duration {down_s} must be positive")
        return cls(
            events=(FaultEvent("server_crash", server, crash_s, crash_s + down_s),)
        )

    def merged_with(self, other: "FaultSchedule") -> "FaultSchedule":
        """Union of two schedules (re-validated)."""
        return FaultSchedule(events=self.events + other.events)


def sample_fault_schedule(
    seed: int,
    horizon_s: float,
    servers: Sequence[str],
    tasks: Iterable[str] = (),
    crash_rate_per_min: float = 1.0,
    mean_down_s: float = 2.0,
    slowdown_prob: float = 0.25,
    slowdown_severity: float = 0.5,
    loss_prob: float = 0.0,
) -> FaultSchedule:
    """Derive a random fault schedule from ``seed`` (chaos sweeps).

    Crash arrivals per server are Poisson at ``crash_rate_per_min``; down
    times are exponential with mean ``mean_down_s`` (truncated so windows on
    the same server never overlap).  Each server independently suffers a
    mid-horizon slowdown with probability ``slowdown_prob``; each task's
    link drops requests at ``loss_prob`` over the middle half of the horizon
    when ``loss_prob > 0``.  Everything flows through the deterministic RNG
    tree, so a fixed seed yields a fixed schedule.
    """
    if horizon_s <= 0:
        raise FaultError("horizon must be positive")
    events: List[FaultEvent] = []
    for s in servers:
        rng = derive(seed, "faults", "server", s)
        t = 0.0
        rate_s = crash_rate_per_min / 60.0
        while rate_s > 0:
            t += rng.exponential(1.0 / rate_s)
            if t >= horizon_s:
                break
            down = min(rng.exponential(mean_down_s), horizon_s)
            events.append(FaultEvent("server_crash", s, t, t + down))
            t += down + 1e-9  # strictly after recovery: windows cannot overlap
        if rng.random() < slowdown_prob:
            start = float(rng.uniform(0.25, 0.6)) * horizon_s
            end = min(start + float(rng.uniform(0.1, 0.3)) * horizon_s, horizon_s)
            events.append(
                FaultEvent("server_slowdown", s, start, end, slowdown_severity)
            )
    if loss_prob > 0:
        for name in tasks:
            events.append(
                FaultEvent(
                    "request_loss",
                    name,
                    0.25 * horizon_s,
                    0.75 * horizon_s,
                    loss_prob,
                )
            )
    return FaultSchedule(events=tuple(events))
