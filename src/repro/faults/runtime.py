"""Failure-aware event-loop simulation of a joint plan.

This is the fault-run counterpart of :func:`repro.sim.runner.simulate_plan`:
the same resource model and RNG derivations, plus the machinery the base
runner deliberately omits — a :class:`~repro.faults.injector.FaultInjector`
driving the configured :class:`~repro.faults.schedule.FaultSchedule`,
per-stage failure detection (down-at-submit, crash-during-service, wire
loss, timeout), and the :class:`~repro.faults.policy.FailurePolicy` recovery
ladder (backoff retry → failover to a standby server slice → graceful local
degradation → lost).

Because FIFO service times are known at submission, every stage's outcome is
decided deterministically *at submission time*: the earliest of
{crash-interrupt, timeout} — both computable from the static schedule and
the policy — wins against the nominal finish, and exactly one continuation
is scheduled.  No cancellation races, no sampling inside the loop beyond the
seed-derived loss/degradation draws, so fault runs replay bit-for-bit.

Mid-run plan repair arrives as :class:`~repro.faults.policy.PlanUpdate`
directives: arrivals from ``time_s`` onward launch on freshly provisioned
slices of the repaired plan (in-flight requests keep their old slices) or
are shed outright.  Every request terminates in exactly one of
{recorded, warmup-discarded, lost, shed}; the conservation identity is
checked before the report is returned.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import JointPlan, SurgeryPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.policy import FailurePolicy, PlanUpdate
from repro.faults.schedule import FaultSchedule
from repro.models.multiexit import MultiExitModel
from repro.rng import derive, derive_from, derive_material
from repro.sim.engine import Simulator
from repro.sim.entities import Request, RequestRecord
from repro.sim.execution import jitter_demand, jitter_materials, realize_request
from repro.sim.metrics import MetricsCollector, SimCounters, SimulationReport
from repro.sim.queues import FifoResource, LinkResource
from repro.sim.sources import arrival_times
from repro.telemetry.timeline import TimelineRecorder
from repro.telemetry.windows import WindowedMetrics

__all__ = ["simulate_with_faults"]


@dataclass
class _Route:
    """One offload path: a server slice plus its two link directions."""

    server_name: str
    srv: FifoResource
    up: LinkResource
    down: LinkResource
    is_primary: bool

    @property
    def reachable(self) -> bool:
        return not (self.srv.is_down or self.up.is_down or self.down.is_down)


@dataclass
class _TaskRoutes:
    primary: _Route
    standby: Optional[_Route]


@dataclass(frozen=True)
class _DegradeProfile:
    """Precomputed graceful-degradation fallback for one (task, plan)."""

    #: position (within kept exits) of the deepest on-device exit, or -1
    #: when the plan keeps no on-device exit (full-local fallback instead)
    on_device_pos: int
    #: competence of that exit (correctness is re-sampled at it)
    competence: float


def _degrade_profile(model: MultiExitModel, splan: SurgeryPlan) -> _DegradeProfile:
    kept = list(splan.kept_exits)
    attach = model.exit_cut_indices[kept]
    on_device = np.flatnonzero(attach <= splan.partition_cut)
    if on_device.size == 0:
        return _DegradeProfile(on_device_pos=-1, competence=0.0)
    pos = int(on_device[-1])
    return _DegradeProfile(
        on_device_pos=pos, competence=float(model.competences[kept][pos])
    )


def simulate_with_faults(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cluster: EdgeCluster,
    cfg,  # SimulationConfig (typed loosely to avoid the import cycle)
    lm: LatencyModel,
    rec: Optional[TimelineRecorder],
    plan_updates: Sequence[PlanUpdate] = (),
) -> SimulationReport:
    """Run ``plan`` under ``cfg.faults`` with the ``cfg.failure_policy`` ladder."""
    schedule: FaultSchedule = cfg.faults
    policy: Optional[FailurePolicy] = cfg.failure_policy
    if schedule is None:
        raise ConfigError("simulate_with_faults requires cfg.faults")

    updates = sorted(plan_updates, key=lambda u: u.time_s)
    plans: List[JointPlan] = [plan] + [u.plan for u in updates]
    shed_sets = [frozenset()] + [frozenset(u.shed_tasks) for u in updates]
    update_times = [u.time_s for u in updates]
    for p in plans:
        for t in tasks:
            if t.name not in p.features:
                raise ConfigError(f"plan has no entry for task {t.name!r}")

    reg = rec.registry if rec is not None else None
    counters = SimCounters(replications=1)
    sim = Simulator()
    if rec is not None:
        sim.on_event = lambda now, pending: rec.sample("sim.pending_events", now, pending)
    metrics = MetricsCollector(warmup_s=cfg.warmup_s)
    # windowed SLO aggregation works on fault runs too: completions feed the
    # met/miss counters, lost/shed/degraded outcomes annotate their windows
    wm = (
        WindowedMetrics(cfg.windows, cfg.horizon_s)
        if getattr(cfg, "windows", None) is not None else None
    )

    # -- resources ------------------------------------------------------------
    device_res: Dict[str, FifoResource] = {}
    for d in cluster.end_devices:
        device_res[d.name] = FifoResource(
            f"dev:{d.name}", lm.throughput(d), overhead_s=d.overhead_s, recorder=rec
        )
    # injector maps: every slice living on a server / behind a task's access
    # link, across all plan generations, so one crash takes them all down
    server_map: Dict[str, List] = {s.name: [] for s in cluster.servers}
    link_map: Dict[str, List] = {t.name: [] for t in tasks}

    def _make_route(t: TaskSpec, p: JointPlan, s: int, tag: str, primary: bool) -> _Route:
        server = cluster.servers[s]
        link = cluster.link(t.device_name, server.name)
        x = p.compute_shares[t.name]
        y = p.bandwidth_shares[t.name]
        srv = FifoResource(
            f"srv:{t.name}{tag}", lm.throughput(server) * x,
            overhead_s=server.overhead_s, recorder=rec,
        )
        up = LinkResource(
            f"link:{t.name}:up{tag}", link.bandwidth_bps, rtt_s=link.rtt_s,
            share=y, trace=cfg.bandwidth_trace, recorder=rec,
        )
        down = LinkResource(
            f"link:{t.name}:down{tag}", link.bandwidth_bps, rtt_s=link.rtt_s,
            share=y, trace=cfg.bandwidth_trace, recorder=rec,
        )
        server_map[server.name].append(srv)
        if primary:
            # link faults target the task's *primary* access path; a standby
            # route reaches a different server over a different link
            link_map[t.name].extend((up, down))
        return _Route(server.name, srv, up, down, is_primary=primary)

    route_sets: List[Dict[str, _TaskRoutes]] = []
    degrade_profiles: List[Dict[str, _DegradeProfile]] = []
    for k, p in enumerate(plans):
        tag = "" if k == 0 else f":u{k}"
        routes: Dict[str, _TaskRoutes] = {}
        profiles: Dict[str, _DegradeProfile] = {}
        for t in tasks:
            profiles[t.name] = _degrade_profile(t.model, p.features[t.name].plan)
            s = p.assignment[t.name]
            if s is None:
                continue
            primary = _make_route(t, p, s, tag, primary=True)
            standby = None
            if cluster.num_servers > 1:
                standby = _make_route(
                    t, p, (s + 1) % cluster.num_servers, tag + ":fo", primary=False
                )
            routes[t.name] = _TaskRoutes(primary, standby)
        route_sets.append(routes)
        degrade_profiles.append(profiles)

    # armed before arrivals: same-time fault transitions outrank stage events
    injector = FaultInjector(schedule, server_map, link_map, counters, recorder=rec)
    injector.arm(sim)

    exec_material = {t.name: derive_material(cfg.seed, "exec", t.name) for t in tasks}
    jitter_mats = (
        {t.name: jitter_materials(cfg.seed, t.name) for t in tasks}
        if cfg.service_noise > 0
        else None
    )
    detection_s = policy.detection_delay_s if policy is not None else 0.0

    # -- request lifecycle ----------------------------------------------------
    def launch(task: TaskSpec, req: Request) -> None:
        k = bisect_right(update_times, req.arrival_s)
        if task.name in shed_sets[k]:
            counters.shed += 1
            if rec is not None:
                rec.event(req.arrival_s, "shed", task.name, req.req_id)
                rec.count("sim.shed")
            if wm is not None and req.arrival_s >= cfg.warmup_s:
                wm.mark(task.name, req.arrival_s, "shed")
            return
        active = plans[k]
        feats = active.features[task.name]
        rng = derive_from(exec_material[task.name], req.req_id)
        demand = realize_request(task.model, feats.plan, req.difficulty, rng, metrics=reg)
        if jitter_mats is not None:
            demand = jitter_demand(
                demand, jitter_mats[task.name], req.req_id, cfg.service_noise
            )
        dres = device_res[task.device_name]
        profile = degrade_profiles[k][task.name]
        routes = route_sets[k].get(task.name)
        if demand.offloaded and routes is None:
            raise SimulationError(
                f"{task.name}: offloading demand under a local-only assignment"
            )

        def finish(
            completion: float,
            dev_busy: float,
            srv_busy: float,
            net_busy: float,
            exit_position: int,
            offloaded: bool,
            correct: bool,
            degraded: bool,
        ) -> None:
            if rec is not None:
                rec.event(completion, "exit_taken", task.name, req.req_id,
                          value=float(exit_position))
                rec.event(completion, "complete", task.name, req.req_id)
                rec.registry.histogram("sim.latency_ms").observe(
                    (completion - req.arrival_s) * 1e3
                )
            metrics.record(
                RequestRecord(
                    task_name=task.name,
                    req_id=req.req_id,
                    arrival_s=req.arrival_s,
                    completion_s=completion,
                    deadline_s=req.deadline_s,
                    exit_position=exit_position,
                    offloaded=offloaded,
                    correct=correct,
                    dev_busy_s=dev_busy,
                    srv_busy_s=srv_busy,
                    net_busy_s=net_busy,
                    degraded=degraded,
                )
            )
            if wm is not None and req.arrival_s >= cfg.warmup_s:
                wm.observe_one(
                    task.name,
                    completion,
                    completion - req.arrival_s,
                    completion <= req.deadline_s + 1e-12,
                )
                if degraded:
                    wm.mark(task.name, completion, "degraded")

        # -- recovery ladder ---------------------------------------------------
        def attempt_failed(at: float, dev_busy: float, attempt: int, reason: str) -> None:
            if rec is not None:
                rec.event(at, "timeout", task.name, req.req_id, resource=reason)
            if policy is not None and attempt < policy.max_retries:
                counters.retries += 1
                if rec is not None:
                    rec.event(at, "retry", task.name, req.req_id, value=float(attempt + 1))
                    rec.count("sim.retries")
                sim.schedule_at(
                    at + policy.backoff_s(attempt),
                    lambda: begin_offload(dev_busy, attempt + 1),
                )
                return
            if policy is not None and policy.degrade_local:
                sim.schedule_at(at, lambda: degrade(dev_busy))
                return
            counters.lost += 1
            if rec is not None:
                rec.event(at, "lost", task.name, req.req_id)
                rec.count("sim.lost")
            if wm is not None and req.arrival_s >= cfg.warmup_s:
                wm.mark(task.name, at, "lost")

        def degrade(dev_busy: float) -> None:
            now = sim.now
            if profile.on_device_pos >= 0:
                # deepest on-device exit: backbone-to-cut and its branch were
                # already computed, so accepting its output costs nothing extra
                p_ok = float(
                    task.model.accuracy_model.correctness(
                        np.array([profile.competence]), np.array([req.difficulty])
                    )[0, 0]
                )
                p_ok = float(np.clip(p_ok, 0.01, 0.999))
                draw = derive(cfg.seed, "fault_degrade", task.name, req.req_id)
                complete(now, dev_busy, profile.on_device_pos,
                         bool(draw.random() < p_ok))
                return
            # no on-device exit kept: run the server-side remainder locally —
            # same exit, same correctness, the work just lands on the device
            start, done = dres.submit(now, demand.srv_flops)
            sim.schedule_at(
                done,
                lambda: complete(done, dev_busy + (done - start),
                                 demand.exit_position, demand.correct),
            )

        def complete(at: float, dev_busy: float, exit_position: int, correct: bool) -> None:
            counters.degraded_completions += 1
            if rec is not None:
                rec.event(at, "degraded", task.name, req.req_id)
                rec.count("sim.degraded_completions")
            finish(at, dev_busy, 0.0, 0.0, exit_position,
                   offloaded=False, correct=correct, degraded=True)

        # -- offload attempt ---------------------------------------------------
        def begin_offload(dev_busy: float, attempt: int) -> None:
            route = routes.primary
            if (
                policy is not None
                and policy.failover
                and routes.standby is not None
                and not route.reachable
            ):
                route = routes.standby
                counters.failovers += 1
                if rec is not None:
                    rec.event(sim.now, "failover", task.name, req.req_id,
                              resource=route.srv.name)
                    rec.count("sim.failovers")
            stage_uplink(route, dev_busy, attempt)

        def _stage_outcome(
            t_submit: float, done: float, crash_at: Optional[float]
        ) -> Optional[float]:
            """Failure instant of a submitted stage, or None on success.

            A crash strictly inside the service window always fails the
            stage (the work is interrupted no matter when the sender finds
            out, ``detection_s`` after the crash); a policy timeout fails it
            when the nominal finish lies beyond the deadline.  The earlier
            of the two failure instants wins.
            """
            candidates = []
            if crash_at is not None:
                candidates.append(crash_at + detection_s)
            if policy is not None and done - t_submit > policy.stage_timeout_s:
                candidates.append(t_submit + policy.stage_timeout_s)
            return min(candidates) if candidates else None

        def stage_uplink(route: _Route, dev_busy: float, attempt: int) -> None:
            now = sim.now
            lres = route.up
            if lres.is_down:
                sim.schedule_at(
                    now + detection_s,
                    lambda: attempt_failed(now + detection_s, dev_busy, attempt, "down"),
                )
                return
            start, done = lres.submit(now, demand.up_bytes)
            if route.is_primary:
                p_loss = schedule.loss_probability(task.name, now)
                if p_loss > 0.0:
                    roll = derive(
                        cfg.seed, "fault_loss", task.name, req.req_id, attempt
                    ).random()
                    if roll < p_loss:
                        # bits left the device but never arrive; without a
                        # timeout the sender only "learns" at serialization end
                        at = (
                            now + policy.stage_timeout_s
                            if policy is not None
                            else done
                        )
                        sim.schedule_at(
                            at, lambda: attempt_failed(at, dev_busy, attempt, "wire_loss")
                        )
                        return
            crash = (
                schedule.next_failure_in("link_outage", task.name, now, done)
                if route.is_primary
                else None
            )
            fail_at = _stage_outcome(now, done, crash)
            if fail_at is not None:
                sim.schedule_at(
                    fail_at, lambda: attempt_failed(fail_at, dev_busy, attempt, "uplink")
                )
                return
            if rec is not None:
                rec.event(start, "transfer_start", task.name, req.req_id, resource=lres.name)
                rec.event(done, "transfer_end", task.name, req.req_id, resource=lres.name)
            net1 = done - start
            sim.schedule_at(done, lambda: stage_server(route, dev_busy, net1, attempt))

        def stage_server(route: _Route, dev_busy: float, net1: float, attempt: int) -> None:
            now = sim.now
            sres = route.srv
            if sres.is_down:
                sim.schedule_at(
                    now + detection_s,
                    lambda: attempt_failed(now + detection_s, dev_busy, attempt, "down"),
                )
                return
            start, done = sres.submit(now, demand.srv_flops)
            crash = schedule.next_failure_in("server_crash", route.server_name, now, done)
            fail_at = _stage_outcome(now, done, crash)
            if fail_at is not None:
                sim.schedule_at(
                    fail_at, lambda: attempt_failed(fail_at, dev_busy, attempt, "server")
                )
                return
            if rec is not None:
                rec.event(start, "exec_start", task.name, req.req_id, resource=sres.name)
            srv_busy = done - start
            sim.schedule_at(
                done, lambda: stage_downlink(route, dev_busy, net1, srv_busy, attempt)
            )

        def stage_downlink(
            route: _Route, dev_busy: float, net1: float, srv_busy: float, attempt: int
        ) -> None:
            now = sim.now
            lres = route.down
            if lres.is_down:
                sim.schedule_at(
                    now + detection_s,
                    lambda: attempt_failed(now + detection_s, dev_busy, attempt, "down"),
                )
                return
            start, done = lres.submit(now, demand.down_bytes)
            crash = (
                schedule.next_failure_in("link_outage", task.name, now, done)
                if route.is_primary
                else None
            )
            fail_at = _stage_outcome(now, done, crash)
            if fail_at is not None:
                sim.schedule_at(
                    fail_at, lambda: attempt_failed(fail_at, dev_busy, attempt, "downlink")
                )
                return
            if rec is not None:
                rec.event(start, "transfer_start", task.name, req.req_id, resource=lres.name)
                rec.event(done, "transfer_end", task.name, req.req_id, resource=lres.name)
            net = net1 + (done - start)
            sim.schedule_at(
                done,
                lambda: finish(done, dev_busy, srv_busy, net, demand.exit_position,
                               offloaded=True, correct=demand.correct, degraded=False),
            )

        def stage_device() -> None:
            if rec is not None:
                rec.event(sim.now, "enqueue", task.name, req.req_id, resource=dres.name)
            start, done = dres.submit(sim.now, demand.dev_flops)
            if rec is not None:
                rec.event(start, "dequeue", task.name, req.req_id, resource=dres.name)
                rec.event(start, "exec_start", task.name, req.req_id, resource=dres.name)
            dev_busy = done - start
            if not demand.offloaded:
                sim.schedule_at(
                    done,
                    lambda: finish(done, dev_busy, 0.0, 0.0, demand.exit_position,
                                   offloaded=False, correct=demand.correct,
                                   degraded=False),
                )
                return
            sim.schedule_at(done, lambda: begin_offload(dev_busy, 0))

        stage_device()

    # -- arrivals -------------------------------------------------------------
    total = 0
    for t in tasks:
        times = arrival_times(
            t.arrival_rate, cfg.horizon_s, cfg.arrival, cfg.burst_factor,
            derive(cfg.seed, "arrivals", t.name),
        )
        diff_rng = derive(cfg.seed, "difficulty", t.name)
        difficulties = t.model.difficulty.sample(diff_rng, times.size)
        for i, (at, d) in enumerate(zip(times, difficulties)):
            req = Request(
                task_name=t.name,
                req_id=i,
                arrival_s=float(at),
                difficulty=float(np.clip(d, 0.0, 1.0)),
                deadline_s=float(at) + t.deadline_s,
            )
            sim.schedule_at(float(at), (lambda tt=t, rr=req: launch(tt, rr)))
            total += 1
    if total == 0:
        raise SimulationError("no requests generated; horizon or rates too small")

    sim.run()

    utils = {r.name: r.utilization(cfg.horizon_s) for r in device_res.values()}
    for routes in route_sets:
        for tr in routes.values():
            utils[tr.primary.srv.name] = tr.primary.srv.utilization(cfg.horizon_s)
            if tr.standby is not None:
                utils[tr.standby.srv.name] = tr.standby.srv.utilization(cfg.horizon_s)

    report = metrics.report(
        cfg.horizon_s,
        utils,
        timeline=rec.timeline if rec is not None else None,
        registry=reg,
    )
    counters.requests = total
    counters.records = len(metrics.records)
    counters.discarded_warmup = metrics.discarded
    counters.events = sim.events_processed
    report.counters = counters
    report.windowed = wm
    if not counters.conserved():
        raise SimulationError(
            f"request conservation violated: {counters.requests} launched != "
            f"{counters.records} recorded + {counters.discarded_warmup} warmup "
            f"+ {counters.lost} lost + {counters.shed} shed"
        )
    if reg is not None:
        counters.publish(reg)
    return report
