"""Drives a :class:`~repro.faults.schedule.FaultSchedule` as simulator events.

The injector is armed **before** any arrival is scheduled, so its
transitions hold lower heap sequence numbers and fire before same-time
request stages — a request arriving exactly at a crash instant already sees
the server down.  Each window becomes (at most) two events: the fault
application at ``start_s`` and, for finite windows, the recovery at
``end_s``.  ``request_loss`` windows have no resource-level effect (the
runtime consults :meth:`FaultSchedule.loss_probability` per attempt) but are
still counted and traced when applied.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from repro.errors import FaultError
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.sim.engine import Simulator
from repro.sim.metrics import SimCounters
from repro.sim.queues import FifoResource, LinkResource
from repro.telemetry.timeline import TimelineRecorder

__all__ = ["FaultInjector"]

Resource = Union[FifoResource, LinkResource]


class FaultInjector:
    """Applies scheduled faults to concrete resources at the right instants."""

    def __init__(
        self,
        schedule: FaultSchedule,
        server_resources: Mapping[str, Sequence[Resource]],
        link_resources: Mapping[str, Sequence[Resource]],
        counters: SimCounters,
        recorder: Optional[TimelineRecorder] = None,
    ) -> None:
        self.schedule = schedule
        self._servers = {k: tuple(v) for k, v in server_resources.items()}
        self._links = {k: tuple(v) for k, v in link_resources.items()}
        self.counters = counters
        self.recorder = recorder
        for e in schedule:
            self._resolve(e)  # fail fast on unknown targets

    def _resolve(self, e: FaultEvent) -> Sequence[Resource]:
        if e.kind in ("server_crash", "server_slowdown"):
            if e.target not in self._servers:
                raise FaultError(f"{e.kind} targets unknown server {e.target!r}")
            return self._servers[e.target]
        if e.kind in ("link_outage", "link_degrade"):
            if e.target not in self._links:
                raise FaultError(f"{e.kind} targets unknown task link {e.target!r}")
            return self._links[e.target]
        return ()  # request_loss: consulted per attempt, no resource action

    def arm(self, sim: Simulator) -> None:
        """Schedule every fault window's apply/revert transitions on ``sim``."""
        for e in self.schedule:
            sim.schedule_at(e.start_s, lambda ev=e: self._apply(sim, ev))
            if not e.permanent:
                sim.schedule_at(e.end_s, lambda ev=e: self._revert(sim, ev))

    # -- transitions ----------------------------------------------------------

    def _apply(self, sim: Simulator, e: FaultEvent) -> None:
        now = sim.now
        for res in self._resolve(e):
            if e.kind in ("server_crash", "link_outage"):
                res.fail(now)
            else:
                res.set_speed_factor(e.severity)
        self.counters.faults_injected += 1
        rec = self.recorder
        if rec is not None:
            rec.event(now, "fault_inject", e.target, -1, resource=e.kind,
                      value=e.severity)
            rec.count(f"sim.faults.{e.kind}")

    def _revert(self, sim: Simulator, e: FaultEvent) -> None:
        now = sim.now
        for res in self._resolve(e):
            if e.kind in ("server_crash", "link_outage"):
                res.recover(now)
            else:
                res.set_speed_factor(1.0)
        rec = self.recorder
        if rec is not None:
            rec.event(now, "fault_recover", e.target, -1, resource=e.kind)
