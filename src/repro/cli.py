"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list-models`` — the zoo, with FLOPs/params/cut counts;
- ``profile MODEL DEVICE`` — per-layer latency table;
- ``solve`` — build a scenario, run the joint optimizer, print (and
  optionally save) the plan; ``--shards N`` routes the solve through the
  sharded control plane (partitioned solves + cross-shard migration);
- ``simulate`` — solve then replay under Poisson load in the simulator;
  ``--window-s``/``--slo-target`` switch on streaming-compatible windowed
  SLO monitoring, ``--metrics-out`` saves the metrics stream for
  ``repro monitor --from``;
- ``monitor`` — live-refreshing text dashboard (SLO status, burn rates,
  per-shard health, miss-rate sparklines) over a monitored run executed
  cell-by-cell, or over a saved metrics stream (``--from``);
- ``experiment ID`` — regenerate one table/figure (E1–E18);
- ``risk`` — chance-constrained solve: compare the deterministic plan
  against the mean+κ·σ buffered plan under per-request service jitter, and
  report certification counts and realized tail-violation rates against ε;
- ``chaos`` — replay a scenario under a seed-sampled fault schedule, with
  and without the failure-recovery policy ladder;
- ``trace TARGET`` — run a scenario solve (or an experiment) with telemetry
  enabled, write a Perfetto-loadable ``trace.json`` + ``metrics.jsonl``, and
  print the solver phase breakdown.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.objectives import Objective
from repro.devices.latency import LatencyModel
from repro.devices.presets import DEVICE_PRESETS, SERVER_PRESETS, device_preset
from repro.errors import ReproError
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.models import zoo
from repro.profiling.profiler import profile_model
from repro.sim.runner import SimulationConfig, run_cells, simulate_plan
from repro.workloads.scenarios import SCENARIOS, build_scenario


def _cmd_list_models(args: argparse.Namespace) -> int:
    rows = []
    for name in zoo.available_models():
        g = zoo.build(name)
        rows.append(
            (name, g.total_flops / 1e9, g.total_params / 1e6, g.num_layers, len(g.cut_points))
        )
    print(
        format_table(
            ["model", "GFLOPs", "MParams", "layers", "cut_points"],
            rows,
            title="model zoo",
            float_fmt="{:.2f}",
        )
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    graph = zoo.build(args.model)
    device = device_preset(args.device)
    table = profile_model(
        graph, device, LatencyModel(), noise=args.noise, seed=args.seed,
        repeats=args.repeats,
    )
    print(table.summary(top=args.top))
    return 0


def _solve(args: argparse.Namespace):
    cluster, tasks = build_scenario(
        args.scenario,
        num_tasks=args.tasks,
        num_servers=args.servers,
        access_mbps=args.bandwidth,
        seed=args.seed,
    )
    objective = Objective(args.objective)
    config = JointSolverConfig(
        shards=getattr(args, "shards", 1),
        shard_by=getattr(args, "shard_by", "contiguous"),
        migration_rounds=getattr(args, "migration_rounds", 3),
        affinity=getattr(args, "affinity", "sparse"),
        nested_shards=getattr(args, "nested_shards", 0),
    )
    result = JointOptimizer(cluster, objective=objective, config=config).solve(
        tasks, seed=args.seed
    )
    return cluster, tasks, result


def _cmd_solve(args: argparse.Namespace) -> int:
    cluster, tasks, result = _solve(args)
    print(
        f"solved {len(tasks)} tasks on {cluster.num_servers} servers in "
        f"{result.iterations} iterations (converged={result.converged})"
    )
    print(result.plan.summary())
    print(f"objective: {result.plan.objective_value * 1e3:.2f} ms")
    stats = getattr(result, "shard_stats", None)
    if stats and args.shards > 1:
        print()
        print(
            format_table(
                ["shard", "servers", "tasks", "iters", "converged", "solve_s"],
                [
                    (st.shard, len(st.servers), st.num_tasks, st.iterations,
                     str(st.converged), st.solve_s)
                    for st in stats
                ],
                title=f"shard solves ({args.shard_by})",
                float_fmt="{:.3f}",
            )
        )
        print(
            f"migrations/round: {result.migration_history or [0]} "
            f"({result.perf.migrations} total over "
            f"{result.perf.migration_rounds} rounds)"
        )
    if getattr(args, "profile", False):
        import dataclasses as _dc

        print()
        print(
            format_table(
                ["counter", "value"],
                [
                    (f.name, getattr(result.perf, f.name))
                    for f in _dc.fields(result.perf)
                ],
                title="solver perf counters",
                float_fmt="{:.4f}",
            )
        )
    if args.output:
        from repro.io import save_joint_plan

        save_joint_plan(result.plan, args.output)
        print(f"plan written to {args.output}")
    return 0


def _window_config(args: argparse.Namespace):
    """The windowed-metrics config the monitoring flags ask for, or None."""
    from repro.telemetry import WindowConfig

    if args.window_s is None and args.slo_target is None:
        return None
    return WindowConfig(window_s=args.window_s if args.window_s is not None else 1.0)


def _slo_policy(args: argparse.Namespace):
    from repro.telemetry import SLOPolicy, SLOTarget

    if args.slo_target is None:
        return None
    return SLOPolicy(targets=(SLOTarget("*", args.slo_target),))


def _cmd_simulate(args: argparse.Namespace) -> int:
    cluster, tasks, result = _solve(args)
    print(result.plan.summary())
    cfg = SimulationConfig(
        horizon_s=args.horizon,
        warmup_s=min(args.horizon / 5, 5.0),
        seed=args.seed,
        streaming=args.streaming or args.cells > 1,
        chunk_size=args.chunk_size,
        max_records=args.max_records,
        sim_workers=args.sim_workers,
        windows=_window_config(args),
        service_noise=args.service_noise,
        epsilon=args.epsilon,
    )
    if args.cells > 1:
        report = run_cells(tasks, result.plan, cluster, cfg, args.cells)
    else:
        report = simulate_plan(tasks, result.plan, cluster, cfg)
    print()
    print(report.summary())
    if report.streaming:
        print(
            f"(streaming mode: {report.total_requests} requests folded into "
            f"bounded accumulators, {len(report.records)} reservoir records kept)"
        )
    if args.epsilon is not None:
        print()
        print(_epsilon_verdict(report, tasks, args.epsilon))
    if report.windowed is not None:
        from repro.telemetry import MetricsRegistry, MetricsStreamWriter, evaluate_slos

        slo = None
        policy = _slo_policy(args)
        if policy is not None:
            slo = evaluate_slos(report.windowed, policy)
            print()
            print(f"SLO ({args.slo_target * 100:g}% deadline satisfaction):")
            print(slo.format())
        if args.metrics_out:
            registry = MetricsRegistry()
            report.counters.publish(registry)
            if getattr(result, "shard_plan", None) is not None:
                result.publish_health(registry, tasks=tasks)
            with MetricsStreamWriter(args.metrics_out) as out:
                out.windowed_snapshot(args.horizon, report.windowed.snapshot())
                if slo is not None:
                    out.slo_report(args.horizon, slo.as_dict())
                out.registry_snapshot(args.horizon, registry)
            print(f"metrics stream written to {args.metrics_out}")
    return 0


def _epsilon_verdict(report, tasks, epsilon: float) -> str:
    """Per-task realized deadline-miss rate against the tail target ε."""
    rows = []
    total = 0
    missed = 0.0
    for t in tasks:
        st = report.per_task.get(t.name)
        if st is None or st.count == 0:
            rows.append((t.name, t.deadline_s * 1e3, 0, "-", "-"))
            continue
        total += st.count
        missed += st.miss_rate * st.count
        rows.append(
            (
                t.name,
                t.deadline_s * 1e3,
                st.count,
                f"{st.miss_rate * 100:.2f}",
                "yes" if st.miss_rate <= epsilon + 1e-12 else "NO",
            )
        )
    overall = missed / total if total else 0.0
    table = format_table(
        ["task", "deadline_ms", "requests", "miss_%", "<=eps"],
        rows,
        title=f"tail-violation verdict (eps={epsilon:g})",
        float_fmt="{:.1f}",
    )
    verdict = "within" if overall <= epsilon + 1e-12 else "EXCEEDS"
    return (
        f"{table}\n"
        f"overall realized violation: {overall * 100:.2f}% — {verdict} the "
        f"eps={epsilon * 100:g}% tail budget"
    )


def _print_frame(frame: str, live: bool) -> None:
    if live and sys.stdout.isatty():  # pragma: no cover - interactive only
        print("\x1b[2J\x1b[H", end="")
    print(frame)


def _monitor_replay(args: argparse.Namespace) -> int:
    """Replay a saved metrics stream as dashboard frames."""
    import time as _time

    from repro.telemetry import read_metrics_stream, render_dashboard

    events = read_metrics_stream(args.from_path)
    if not events:
        raise ReproError(f"metrics stream {args.from_path!r} is empty")
    state = {"windows": None, "slo": None, "registry": None, "t_s": 0.0}
    frames: List[dict] = []
    for ev in events:
        state["t_s"] = ev.get("t_s", state["t_s"])
        if ev["kind"] == "windows":
            state["windows"] = ev["windows"]
            frames.append(dict(state))  # window flushes delimit frames
        elif ev["kind"] == "slo":
            state["slo"] = ev["slo"]
        elif ev["kind"] == "registry":
            state["registry"] = ev["metrics"]
    if not frames or frames[-1] != state:
        frames.append(dict(state))
    if args.once:
        frames = frames[-1:]
    for i, f in enumerate(frames):
        if i:
            _time.sleep(args.refresh)
        _print_frame(
            render_dashboard(
                f["t_s"], windows=f["windows"], slo=f["slo"],
                registry=f["registry"],
                title=f"repro monitor ({args.from_path})",
            ),
            live=not args.once,
        )
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Live SLO dashboard: run a monitored fan-out, or replay a stream."""
    import dataclasses
    import time as _time

    from repro.sim.metrics import merge_reports
    from repro.sim.runner import _cell_config
    from repro.telemetry import (
        MetricsRegistry,
        MetricsStreamWriter,
        WindowedMetrics,
        evaluate_slos,
        render_dashboard,
    )

    if args.from_path:
        return _monitor_replay(args)

    cluster, tasks, result = _solve(args)
    wcfg = _window_config(args)
    policy = _slo_policy(args)
    cfg = SimulationConfig(
        horizon_s=args.horizon,
        warmup_s=min(args.horizon / 5, 5.0),
        seed=args.seed,
        streaming=True,
        chunk_size=args.chunk_size,
        windows=wcfg,
    )
    registry = MetricsRegistry()
    if getattr(result, "shard_plan", None) is not None:
        result.publish_health(registry, tasks=tasks)
    out = MetricsStreamWriter(args.metrics_out) if args.metrics_out else None
    # one traffic cell at a time: each cell carries 1/cells of the offered
    # load, so the dashboard refreshes as coverage accumulates — the same
    # decomposition run_cells fans out, just unrolled for display
    scaled = [
        dataclasses.replace(t, arrival_rate=t.arrival_rate / args.cells)
        for t in tasks
    ]
    pooled = WindowedMetrics(wcfg, cfg.horizon_s)
    reports = []
    title = f"repro monitor ({args.scenario}, {args.cells} cells)"
    try:
        for c in range(args.cells):
            rep = simulate_plan(scaled, result.plan, cluster, _cell_config(cfg, c))
            reports.append(rep)
            pooled.merge(rep.windowed)
            t_s = args.horizon * (c + 1) / args.cells  # load coverage
            slo = evaluate_slos(pooled, policy) if policy is not None else None
            if out is not None:
                out.windowed_snapshot(t_s, pooled.snapshot())
                if slo is not None:
                    out.slo_report(t_s, slo.as_dict())
                out.registry_snapshot(t_s, registry)
            if not args.once or c == args.cells - 1:
                if c and not args.once:
                    _time.sleep(args.refresh)
                _print_frame(
                    render_dashboard(
                        t_s,
                        windows=pooled.snapshot(),
                        slo=slo.as_dict() if slo is not None else None,
                        registry=registry.snapshot(),
                        title=f"{title} [{c + 1}/{args.cells}]",
                    ),
                    live=not args.once,
                )
    finally:
        if out is not None:
            out.close()
    merged = merge_reports(reports)
    print()
    print(merged.summary())
    if out is not None:
        print(f"metrics stream written to {args.metrics_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from repro.telemetry import (
        MetricsRegistry,
        TimelineRecorder,
        export_jsonl,
        export_perfetto,
        get_tracer,
        phase_breakdown,
    )

    if args.target not in EXPERIMENTS and args.target not in SCENARIOS:
        raise ReproError(
            f"unknown trace target {args.target!r}: expected an "
            f"experiment ({', '.join(sorted(EXPERIMENTS))}) or a "
            f"scenario ({', '.join(sorted(SCENARIOS))})"
        )
    os.makedirs(args.out, exist_ok=True)
    registry = MetricsRegistry()
    tracer = get_tracer().enable()
    extra_events = []
    try:
        if args.target in EXPERIMENTS:
            result = run_experiment(args.target)
            print(result.format())
        else:
            cluster, tasks = build_scenario(
                args.target,
                num_tasks=args.tasks,
                num_servers=args.servers,
                seed=args.seed,
            )
            result = JointOptimizer(cluster).solve(tasks, seed=args.seed)
            result.perf.publish(registry)
            print(
                f"solved {len(tasks)} tasks on {cluster.num_servers} servers: "
                f"objective {result.plan.objective_value * 1e3:.2f} ms"
            )
            if args.simulate:
                rec = TimelineRecorder(registry=registry)
                report = simulate_plan(
                    tasks,
                    result.plan,
                    cluster,
                    SimulationConfig(
                        horizon_s=args.horizon,
                        warmup_s=min(args.horizon / 5, 5.0),
                        seed=args.seed,
                    ),
                    recorder=rec,
                )
                print(report.summary())
                extra_events = rec.timeline.perfetto_events()
    finally:
        tracer.disable()
    spans = tracer.drain()

    trace_path = os.path.join(args.out, "trace.json")
    spans_path = os.path.join(args.out, "spans.jsonl")
    metrics_path = os.path.join(args.out, "metrics.jsonl")
    export_perfetto(spans, trace_path, extra_events=extra_events)
    export_jsonl(spans, spans_path)
    registry.export_jsonl(metrics_path)

    rows = phase_breakdown(spans, root="solve")
    if rows:
        print()
        print(
            format_table(
                ["phase", "count", "total_ms", "fraction"],
                [(name, count, total * 1e3, frac) for name, count, total, frac in rows],
                title="solve phase breakdown",
                float_fmt="{:.3f}",
            )
        )
    print()
    print(f"trace:   {trace_path}  (open at https://ui.perfetto.dev)")
    print(f"spans:   {spans_path}")
    print(f"metrics: {metrics_path}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.faults import FailurePolicy, sample_fault_schedule

    cluster, tasks = build_scenario(
        args.scenario, num_tasks=args.tasks, num_servers=args.servers, seed=args.seed
    )
    result = JointOptimizer(cluster).solve(tasks, seed=args.seed)
    plan = result.plan
    print(plan.summary())
    schedule = sample_fault_schedule(
        args.seed,
        args.horizon,
        [s.name for s in cluster.servers],
        [t.name for t in tasks],
        crash_rate_per_min=args.crash_rate,
        mean_down_s=args.mean_down,
        loss_prob=args.loss,
    )
    print(f"\nsampled fault schedule ({len(schedule)} events, seed={args.seed}):")
    for e in schedule:
        end = "inf" if e.permanent else f"{e.end_s:.2f}"
        print(f"  {e.kind:>15s} {e.target:<12s} [{e.start_s:.2f}, {end})s "
              f"severity={e.severity:.2f}")
    base = SimulationConfig(
        horizon_s=args.horizon,
        warmup_s=min(args.horizon / 5, 5.0),
        seed=args.seed,
        faults=schedule,
    )
    policy = FailurePolicy(stage_timeout_s=args.timeout, max_retries=args.retries)
    rows = []
    for name, cfg in (
        ("no-policy", base),
        ("policy", dataclasses.replace(base, failure_policy=policy)),
    ):
        rep = simulate_plan(tasks, plan, cluster, cfg)
        c = rep.counters
        rows.append(
            (name, c.records, c.lost, c.degraded_completions, c.failovers,
             c.retries, rep.mean_latency_s * 1e3, rep.percentile_latency_s(99) * 1e3,
             rep.miss_rate * 100)
        )
    print()
    print(
        format_table(
            ["mode", "completed", "lost", "degraded", "failovers", "retries",
             "mean_ms", "p99_ms", "miss_%"],
            rows,
            title=f"chaos replay ({args.scenario}, {args.horizon:.0f}s horizon)",
        )
    )
    return 0


def _cmd_risk(args: argparse.Namespace) -> int:
    """Deterministic vs chance-constrained solve under service-time jitter."""
    import dataclasses

    from repro.core.risk import RiskConfig

    cluster, tasks = build_scenario(
        args.scenario,
        num_tasks=args.tasks,
        num_servers=args.servers,
        access_mbps=args.bandwidth,
        seed=args.seed,
    )
    if args.deadline_scale != 1.0:
        tasks = [
            dataclasses.replace(t, deadline_s=t.deadline_s * args.deadline_scale)
            for t in tasks
        ]
    risk = RiskConfig(
        epsilon=args.epsilon,
        buffer=args.buffer,
        service_noise=args.service_noise,
    )
    det = JointOptimizer(cluster).solve(tasks, seed=args.seed)
    buf = JointOptimizer(
        cluster, config=JointSolverConfig(risk=risk)
    ).solve(tasks, seed=args.seed)
    print(
        f"solved {len(tasks)} tasks on {cluster.num_servers} servers; "
        f"buffer={risk.buffer}, eps={risk.epsilon:g} (kappa={risk.kappa:.2f}), "
        f"service noise sigma={risk.service_noise:g}"
    )

    sim_cfg = SimulationConfig(
        horizon_s=args.horizon,
        warmup_s=min(args.horizon / 5, 5.0),
        seed=args.seed,
        service_noise=args.service_noise,
        epsilon=args.epsilon,
    )
    arms = {}
    for arm, plan in (("deterministic", det.plan), ("buffered", buf.plan)):
        arms[arm] = simulate_plan(tasks, plan, cluster, sim_cfg)

    rows = []
    viol = {"deterministic": [0.0, 0], "buffered": [0.0, 0]}
    for t in tasks:
        det_lat = det.plan.latencies[t.name]
        buf_lat = buf.plan.latencies[t.name]
        cert = {
            "deterministic": det_lat <= t.deadline_s,
            "buffered": buf_lat <= t.deadline_s,
        }
        miss = {}
        for arm, rep in arms.items():
            st = rep.per_task.get(t.name)
            miss[arm] = st.miss_rate if st is not None and st.count else 0.0
            if cert[arm] and st is not None:
                viol[arm][0] += st.miss_rate * st.count
                viol[arm][1] += st.count
        rows.append(
            (
                t.name,
                t.deadline_s * 1e3,
                det_lat * 1e3,
                "yes" if cert["deterministic"] else "no",
                f"{miss['deterministic'] * 100:.2f}",
                buf_lat * 1e3,
                "yes" if cert["buffered"] else "no",
                f"{miss['buffered'] * 100:.2f}",
            )
        )
    print()
    print(
        format_table(
            ["task", "deadline_ms", "det_ms", "det_cert", "det_miss%",
             "buf_ms", "buf_cert", "buf_miss%"],
            rows,
            title=(
                f"certification and realized misses "
                f"({args.scenario}, {args.horizon:g}s jittered replay)"
            ),
            float_fmt="{:.1f}",
        )
    )
    print()
    for arm in ("deterministic", "buffered"):
        m, n = viol[arm]
        rate = m / n if n else 0.0
        note = ""
        if arm == "buffered":
            ok = rate <= args.epsilon + 1e-12
            note = (
                f" — {'within' if ok else 'EXCEEDS'} the "
                f"eps={args.epsilon * 100:g}% tail budget"
            )
        print(
            f"{arm:>13s}: realized violation over certified tasks "
            f"{rate * 100:.2f}% ({n} requests){note}"
        )
    print(
        "\n(det_ms is the plan's mean latency; buf_ms is the buffered "
        "mu+kappa*sigma the chance-constrained solver certifies against)"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.id)
    print(result.format())
    if args.output:
        from repro.io import save_experiment_result

        save_experiment_result(result, args.output)
        print(f"result written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joint model surgery + resource allocation in heterogeneous edge",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="list the model zoo").set_defaults(
        fn=_cmd_list_models
    )

    p = sub.add_parser("profile", help="per-layer latency profile")
    p.add_argument("model", choices=zoo.available_models())
    p.add_argument(
        "device", choices=sorted(list(DEVICE_PRESETS) + list(SERVER_PRESETS))
    )
    p.add_argument("--noise", type=float, default=0.0, help="measurement jitter sigma")
    p.add_argument(
        "--repeats", type=int, default=1,
        help="measurement repetitions per layer; >1 averages the draws and "
        "records the sample variance (tightens the profiled latency_var_s2)",
    )
    p.add_argument("--top", type=int, default=10, help="rows to show")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_profile)

    for name, help_text in (
        ("solve", "solve a scenario and print the joint plan"),
        ("simulate", "solve a scenario, then measure the plan in the simulator"),
        ("monitor", "live SLO dashboard over a monitored run or a saved "
         "metrics stream"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--scenario", choices=sorted(SCENARIOS), default="smart_city")
        p.add_argument("--tasks", type=int, default=6)
        p.add_argument("--servers", type=int, default=None)
        p.add_argument("--bandwidth", type=float, default=None, help="access Mbps")
        p.add_argument(
            "--objective",
            choices=[o.value for o in Objective],
            default=Objective.AVG_LATENCY.value,
        )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--shards", type=int, default=1,
            help="partition the servers into N shards and solve through the "
            "hierarchical coordinator (1 = centralized, bit-identical)",
        )
        p.add_argument(
            "--shard-by", choices=["contiguous", "interleave"],
            default="contiguous", help="server partition strategy",
        )
        p.add_argument(
            "--migration-rounds", type=int, default=3,
            help="cross-shard migration rounds after the shard solves",
        )
        p.add_argument(
            "--affinity", choices=["sparse", "dense"], default="sparse",
            help="cross-shard affinity index: sparse top-k shortlists "
            "(default) or the dense reference index (bit-identical plans)",
        )
        p.add_argument(
            "--nested-shards", type=int, default=0,
            help="two-level sharding: re-partition each shard (region) into "
            "up to N racks solved by a nested coordinator (0 = flat)",
        )
        if name == "solve":
            p.add_argument("--output", help="write the plan as JSON")
            p.add_argument(
                "--profile", action="store_true",
                help="print the solver PerfCounters table (candidate/latency "
                "evals, cache hits, index-build and re-solve timers)",
            )
            p.set_defaults(fn=_cmd_solve)
            continue
        p.add_argument("--horizon", type=float, default=30.0, help="sim seconds")
        p.add_argument(
            "--chunk-size", type=int, default=65536,
            help="target requests per streaming window (results identical "
            "for any value)",
        )
        p.add_argument(
            "--metrics-out",
            help="write the windowed/SLO/registry snapshots as a JSONL "
            "metrics stream (replayable with `repro monitor --from`)",
        )
        if name == "simulate":
            p.add_argument(
                "--streaming", action="store_true",
                help="bounded-memory chunked sweep (records-free report; "
                "required for very long horizons)",
            )
            p.add_argument(
                "--max-records", type=int, default=0,
                help="reservoir-sampled records to keep on streaming runs",
            )
            p.add_argument(
                "--cells", type=int, default=1,
                help="shard the workload across N independent traffic cells "
                "(implies --streaming; merges exactly)",
            )
            p.add_argument(
                "--sim-workers", type=int, default=1,
                help="worker processes for the cell fan-out",
            )
            p.add_argument(
                "--window-s", type=float, default=None,
                help="tumbling-window size for streaming-compatible SLO "
                "metrics (enables windowed monitoring)",
            )
            p.add_argument(
                "--slo-target", type=float, default=None,
                help="deadline-satisfaction SLO target in (0,1); prints the "
                "burn-rate report (implies --window-s 1.0 if unset)",
            )
            p.add_argument(
                "--service-noise", type=float, default=0.0,
                help="per-request service-time jitter sigma (mean-one "
                "log-normal per pipeline stage; 0 = deterministic replay)",
            )
            p.add_argument(
                "--epsilon", type=float, default=None,
                help="tail-violation target in (0,1); prints the per-task "
                "realized miss rate vs eps verdict table",
            )
            p.set_defaults(fn=_cmd_simulate)
        else:  # monitor
            p.add_argument(
                "--cells", type=int, default=8,
                help="traffic cells to run one at a time; the dashboard "
                "refreshes after each (each cell carries 1/N of the load)",
            )
            p.add_argument(
                "--window-s", type=float, default=1.0,
                help="tumbling-window size for the SLO metrics",
            )
            p.add_argument(
                "--slo-target", type=float, default=0.99,
                help="deadline-satisfaction SLO target in (0,1)",
            )
            p.add_argument(
                "--from", dest="from_path", default=None, metavar="FILE",
                help="replay a saved metrics stream instead of running",
            )
            p.add_argument(
                "--once", action="store_true",
                help="render only the final frame and exit (no refresh loop)",
            )
            p.add_argument(
                "--refresh", type=float, default=0.5,
                help="seconds between dashboard frames",
            )
            p.set_defaults(fn=_cmd_monitor)

    p = sub.add_parser(
        "trace",
        help="run a scenario (or experiment) with telemetry; write trace + metrics",
    )
    p.add_argument(
        "target",
        nargs="?",
        default="smart_city",
        help="scenario name or experiment ID (default: smart_city)",
    )
    p.add_argument("--tasks", type=int, default=64)
    p.add_argument("--servers", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="traces", help="output directory")
    p.add_argument(
        "--simulate", action="store_true",
        help="also replay the plan in the simulator with event timelines",
    )
    p.add_argument("--horizon", type=float, default=10.0, help="sim seconds")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "chaos",
        help="replay a scenario under a sampled fault schedule, with and "
        "without the recovery-policy ladder",
    )
    p.add_argument("--scenario", choices=sorted(SCENARIOS), default="smart_city")
    p.add_argument("--tasks", type=int, default=6)
    p.add_argument("--servers", type=int, default=None)
    p.add_argument("--horizon", type=float, default=20.0, help="sim seconds")
    p.add_argument(
        "--crash-rate", type=float, default=2.0, help="server crashes per minute"
    )
    p.add_argument(
        "--mean-down", type=float, default=3.0, help="mean outage length, seconds"
    )
    p.add_argument(
        "--loss", type=float, default=0.0,
        help="request-loss probability during the mid-horizon loss window",
    )
    p.add_argument(
        "--timeout", type=float, default=0.25, help="per-stage timeout, seconds"
    )
    p.add_argument("--retries", type=int, default=2, help="retry budget per request")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "risk",
        help="chance-constrained solve: deterministic vs mean+kappa*sigma "
        "buffered plan under service-time jitter, with certification and "
        "realized tail-violation table",
    )
    p.add_argument("--scenario", choices=sorted(SCENARIOS), default="smart_city")
    p.add_argument("--tasks", type=int, default=6)
    p.add_argument("--servers", type=int, default=None)
    p.add_argument("--bandwidth", type=float, default=None, help="access Mbps")
    p.add_argument(
        "--epsilon", type=float, default=0.05,
        help="tail-violation target in (0,1): certify P[latency > deadline] "
        "<= eps",
    )
    p.add_argument(
        "--buffer", choices=["cantelli", "gaussian"], default="cantelli",
        help="buffer rule: distribution-free Cantelli (default) or the "
        "tighter Gaussian quantile",
    )
    p.add_argument(
        "--service-noise", type=float, default=0.15,
        help="service-time jitter sigma assumed by the solver and applied "
        "per request in the replay",
    )
    p.add_argument(
        "--deadline-scale", type=float, default=1.0,
        help="scale scenario deadlines before solving (looser deadlines "
        "let both arms certify)",
    )
    p.add_argument("--horizon", type=float, default=20.0, help="sim seconds")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_risk)

    p = sub.add_parser("experiment", help="regenerate one experiment (E1-E18)")
    p.add_argument("id", choices=sorted(EXPERIMENTS, key=lambda e: int(e[1:])))
    p.add_argument("--output", help="write the tables as JSON")
    p.set_defaults(fn=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
