"""Lightweight work counters for the solver hot path.

Wall-clock alone cannot tell whether a speedup came from doing the same work
faster or from doing *less* work (cache hits, incremental re-solves), and it
is too noisy for CI gates.  :class:`PerfCounters` counts the units of work
the joint optimizer performs — closed-form share solves, per-task latency
evaluations, vectorized candidate sweeps, candidate-pipeline cache traffic —
so benchmarks and tests can assert on work done, not just elapsed time.

Counters are plain integers mutated single-threadedly within one solver
descent; parallel restarts each get their own instance, merged afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, Mapping, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.metrics import MetricsRegistry


@dataclass
class PerfCounters:
    """Work counters of one :meth:`JointOptimizer.solve` call.

    Attributes
    ----------
    solve_s:
        Wall-clock seconds of the whole solve (including refinement).
    index_build_s:
        Wall-clock seconds building the coordinator's affinity index
        (template dedup + bound sweep + shortlists); 0 for centralized
        solves, which never build one.
    resolve_dirty_s:
        Wall-clock seconds spent inside incremental shard re-solves
        (:func:`repro.core.coordinator.resolve_dirty`); 0 for full solves.
    allocate_calls:
        Share-allocation solves requested (full or incremental).
    allocate_group_solves:
        Per-server / per-link closed-form group solves actually performed;
        with incremental updates this grows far slower than
        ``allocate_calls × groups``.
    latency_evals:
        Per-task end-to-end latency evaluations (objective bookkeeping).
    candidate_evals:
        Vectorized candidate-set latency sweeps (surgery / local-search).
    candidate_cache_hits / candidate_cache_misses:
        Candidate-pipeline cache traffic attributable to this solve (only
        populated when the solver builds its own candidate sets).
    restarts:
        Independent descents run (serially or in parallel).
    shard_solves:
        Shard-local solves run by the sharded control plane (0 for a
        centralized solve).
    migration_rounds:
        Cross-shard migration rounds executed by the coordinator.
    migrations:
        Accepted cross-shard task migrations.
    """

    solve_s: float = 0.0
    index_build_s: float = 0.0
    resolve_dirty_s: float = 0.0
    allocate_calls: int = 0
    allocate_group_solves: int = 0
    latency_evals: int = 0
    candidate_evals: int = 0
    candidate_cache_hits: int = 0
    candidate_cache_misses: int = 0
    restarts: int = 0
    shard_solves: int = 0
    migration_rounds: int = 0
    migrations: int = 0

    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate ``other`` into ``self`` (returns self for chaining)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    @classmethod
    def merged(cls, by_stream: Mapping[int, "PerfCounters"]) -> "PerfCounters":
        """Order-independent merge of per-restart counters.

        Parallel restarts record into per-thread counter instances keyed by
        their deterministic seed-stream index; merging in sorted stream order
        makes the result independent of thread completion order, so serial
        and parallel runs of the same solve report byte-identical counters
        (``solve_s`` included — restart counters never carry wall time).
        """
        out = cls()
        for stream in sorted(by_stream):
            out.merge(by_stream[stream])
        return out

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """JSON-friendly snapshot (benchmark ``extra_info`` payload)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def publish(self, registry: "MetricsRegistry", prefix: str = "solver") -> None:
        """Register this solve's work into a telemetry metrics registry.

        Integer work counters become monotonic counters named
        ``{prefix}.{field}``; wall-clock ``*_s`` timers become gauges.
        The dataclass stays the in-band API — this is the bridge to the
        :mod:`repro.telemetry` layer for trace/metrics dumps.
        """
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_s"):
                registry.gauge(f"{prefix}.{f.name}").set(value)
            else:
                registry.counter(f"{prefix}.{f.name}").inc(value)
