"""Offline profiling: per-layer latency tables and latency regression.

Neurosurgeon-class systems are driven by offline per-layer profiles measured
on each device.  Here the "measurement" is the analytic per-layer predictor
(:meth:`repro.devices.latency.LatencyModel.layer_time`), optionally with
multiplicative measurement noise so regression-fitting code paths are
exercised realistically.
"""

from repro.profiling.counters import PerfCounters
from repro.profiling.profiler import profile_model
from repro.profiling.regression import LatencyRegression, fit_latency_regression
from repro.profiling.tables import LayerProfile, ProfileTable

__all__ = [
    "LatencyRegression",
    "LayerProfile",
    "PerfCounters",
    "ProfileTable",
    "fit_latency_regression",
    "profile_model",
]
