"""Latency regression: fit ``latency = a * flops + b`` per efficiency class.

Systems that cannot profile every candidate configuration fit linear
per-class latency models from a sample of layers (this is how Neurosurgeon
extrapolates to unseen layer shapes).  The fit is ordinary least squares with
a non-negativity clamp — a negative intercept would predict negative
latencies for small layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import ProfileError
from repro.profiling.tables import ProfileTable


@dataclass(frozen=True)
class LatencyRegression:
    """Per-class linear latency predictors ``a * flops + b``.

    ``rel_std`` carries one relative service-time spread per class
    (``sqrt(Σ var) / Σ mean`` over the class's rows, 0.0 for deterministic
    profiles), so variance extrapolates alongside the mean:
    :meth:`predict_std` scales the predicted mean by the class's measured
    coefficient of variation.
    """

    coefficients: Dict[str, Tuple[float, float]]  # class -> (a, b)
    r2: Dict[str, float]
    rel_std: Dict[str, float] = field(default_factory=dict)

    def predict(self, layer_class: str, flops: float) -> float:
        if layer_class not in self.coefficients:
            raise ProfileError(f"no regression for layer class {layer_class!r}")
        a, b = self.coefficients[layer_class]
        return max(0.0, a * flops + b)

    def predict_std(self, layer_class: str, flops: float) -> float:
        """Predicted service-time std of one layer (seconds)."""
        return self.predict(layer_class, flops) * self.rel_std.get(layer_class, 0.0)

    def predict_var(self, layer_class: str, flops: float) -> float:
        """Predicted service-time variance of one layer (seconds²)."""
        return self.predict_std(layer_class, flops) ** 2


def fit_latency_regression(table: ProfileTable) -> LatencyRegression:
    """Fit one (slope, intercept) pair per efficiency class in ``table``.

    Classes with a single sample get a zero-intercept slope fit; classes with
    zero total FLOPs are skipped.
    """
    groups: Dict[str, list] = {}
    for r in table.rows:
        if r.flops > 0:
            groups.setdefault(r.layer_class, []).append(
                (r.flops, r.latency_s, r.latency_var_s2)
            )
    if not groups:
        raise ProfileError(f"profile {table.model_name} has no nonzero-FLOPs rows")
    coeffs: Dict[str, Tuple[float, float]] = {}
    r2: Dict[str, float] = {}
    rel_std: Dict[str, float] = {}
    for cls, pts in groups.items():
        x = np.array([p[0] for p in pts], dtype=float)
        y = np.array([p[1] for p in pts], dtype=float)
        v = np.array([p[2] for p in pts], dtype=float)
        y_total = float(y.sum())
        rel_std[cls] = float(np.sqrt(v.sum()) / y_total) if y_total > 0 else 0.0
        if x.size == 1 or np.allclose(x, x[0]):
            a = float(y.mean() / x.mean())
            b = 0.0
        else:
            A = np.stack([x, np.ones_like(x)], axis=1)
            sol, *_ = np.linalg.lstsq(A, y, rcond=None)
            a, b = float(sol[0]), float(max(sol[1], 0.0))
        pred = a * x + b
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        coeffs[cls] = (a, b)
        r2[cls] = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LatencyRegression(coefficients=coeffs, r2=r2, rel_std=rel_std)
