"""Model × device profiler."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.devices.device import DeviceSpec
from repro.devices.latency import LatencyModel, layer_class_of
from repro.errors import ProfileError
from repro.models.graph import ModelGraph
from repro.profiling.tables import LayerProfile, ProfileTable
from repro.rng import SeedLike, as_generator


def profile_model(
    model: ModelGraph,
    device: DeviceSpec,
    latency_model: Optional[LatencyModel] = None,
    noise: float = 0.0,
    seed: SeedLike = None,
    repeats: int = 1,
) -> ProfileTable:
    """Produce the per-layer latency table of ``model`` on ``device``.

    ``noise`` adds multiplicative log-normal measurement jitter (sigma as a
    fraction, e.g. 0.05 for ~5%) — profiles on real hardware are never exact,
    and downstream regression code should cope.

    Each row also carries the service-time variance ``latency_var_s2``.
    With ``repeats=1`` (the default single measurement, draws unchanged from
    earlier releases) the variance is the analytic one of the log-normal
    jitter model, ``t²·e^{σ²}·(e^{σ²} − 1)``; with ``repeats > 1`` the
    profiler takes that many independent noisy measurements per layer and
    reports their mean and unbiased sample variance — the
    repeated-measurement path a real-hardware harness would use.  Noise-free
    profiles have zero variance either way.
    """
    if repeats < 1:
        raise ProfileError(f"repeats must be >= 1, got {repeats}")
    lm = latency_model or LatencyModel()
    rng = as_generator(seed) if noise > 0 else None
    rows = []
    for name in model.topological_order:
        layer = model.layer(name)
        flops = model.flops_of(name)
        t = lm.layer_time(layer, flops, device)
        var = 0.0
        if rng is not None and t > 0:
            if repeats > 1:
                samples = t * rng.lognormal(mean=0.0, sigma=noise, size=repeats)
                var = float(np.var(samples, ddof=1))
                t = float(samples.mean())
            else:
                # one draw cannot estimate spread; report the model's analytic
                # variance around the nominal time instead
                e = math.exp(noise**2)
                var = t * t * e * (e - 1.0)
                t *= float(rng.lognormal(mean=0.0, sigma=noise))
        rows.append(
            LayerProfile(
                layer_name=name,
                layer_type=type(layer).__name__,
                layer_class=layer_class_of(layer),
                flops=flops,
                output_bytes=model.output_bytes_of(name),
                latency_s=t,
                latency_var_s2=var,
            )
        )
    return ProfileTable(model_name=model.name, device_name=device.name, rows=rows)
