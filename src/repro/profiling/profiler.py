"""Model × device profiler."""

from __future__ import annotations

from typing import Optional

from repro.devices.device import DeviceSpec
from repro.devices.latency import LatencyModel, layer_class_of
from repro.models.graph import ModelGraph
from repro.profiling.tables import LayerProfile, ProfileTable
from repro.rng import SeedLike, as_generator


def profile_model(
    model: ModelGraph,
    device: DeviceSpec,
    latency_model: Optional[LatencyModel] = None,
    noise: float = 0.0,
    seed: SeedLike = None,
) -> ProfileTable:
    """Produce the per-layer latency table of ``model`` on ``device``.

    ``noise`` adds multiplicative log-normal measurement jitter (sigma as a
    fraction, e.g. 0.05 for ~5%) — profiles on real hardware are never exact,
    and downstream regression code should cope.
    """
    lm = latency_model or LatencyModel()
    rng = as_generator(seed) if noise > 0 else None
    rows = []
    for name in model.topological_order:
        layer = model.layer(name)
        flops = model.flops_of(name)
        t = lm.layer_time(layer, flops, device)
        if rng is not None and t > 0:
            t *= float(rng.lognormal(mean=0.0, sigma=noise))
        rows.append(
            LayerProfile(
                layer_name=name,
                layer_type=type(layer).__name__,
                layer_class=layer_class_of(layer),
                flops=flops,
                output_bytes=model.output_bytes_of(name),
                latency_s=t,
            )
        )
    return ProfileTable(model_name=model.name, device_name=device.name, rows=rows)
