"""Profile table data structures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ProfileError


@dataclass(frozen=True)
class LayerProfile:
    """One row of a per-layer profile: cost and measured latency.

    ``latency_var_s2`` is the service-time variance of the measurement
    (seconds², 0.0 for deterministic profiles) — the raw material of the
    chance-constrained solver's ``μ + κσ`` buffers.
    """

    layer_name: str
    layer_type: str
    layer_class: str  # efficiency class: conv/depthwise/dense/memory
    flops: int
    output_bytes: int
    latency_s: float
    latency_var_s2: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.output_bytes < 0 or self.latency_s < 0:
            raise ProfileError(f"negative profile entry for {self.layer_name}")
        if self.latency_var_s2 < 0:
            raise ProfileError(f"negative latency variance for {self.layer_name}")


@dataclass
class ProfileTable:
    """Per-layer profile of one (model, device) pair, in topological order."""

    model_name: str
    device_name: str
    rows: List[LayerProfile]

    def __post_init__(self) -> None:
        if not self.rows:
            raise ProfileError(
                f"empty profile for ({self.model_name}, {self.device_name})"
            )

    @property
    def total_latency_s(self) -> float:
        return float(sum(r.latency_s for r in self.rows))

    @property
    def total_flops(self) -> int:
        return int(sum(r.flops for r in self.rows))

    @property
    def total_latency_var_s2(self) -> float:
        """Variance of the end-to-end latency (layers measured independently)."""
        return float(sum(r.latency_var_s2 for r in self.rows))

    def latencies(self) -> np.ndarray:
        return np.array([r.latency_s for r in self.rows])

    def latency_vars(self) -> np.ndarray:
        return np.array([r.latency_var_s2 for r in self.rows])

    def flops(self) -> np.ndarray:
        return np.array([r.flops for r in self.rows], dtype=float)

    def output_bytes(self) -> np.ndarray:
        return np.array([r.output_bytes for r in self.rows], dtype=float)

    def by_class(self) -> Dict[str, float]:
        """Total latency per efficiency class (where the time goes)."""
        out: Dict[str, float] = {}
        for r in self.rows:
            out[r.layer_class] = out.get(r.layer_class, 0.0) + r.latency_s
        return out

    def summary(self, top: int = 10) -> str:
        """The ``top`` most expensive layers, for reports."""
        ranked = sorted(self.rows, key=lambda r: -r.latency_s)[:top]
        lines = [
            f"profile {self.model_name} on {self.device_name}: "
            f"{self.total_latency_s * 1e3:.2f} ms total"
        ]
        for r in ranked:
            lines.append(
                f"  {r.layer_name:<24s} {r.layer_class:<10s} "
                f"{r.latency_s * 1e3:8.3f} ms  {r.flops / 1e6:10.1f} MFLOPs"
            )
        return "\n".join(lines)
