"""Heterogeneous device substrate: specs, latency prediction, energy.

The paper's testbed — embedded end devices and edge servers of widely varying
capability — is replaced here by :class:`DeviceSpec` objects whose effective
throughput (peak FLOP/s × per-layer-class efficiency) is calibrated against
public Neurosurgeon/Edgent-class measurements.  The optimizer only ever sees
latencies produced by :class:`LatencyModel`, so the substitution is invisible
to the algorithms under study.
"""

from repro.devices.cluster import EdgeCluster
from repro.devices.device import DeviceSpec
from repro.devices.energy import EnergyModel
from repro.devices.latency import LatencyModel
from repro.devices.presets import (
    DEVICE_PRESETS,
    SERVER_PRESETS,
    device_preset,
    heterogeneous_servers,
)

__all__ = [
    "DEVICE_PRESETS",
    "DeviceSpec",
    "EdgeCluster",
    "EnergyModel",
    "LatencyModel",
    "SERVER_PRESETS",
    "device_preset",
    "heterogeneous_servers",
]
