"""Device presets calibrated to public edge-inference measurements.

Effective throughputs (peak × conv efficiency) are chosen so single-model
latencies land in the ranges reported by Neurosurgeon / Edgent / LEIME-class
papers — e.g. VGG-16 in the low seconds on a Raspberry Pi-class board,
tens of milliseconds on a discrete-GPU edge server.  Absolute fidelity is
not required (see DESIGN.md §3); *relative* capability is what shapes the
optimization landscape.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.device import DeviceSpec
from repro.errors import ConfigError
from repro.rng import SeedLike, as_generator

#: End devices (request sources).
DEVICE_PRESETS: Dict[str, DeviceSpec] = {
    # ~2.4 GFLOP/s effective on conv: VGG16 ≈ 13 s, MobileNetV2 ≈ 0.26 s
    "raspberry_pi3": DeviceSpec(
        name="raspberry_pi3",
        kind="end_device",
        peak_flops=4.3e9,
        overhead_s=5e-3,
        memory_bytes=1e9,
        idle_power_w=1.9,
        busy_power_w=5.1,
        tx_power_w=0.9,
    ),
    # ~7 GFLOP/s effective
    "raspberry_pi4": DeviceSpec(
        name="raspberry_pi4",
        kind="end_device",
        peak_flops=13e9,
        overhead_s=4e-3,
        memory_bytes=4e9,
        idle_power_w=2.7,
        busy_power_w=6.4,
        tx_power_w=1.0,
    ),
    # small GPU: ~65 GFLOP/s effective fp32 in practice
    "jetson_nano": DeviceSpec(
        name="jetson_nano",
        kind="end_device",
        peak_flops=120e9,
        overhead_s=3e-3,
        memory_bytes=4e9,
        idle_power_w=2.0,
        busy_power_w=10.0,
        tx_power_w=1.2,
    ),
    # mid-range phone SoC
    "smartphone": DeviceSpec(
        name="smartphone",
        kind="end_device",
        peak_flops=40e9,
        overhead_s=3e-3,
        memory_bytes=6e9,
        idle_power_w=1.0,
        busy_power_w=4.0,
        tx_power_w=1.5,
    ),
}

#: Edge/cloud servers (shared by many tasks).
SERVER_PRESETS: Dict[str, DeviceSpec] = {
    # many-core Xeon, fp32 AVX: ~250 GFLOP/s effective
    "edge_cpu": DeviceSpec(
        name="edge_cpu",
        kind="server",
        peak_flops=450e9,
        overhead_s=1.5e-3,
        memory_bytes=64e9,
        idle_power_w=80.0,
        busy_power_w=220.0,
    ),
    # embedded server GPU (Jetson TX2 / Xavier class)
    "edge_tx2": DeviceSpec(
        name="edge_tx2",
        kind="server",
        peak_flops=650e9,
        overhead_s=2e-3,
        memory_bytes=8e9,
        idle_power_w=5.0,
        busy_power_w=15.0,
    ),
    # discrete-GPU edge box (GTX 1080 Ti class): ~3.5 TFLOP/s effective
    "edge_gpu": DeviceSpec(
        name="edge_gpu",
        kind="server",
        peak_flops=6.5e12,
        overhead_s=1e-3,
        memory_bytes=32e9,
        idle_power_w=60.0,
        busy_power_w=280.0,
    ),
    # datacenter GPU reachable over a WAN hop (V100 class)
    "cloud_gpu": DeviceSpec(
        name="cloud_gpu",
        kind="server",
        peak_flops=14e12,
        overhead_s=1e-3,
        memory_bytes=128e9,
        idle_power_w=70.0,
        busy_power_w=300.0,
    ),
}


def device_preset(name: str) -> DeviceSpec:
    """Look up an end-device or server preset by name."""
    if name in DEVICE_PRESETS:
        return DEVICE_PRESETS[name]
    if name in SERVER_PRESETS:
        return SERVER_PRESETS[name]
    raise ConfigError(
        f"unknown preset {name!r}; devices: {sorted(DEVICE_PRESETS)}, "
        f"servers: {sorted(SERVER_PRESETS)}"
    )


def heterogeneous_servers(
    n: int, spread: float = 4.0, base: str = "edge_cpu", seed: SeedLike = None
) -> List[DeviceSpec]:
    """Generate ``n`` servers with capabilities log-uniform in ``[1, spread]×base``.

    ``spread`` is the heterogeneity knob of experiment E10: 1.0 produces a
    homogeneous cluster; larger values stretch the fastest-to-slowest ratio.
    """
    if n <= 0:
        raise ConfigError(f"need n >= 1 servers, got {n}")
    if spread < 1.0:
        raise ConfigError(f"spread must be >= 1, got {spread}")
    proto = SERVER_PRESETS[base] if base in SERVER_PRESETS else device_preset(base)
    rng = as_generator(seed)
    if n == 1:
        factors = [spread**0.5]
    else:
        # deterministic spacing + small jitter: covers [1, spread] evenly
        import numpy as np

        grid = np.logspace(0.0, np.log10(spread), n)
        jitter = rng.uniform(0.9, 1.1, size=n)
        factors = list(grid * jitter)
    return [
        DeviceSpec(
            name=f"{base}_{i}",
            kind="server",
            peak_flops=proto.peak_flops * f,
            efficiency=dict(proto.efficiency),
            overhead_s=proto.overhead_s,
            memory_bytes=proto.memory_bytes,
            idle_power_w=proto.idle_power_w,
            busy_power_w=proto.busy_power_w,
            tx_power_w=proto.tx_power_w,
        )
        for i, f in enumerate(factors)
    ]
