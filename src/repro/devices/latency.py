"""Profile-driven latency prediction.

:class:`LatencyModel` converts FLOP counts into seconds on a given device,
optionally scaled by a *compute share* — the fraction of the device's
capacity the resource allocator granted to this task (servers are shared;
end devices usually run one task at share 1).

Two granularities are provided:

- ``segment_time``: aggregate, used by the optimizer's inner loop — one
  blended-throughput division plus the per-invocation overhead.  This is the
  hot path (called O(tasks × plans × iterations) times) and is pure float
  arithmetic.
- ``layer_time``: per-layer, used by the offline profiler to produce the
  per-layer latency tables (experiment E1) exactly the way Neurosurgeon-class
  systems measure them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.devices.device import DeviceSpec
from repro.errors import ConfigError
from repro.models.layers import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    Layer,
    LocalResponseNorm,
    Pool,
    Softmax,
)

#: Layer type -> efficiency class used for per-layer predictions.
_LAYER_CLASS = {
    Conv2D: "conv",
    DepthwiseConv2D: "depthwise",
    Dense: "dense",
    Activation: "memory",
    BatchNorm: "memory",
    Pool: "memory",
    GlobalAvgPool: "memory",
    LocalResponseNorm: "memory",
    Softmax: "memory",
    Add: "memory",
    Concat: "memory",
    Flatten: "memory",
    Dropout: "memory",
    Input: "memory",
}


def layer_class_of(layer: Layer) -> str:
    """Efficiency class for a layer instance."""
    for typ, cls in _LAYER_CLASS.items():
        if isinstance(layer, typ):
            return cls
    return "memory"


@dataclass(frozen=True)
class LatencyModel:
    """Latency predictor over :class:`DeviceSpec` objects.

    ``flops_mix`` sets the blended-throughput assumption of
    :meth:`segment_time`; the default matches conv-dominated CNNs.
    """

    flops_mix: Optional[Mapping[str, float]] = None

    def segment_time(
        self, flops: float, device: DeviceSpec, share: float = 1.0
    ) -> float:
        """Seconds to execute ``flops`` on ``device`` at the given share.

        ``share`` in (0, 1] models processor-sharing allocation; the fixed
        invocation overhead is *not* scaled by share (dispatch cost is paid
        at full speed regardless of the quota).
        """
        if share <= 0.0 or share > 1.0 + 1e-12:
            raise ConfigError(f"compute share must be in (0,1], got {share}")
        if flops < 0:
            raise ConfigError(f"negative flops: {flops}")
        if flops == 0:
            return 0.0
        rate = device.blended_flops(self.flops_mix) * share
        return flops / rate + device.overhead_s

    def segment_time_vec(
        self, flops: np.ndarray, device: DeviceSpec, share: float = 1.0
    ) -> np.ndarray:
        """Vectorized :meth:`segment_time` over an array of FLOP counts."""
        if share <= 0.0 or share > 1.0 + 1e-12:
            raise ConfigError(f"compute share must be in (0,1], got {share}")
        flops = np.asarray(flops, dtype=float)
        if np.any(flops < 0):
            raise ConfigError("negative flops in vector")
        rate = device.blended_flops(self.flops_mix) * share
        t = flops / rate + device.overhead_s
        return np.where(flops == 0.0, 0.0, t)

    def layer_time(self, layer: Layer, flops: float, device: DeviceSpec) -> float:
        """Seconds for one layer, using its class-specific efficiency.

        No invocation overhead here — that is per segment, not per layer.
        """
        if flops <= 0:
            return 0.0
        return flops / device.effective_flops(layer_class_of(layer))

    def throughput(self, device: DeviceSpec, share: float = 1.0) -> float:
        """Blended FLOP/s available to a task at the given share."""
        return device.blended_flops(self.flops_mix) * share
