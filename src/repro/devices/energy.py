"""Per-inference energy accounting (secondary metric, experiment E13).

Energy for one request seen from the *end device* — the battery-constrained
party — decomposes into compute energy while the head runs locally, radio
energy while transmitting the boundary activation, and idle energy while
waiting for the server's reply.  Server-side energy is reported separately
(it matters for operator cost, not battery).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.device import DeviceSpec
from repro.errors import ConfigError


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent per phase of one inference, device perspective."""

    compute_j: float
    tx_j: float
    idle_wait_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.tx_j + self.idle_wait_j


@dataclass(frozen=True)
class EnergyModel:
    """Maps phase durations to joules using :class:`DeviceSpec` power draw."""

    def device_energy(
        self,
        device: DeviceSpec,
        compute_s: float,
        tx_s: float,
        wait_s: float,
    ) -> EnergyBreakdown:
        """Energy of one request on the end device.

        ``compute_s``: local head execution time; ``tx_s``: time on air
        (upload + download); ``wait_s``: time blocked on the remote side.
        """
        for label, v in (("compute_s", compute_s), ("tx_s", tx_s), ("wait_s", wait_s)):
            if v < 0:
                raise ConfigError(f"negative duration {label}={v}")
        return EnergyBreakdown(
            compute_j=device.busy_power_w * compute_s,
            tx_j=(device.idle_power_w + device.tx_power_w) * tx_s,
            idle_wait_j=device.idle_power_w * wait_s,
        )

    def server_energy(self, server: DeviceSpec, compute_s: float, share: float = 1.0) -> float:
        """Joules attributable to one request on a shared server.

        A request occupying ``share`` of the machine for ``compute_s``
        seconds is charged its share of the dynamic power (busy - idle)
        plus its share of idle power.
        """
        if compute_s < 0:
            raise ConfigError(f"negative compute_s {compute_s}")
        if not (0.0 < share <= 1.0 + 1e-12):
            raise ConfigError(f"share must be in (0,1], got {share}")
        dynamic = (server.busy_power_w - server.idle_power_w) * share
        return (dynamic + server.idle_power_w * share) * compute_s
