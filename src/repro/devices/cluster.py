"""The heterogeneous edge cluster: devices + servers + access topology.

:class:`EdgeCluster` is the static "physical world" handed to optimizers and
to the simulator: who exists, how fast each party is, and which link a task
uses for each candidate server.  It is deliberately free of any workload or
policy state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.devices.device import DeviceSpec
from repro.errors import ConfigError
from repro.network.link import Link
from repro.network.topology import StarTopology


@dataclass
class EdgeCluster:
    """A set of end devices and servers joined by a star topology."""

    end_devices: List[DeviceSpec]
    servers: List[DeviceSpec]
    topology: StarTopology

    def __post_init__(self) -> None:
        if not self.end_devices:
            raise ConfigError("cluster needs at least one end device")
        if not self.servers:
            raise ConfigError("cluster needs at least one server")
        for d in self.end_devices:
            if d.is_server():
                raise ConfigError(f"{d.name} is a server, placed in end_devices")
        for s in self.servers:
            if not s.is_server():
                raise ConfigError(f"{s.name} is an end device, placed in servers")
        dn = [d.name for d in self.end_devices]
        sn = [s.name for s in self.servers]
        if len(set(dn)) != len(dn) or len(set(sn)) != len(sn):
            raise ConfigError("duplicate device/server names in cluster")
        if set(self.topology.device_names) != set(dn) or set(
            self.topology.server_names
        ) != set(sn):
            raise ConfigError("topology endpoints do not match cluster members")
        self._by_name: Dict[str, DeviceSpec] = {
            x.name: x for x in list(self.end_devices) + list(self.servers)
        }

    @classmethod
    def star(
        cls,
        end_devices: Sequence[DeviceSpec],
        servers: Sequence[DeviceSpec],
        link: Link,
        per_server_scale: Optional[Dict[str, float]] = None,
    ) -> "EdgeCluster":
        """Uniform-access-link cluster (the common experimental setup)."""
        topo = StarTopology.uniform(
            [d.name for d in end_devices],
            [s.name for s in servers],
            link,
            per_server_scale,
        )
        return cls(list(end_devices), list(servers), topo)

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def num_devices(self) -> int:
        return len(self.end_devices)

    def by_name(self, name: str) -> DeviceSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(f"unknown cluster member {name!r}") from None

    def link(self, device_name: str, server_name: str) -> Link:
        return self.topology.link(device_name, server_name)

    def server_index(self, name: str) -> int:
        for i, s in enumerate(self.servers):
            if s.name == name:
                return i
        raise ConfigError(f"unknown server {name!r}")

    def with_topology(self, topology: StarTopology) -> "EdgeCluster":
        """A copy with the topology replaced (bandwidth dynamics)."""
        return EdgeCluster(list(self.end_devices), list(self.servers), topology)
