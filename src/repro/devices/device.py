"""Device specifications.

A :class:`DeviceSpec` captures everything the latency/energy models need:
peak floating-point throughput, per-layer-class efficiency factors (real
devices achieve very different fractions of peak on conv vs. dense vs.
depthwise layers — depthwise convolutions are notoriously memory-bound), a
fixed per-invocation framework overhead, and power draw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Optional

from repro.errors import ConfigError

#: Layer-class keys understood by the efficiency map.
LAYER_CLASSES = ("conv", "depthwise", "dense", "memory")

#: Default fraction of peak FLOP/s achieved per layer class.  Conv layers are
#: compute-dense and come closest to peak; depthwise and elementwise/memory
#: layers are bandwidth-bound and fall far short — the well-known reason
#: MobileNets underperform their FLOP counts on GPUs.
DEFAULT_EFFICIENCY: Mapping[str, float] = MappingProxyType(
    {"conv": 0.55, "depthwise": 0.15, "dense": 0.35, "memory": 0.08}
)


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one compute device.

    Parameters
    ----------
    name:
        Unique identifier within a cluster.
    kind:
        ``"end_device"`` (where requests originate) or ``"server"``.
    peak_flops:
        Peak FLOP/s of the device (fp32).
    efficiency:
        Layer-class -> achieved fraction of peak (see :data:`LAYER_CLASSES`).
    overhead_s:
        Fixed per-invocation latency (framework dispatch, memcpy, kernel
        launch); paid once per executed model *segment*.
    memory_bytes:
        Usable RAM for weights + activations (feasibility checks).
    idle_power_w / busy_power_w:
        Power draw when idle / computing (for the energy model).
    tx_power_w:
        Extra radio/NIC power while transmitting.
    """

    name: str
    kind: str = "end_device"
    peak_flops: float = 10e9
    efficiency: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_EFFICIENCY))
    overhead_s: float = 2e-3
    memory_bytes: float = 1e9
    idle_power_w: float = 2.0
    busy_power_w: float = 5.0
    tx_power_w: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("end_device", "server"):
            raise ConfigError(f"{self.name}: kind must be end_device|server, got {self.kind}")
        if self.peak_flops <= 0:
            raise ConfigError(f"{self.name}: peak_flops must be positive")
        if self.overhead_s < 0:
            raise ConfigError(f"{self.name}: overhead_s must be >= 0")
        for cls in LAYER_CLASSES:
            eff = self.efficiency.get(cls)
            if eff is None or not (0.0 < eff <= 1.0):
                raise ConfigError(
                    f"{self.name}: efficiency[{cls!r}] must be in (0,1], got {eff}"
                )
        if self.busy_power_w < self.idle_power_w:
            raise ConfigError(f"{self.name}: busy power below idle power")

    def effective_flops(self, layer_class: str = "conv") -> float:
        """Achieved FLOP/s on layers of the given class."""
        try:
            return self.peak_flops * self.efficiency[layer_class]
        except KeyError:
            raise ConfigError(
                f"{self.name}: unknown layer class {layer_class!r}; "
                f"expected one of {LAYER_CLASSES}"
            ) from None

    def blended_flops(self, mix: Optional[Mapping[str, float]] = None) -> float:
        """Throughput under a FLOPs mix (fractions per layer class).

        The blended rate is the harmonic mean weighted by the share of FLOPs
        each class contributes — time adds, not rate.  Default mix models a
        conv-dominated CNN (90% conv / 5% dense / 5% memory-bound).
        """
        if mix is None:
            mix = {"conv": 0.90, "dense": 0.05, "memory": 0.05}
        total = sum(mix.values())
        if total <= 0:
            raise ConfigError(f"{self.name}: empty FLOPs mix")
        inv = sum(
            (share / total) / self.effective_flops(cls) for cls, share in mix.items() if share > 0
        )
        return 1.0 / inv

    def is_server(self) -> bool:
        return self.kind == "server"
