"""Unit conventions and conversion helpers.

The library uses a single canonical unit per physical quantity so that numbers
can be combined without conversion at call sites:

============  =====================  ==========================================
Quantity      Canonical unit         Notes
============  =====================  ==========================================
time          seconds (s)            latencies, deadlines, service times
compute       FLOPs (multiply-add    layer costs; device speeds in FLOP/s
              counted as 2 FLOPs)
data size     bytes (B)              activation/weight sizes; float32 = 4 B
bandwidth     bytes per second       links store B/s; helpers accept Mbps
energy        joules (J)
power         watts (W)
============  =====================  ==========================================

Helpers below convert common engineering units into the canonical ones.  They
are trivial on purpose: keeping every conversion in one module makes unit bugs
grep-able.
"""

from __future__ import annotations

#: Bytes occupied by one float32 activation element.
FLOAT32_BYTES = 4

# --- time ---------------------------------------------------------------


def ms(value: float) -> float:
    """Milliseconds -> seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Microseconds -> seconds."""
    return value * 1e-6


def to_ms(seconds: float) -> float:
    """Seconds -> milliseconds (for reporting)."""
    return seconds * 1e3


# --- compute ------------------------------------------------------------


def gflops(value: float) -> float:
    """GFLOPs -> FLOPs (a count, not a rate)."""
    return value * 1e9


def mflops(value: float) -> float:
    """MFLOPs -> FLOPs."""
    return value * 1e6


def gflops_per_s(value: float) -> float:
    """GFLOP/s -> FLOP/s (a rate)."""
    return value * 1e9


def tflops_per_s(value: float) -> float:
    """TFLOP/s -> FLOP/s."""
    return value * 1e12


# --- data size ----------------------------------------------------------


def kib(value: float) -> float:
    """KiB -> bytes."""
    return value * 1024.0


def mib(value: float) -> float:
    """MiB -> bytes."""
    return value * 1024.0 * 1024.0


def to_mib(nbytes: float) -> float:
    """Bytes -> MiB (for reporting)."""
    return nbytes / (1024.0 * 1024.0)


# --- bandwidth ----------------------------------------------------------


def mbps(value: float) -> float:
    """Megabits per second -> bytes per second.

    Network bandwidths are quoted in Mbit/s throughout the experiments (as in
    the paper family's evaluations); links store bytes/s.
    """
    return value * 1e6 / 8.0


def gbps(value: float) -> float:
    """Gigabits per second -> bytes per second."""
    return value * 1e9 / 8.0


def to_mbps(bytes_per_s: float) -> float:
    """Bytes/s -> Mbit/s (for reporting)."""
    return bytes_per_s * 8.0 / 1e6
