"""repro — joint DNN model surgery + resource allocation in heterogeneous edge.

A from-scratch reproduction of *"Enabling Latency-Sensitive DNN Inference via
Joint Optimization of Model Surgery and Resource Allocation in Heterogeneous
Edge"* (Huang, Dong, Shen, Wang, Guo, Fu — ICPP 2022).  See ``DESIGN.md`` for
the provenance note (the paper body was unavailable; the system is
reconstructed from the title/venue/authors and the authors' closely related
LEIME work) and for the full system inventory.

Quickstart::

    from repro import build_scenario, JointOptimizer, simulate_plan

    cluster, tasks = build_scenario("smart_city", num_tasks=6, seed=0)
    result = JointOptimizer(cluster).solve(tasks)
    print(result.plan.summary())
    report = simulate_plan(tasks, result.plan, cluster)
    print(report.summary())

Package map:

- :mod:`repro.models` — layer DAGs, model zoo, multi-exit transform
- :mod:`repro.devices` / :mod:`repro.network` — heterogeneous edge substrate
- :mod:`repro.profiling` — per-layer latency profiles
- :mod:`repro.core` — the joint optimizer (the paper's contribution)
- :mod:`repro.baselines` — comparison strategies
- :mod:`repro.sim` — discrete-event simulator (testbed stand-in)
- :mod:`repro.workloads` — scenarios and generators
- :mod:`repro.experiments` — every table/figure's regeneration harness
"""

from repro.core import (
    AdmissionResult,
    JointOptimizer,
    JointPlan,
    JointResult,
    JointSolverConfig,
    Objective,
    SurgeryPlan,
    TaskSpec,
    OnlineController,
    admit_tasks,
    best_response_offloading,
    build_candidates,
    exhaustive_optimum,
)
from repro.devices import (
    DeviceSpec,
    EdgeCluster,
    EnergyModel,
    LatencyModel,
    device_preset,
    heterogeneous_servers,
)
from repro.models import MultiExitModel, insert_exits
from repro.models import zoo
from repro.network import Link
from repro.sim import SimulationConfig, simulate_plan
from repro.workloads import build_scenario, random_scenario

__version__ = "1.0.0"

__all__ = [
    "AdmissionResult",
    "DeviceSpec",
    "EdgeCluster",
    "EnergyModel",
    "JointOptimizer",
    "JointPlan",
    "JointResult",
    "JointSolverConfig",
    "LatencyModel",
    "Link",
    "MultiExitModel",
    "Objective",
    "OnlineController",
    "SimulationConfig",
    "SurgeryPlan",
    "TaskSpec",
    "__version__",
    "admit_tasks",
    "best_response_offloading",
    "build_candidates",
    "build_scenario",
    "device_preset",
    "exhaustive_optimum",
    "heterogeneous_servers",
    "insert_exits",
    "random_scenario",
    "simulate_plan",
    "zoo",
]
