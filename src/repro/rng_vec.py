"""Vectorized per-request RNG draws: NumPy's seeding path as array math.

The simulator's reproducibility contract derives one named child stream per
request (``derive(seed, "exec", task, req_id)``) and draws a single uniform
from it.  Constructing a :class:`numpy.random.SeedSequence` plus a PCG64
generator per request costs tens of microseconds — by far the dominant
per-request cost once the event loop itself is gone.

This module reimplements exactly that pipeline as vectorized ``uint32`` /
``uint64`` array arithmetic over a batch of request ids:

1. SeedSequence entropy pooling (the 4-word hash pool with the
   ``INIT_A``/``MULT_A``/``INIT_B``/``MULT_B`` mixing constants);
2. ``generate_state(4, uint64)`` — the 256-bit PCG64 seed material;
3. PCG64 seeding (two LCG steps over 128-bit state) and the first XSL-RR
   output, converted to a double exactly like ``Generator.random()``.

The result is **bit-identical** to
``np.random.default_rng(np.random.SeedSequence([*material, req_id])).random()``
for every request id, at a few nanoseconds per id instead of tens of
microseconds.  Because the implementation shadows NumPy internals, a
self-test (:func:`vectorized_matches_numpy`) validates it against NumPy on
first use; on any mismatch (e.g. a future NumPy changing its seeding
algorithm) :func:`first_uniforms` silently falls back to the per-id loop, so
correctness never depends on the shadow implementation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["first_uniforms", "first_uniforms_looped", "vectorized_matches_numpy"]

_U32 = np.uint32
_U64 = np.uint64
_MASK32 = _U64(0xFFFFFFFF)

# SeedSequence mixing constants (numpy/random/bit_generator.pyx).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_MULT_L = _U32(0xCA01F9DD)
_MIX_MULT_R = _U32(0x4973F715)
_XSHIFT = _U32(16)
_POOL_SIZE = 4

# PCG64 LCG multiplier (pcg64.h: PCG_DEFAULT_MULTIPLIER_128).
_PCG_MULT_HI = _U64(0x2360ED051FC65DA4)
_PCG_MULT_LO = _U64(0x4385DF649FCCF645)

#: Tri-state self-test result: None = not yet run, then True/False.
_VERIFIED: Optional[bool] = None


def _int_to_u32_words(n: int) -> List[int]:
    """NumPy's ``_int_to_uint32_array``: little-endian 32-bit limbs."""
    if n < 0:
        raise ValueError(f"entropy values must be non-negative, got {n}")
    if n == 0:
        return [0]
    words = []
    while n > 0:
        words.append(n & 0xFFFFFFFF)
        n >>= 32
    return words


def _material_words(material: Sequence[int]) -> List[int]:
    words: List[int] = []
    for value in material:
        words.extend(_int_to_u32_words(int(value)))
    return words


class _HashConst:
    """Scalar hash constant; its evolution is data-independent."""

    __slots__ = ("v",)

    def __init__(self, init: int) -> None:
        self.v = init

    def step(self, mult: int) -> int:
        out = self.v
        self.v = (self.v * mult) & 0xFFFFFFFF
        return out


def _hashmix(value: np.ndarray, hc: _HashConst) -> np.ndarray:
    value = value ^ _U32(hc.v)
    hc.step(_MULT_A)
    value = value * _U32(hc.v)
    return value ^ (value >> _XSHIFT)


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = (x * _MIX_MULT_L) - (y * _MIX_MULT_R)
    return result ^ (result >> _XSHIFT)


def _pool_state(prefix_words: Sequence[int], ids: np.ndarray) -> List[np.ndarray]:
    """SeedSequence entropy pool for ``prefix_words + [id]`` per id."""
    n = ids.shape[0]
    entropy: List[np.ndarray] = [
        np.full(n, w, dtype=_U32) for w in prefix_words
    ]
    entropy.append(ids.astype(_U32))
    ne = len(entropy)
    hc = _HashConst(_INIT_A)
    zeros = None
    pool: List[np.ndarray] = []
    for i in range(_POOL_SIZE):
        if i < ne:
            src = entropy[i]
        else:
            if zeros is None:
                zeros = np.zeros(n, dtype=_U32)
            src = zeros
        pool.append(_hashmix(src, hc))
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                pool[i_dst] = _mix(pool[i_dst], _hashmix(pool[i_src], hc))
    for i_src in range(_POOL_SIZE, ne):
        for i_dst in range(_POOL_SIZE):
            pool[i_dst] = _mix(pool[i_dst], _hashmix(entropy[i_src], hc))
    return pool


def _generate_state_u64(pool: List[np.ndarray]) -> List[np.ndarray]:
    """``SeedSequence.generate_state(4, uint64)`` on the mixed pool."""
    hc = _HashConst(_INIT_B)
    words: List[np.ndarray] = []
    for i_dst in range(8):
        data = pool[i_dst % _POOL_SIZE]
        data = data ^ _U32(hc.v)
        hc.step(_MULT_B)
        data = data * _U32(hc.v)
        words.append(data ^ (data >> _XSHIFT))
    out: List[np.ndarray] = []
    for k in range(4):
        lo = words[2 * k].astype(_U64)
        hi = words[2 * k + 1].astype(_U64)
        out.append(lo | (hi << _U64(32)))
    return out


def _mul64_wide(x: np.ndarray, y: np.ndarray):
    """64x64 -> 128-bit product as (hi, lo) uint64 arrays."""
    x0 = x & _MASK32
    x1 = x >> _U64(32)
    y0 = y & _MASK32
    y1 = y >> _U64(32)
    ll = x0 * y0
    m1 = x1 * y0
    m2 = x0 * y1
    t = (ll >> _U64(32)) + (m1 & _MASK32) + (m2 & _MASK32)
    lo = (t << _U64(32)) | (ll & _MASK32)
    hi = x1 * y1 + (m1 >> _U64(32)) + (m2 >> _U64(32)) + (t >> _U64(32))
    return hi, lo


def _add128(ah, al, bh, bl):
    lo = al + bl
    carry = (lo < al).astype(_U64)
    return ah + bh + carry, lo


def _mul128_const(sh: np.ndarray, sl: np.ndarray):
    """(sh:sl) * PCG multiplier, low 128 bits."""
    hi, lo = _mul64_wide(sl, _PCG_MULT_LO)
    hi = hi + sl * _PCG_MULT_HI + sh * _PCG_MULT_LO
    return hi, lo


def first_uniforms_looped(material: Sequence[int], ids: np.ndarray) -> np.ndarray:
    """Reference path: one SeedSequence + PCG64 per id (exact by definition)."""
    prefix = [int(v) for v in material]
    out = np.empty(len(ids), dtype=np.float64)
    for i, req in enumerate(np.asarray(ids).tolist()):
        seq = np.random.SeedSequence(prefix + [int(req)])
        out[i] = np.random.default_rng(seq).random()
    return out


def _first_uniforms_vec(material: Sequence[int], ids: np.ndarray) -> np.ndarray:
    prefix_words = _material_words(material)
    pool = _pool_state(prefix_words, ids)
    w = _generate_state_u64(pool)
    seed_hi, seed_lo = w[0], w[1]
    seq_hi, seq_lo = w[2], w[3]
    # pcg64_srandom_r: inc = (initseq << 1) | 1; state = (inc + initstate)
    # stepped once; random() steps once more and applies XSL-RR.
    inc_hi = (seq_hi << _U64(1)) | (seq_lo >> _U64(63))
    inc_lo = (seq_lo << _U64(1)) | _U64(1)
    sh, sl = _add128(inc_hi, inc_lo, seed_hi, seed_lo)
    sh, sl = _mul128_const(sh, sl)
    sh, sl = _add128(sh, sl, inc_hi, inc_lo)
    sh, sl = _mul128_const(sh, sl)
    sh, sl = _add128(sh, sl, inc_hi, inc_lo)
    rot = sh >> _U64(58)
    xored = sh ^ sl
    out64 = (xored >> rot) | (xored << ((_U64(64) - rot) & _U64(63)))
    return (out64 >> _U64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)


def vectorized_matches_numpy() -> bool:
    """One-shot self-test of the shadow implementation against NumPy.

    Covers empty/short/long prefixes (below and above the 4-word pool), the
    zero id, and ids spanning the full uint32 range.  Memoized; costs ~1 ms
    on first call.
    """
    global _VERIFIED
    if _VERIFIED is not None:
        return _VERIFIED
    cases = [
        ([], [0, 1, 2, 2**32 - 1]),
        ([7], [0, 5, 123456789]),
        ([20220822, 1668244581], [0, 1, 999]),
        ([2**63 - 1, 3, 2**40 + 17], [42, 2**31]),
        ([1, 2, 3, 4, 5, 6], [0, 7, 2**32 - 1]),
    ]
    ok = True
    for prefix, ids in cases:
        ids_arr = np.asarray(ids, dtype=np.uint64)
        got = _first_uniforms_vec(prefix, ids_arr)
        want = first_uniforms_looped(prefix, ids_arr)
        if not np.array_equal(got, want):
            ok = False
            break
    _VERIFIED = ok
    return ok


def first_uniforms(material: Sequence[int], ids: np.ndarray) -> np.ndarray:
    """First ``random()`` draw of each derived child stream, vectorized.

    ``out[i] == default_rng(SeedSequence([*material, ids[i]])).random()``
    bit for bit.  Falls back to the per-id loop when an id does not fit a
    single 32-bit entropy word or the self-test rejects the vectorized path.
    """
    ids = np.asarray(ids)
    if ids.size == 0:
        return np.empty(0, dtype=np.float64)
    if (
        not vectorized_matches_numpy()
        or np.any(ids < 0)
        or np.any(ids > 0xFFFFFFFF)
    ):
        return first_uniforms_looped(material, ids)
    return _first_uniforms_vec(material, ids.astype(np.uint64))
