"""First-class observability: structured tracing, metrics, event timelines.

Three cooperating pieces (see DESIGN.md §9 for the taxonomy):

- :mod:`repro.telemetry.trace` — a span-based tracer with nested spans,
  thread-local buffers that merge deterministically across parallel solver
  restarts, and JSONL / Perfetto (Chrome trace-event) exporters.  Disabled by
  default; the disabled fast path allocates nothing.
- :mod:`repro.telemetry.metrics` — a registry of named counters, gauges, and
  fixed-bucket latency histograms with ``snapshot()`` / text / JSONL dumps.
  :class:`repro.profiling.counters.PerfCounters` publishes into it.
- :mod:`repro.telemetry.timeline` — per-request simulator event timelines
  (enqueue → dequeue → exec-start → transfer → exit-taken → complete) and the
  nullable :class:`TimelineRecorder` handle the simulator threads them
  through.

Entry point: ``repro trace`` (CLI) enables everything for one run, writes
``trace.json`` (Perfetto-loadable) + ``metrics.jsonl``, and prints the solver
phase breakdown.
"""

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.telemetry.timeline import (
    EVENT_KINDS,
    Timeline,
    TimelineEvent,
    TimelineRecorder,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    export_jsonl,
    export_perfetto,
    get_tracer,
    phase_breakdown,
    set_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Timeline",
    "TimelineEvent",
    "TimelineRecorder",
    "Tracer",
    "export_jsonl",
    "export_perfetto",
    "get_registry",
    "get_tracer",
    "phase_breakdown",
    "set_registry",
    "set_tracer",
]
