"""First-class observability: tracing, metrics, timelines, and the SLO plane.

Cooperating pieces (see DESIGN.md §9 for the taxonomy):

- :mod:`repro.telemetry.trace` — a span-based tracer with nested spans,
  thread-local buffers that merge deterministically across parallel solver
  restarts, and JSONL / Perfetto (Chrome trace-event) exporters.  Disabled by
  default; the disabled fast path allocates nothing.
- :mod:`repro.telemetry.metrics` — a registry of named counters, gauges, and
  fixed-bucket latency histograms with ``snapshot()`` / text / JSONL dumps.
  :class:`repro.profiling.counters.PerfCounters` publishes into it.
- :mod:`repro.telemetry.timeline` — per-request simulator event timelines
  (enqueue → dequeue → exec-start → transfer → exit-taken → complete) and the
  nullable :class:`TimelineRecorder` handle the simulator threads them
  through.  Event-loop-only: gauges sample on event boundaries.
- :mod:`repro.telemetry.windows` — tumbling-window SLO aggregates
  (:class:`WindowedMetrics`) with bounded memory; the streaming-compatible
  half of telemetry, bit-identical between the event loop and the fast path.
- :mod:`repro.telemetry.slo` — deadline-satisfaction targets and
  multi-window burn-rate monitors evaluated from the windowed integers.
- :mod:`repro.telemetry.drift` — seeded windowed mean-shift drift detection
  lifted to control-plane shards (:class:`ShardDriftMonitor`).
- :mod:`repro.telemetry.export` — OpenMetrics/Prometheus text exposition and
  JSONL metrics streams; :mod:`repro.telemetry.dashboard` renders them.

Entry points: ``repro trace`` (per-request deep dive) and ``repro monitor``
(live SLO dashboard over a running or saved monitored run).
"""

from repro.telemetry.dashboard import render_dashboard, sparkline
from repro.telemetry.drift import DriftConfig, DriftDetector, ShardDriftMonitor
from repro.telemetry.export import (
    MetricsStreamWriter,
    export_openmetrics,
    openmetrics_lines,
    openmetrics_text,
    read_metrics_stream,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.telemetry.slo import (
    SLOAlert,
    SLOPolicy,
    SLOReport,
    SLOTarget,
    TaskSLO,
    evaluate_slos,
)
from repro.telemetry.timeline import (
    EVENT_KINDS,
    Timeline,
    TimelineEvent,
    TimelineRecorder,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    export_jsonl,
    export_perfetto,
    get_tracer,
    phase_breakdown,
    set_tracer,
)
from repro.telemetry.windows import (
    KahanSum,
    LatencyHistogram,
    WindowConfig,
    WindowedMetrics,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DriftConfig",
    "DriftDetector",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "KahanSum",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsStreamWriter",
    "NULL_SPAN",
    "SLOAlert",
    "SLOPolicy",
    "SLOReport",
    "SLOTarget",
    "ShardDriftMonitor",
    "Span",
    "TaskSLO",
    "Timeline",
    "TimelineEvent",
    "TimelineRecorder",
    "Tracer",
    "WindowConfig",
    "WindowedMetrics",
    "evaluate_slos",
    "export_jsonl",
    "export_openmetrics",
    "export_perfetto",
    "get_registry",
    "get_tracer",
    "openmetrics_lines",
    "openmetrics_text",
    "phase_breakdown",
    "read_metrics_stream",
    "render_dashboard",
    "set_registry",
    "set_tracer",
    "sparkline",
]
