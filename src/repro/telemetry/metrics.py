"""Named-metric registry: counters, gauges, and fixed-bucket histograms.

The registry is deliberately small and dependency-free — a dict of metric
objects with a :meth:`MetricsRegistry.snapshot` API that renders to plain
JSON-able dicts, a JSONL dump (one metric per line, for collection alongside
trace files), and a human-readable text dump.

Conventions:

- metric names are dot-separated, lowercase: ``solver.allocate_calls``,
  ``sim.queue_depth.srv:t3``;
- counters are monotonic (work done), gauges are sampled values (queue
  depth, utilization) and remember their last/min/max plus a bounded sample
  series, histograms bucket **milliseconds** by default
  (:data:`DEFAULT_LATENCY_BUCKETS_MS`).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

#: Fixed latency buckets (upper bounds, milliseconds) — roughly logarithmic
#: from sub-millisecond device hits to multi-second overload tails.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0,
)

#: Gauges keep at most this many (t, value) samples; older samples are
#: dropped (the min/max/last aggregates keep covering everything observed).
GAUGE_SERIES_CAP = 20_000


class Counter:
    """Monotonic counter (units of work done)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Sampled value with last/min/max aggregates and a bounded series."""

    __slots__ = ("name", "value", "min", "max", "count", "samples", "dropped")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.min = float("inf")
        self.max = float("-inf")
        self.count = 0
        self.samples: List[Tuple[float, float]] = []
        self.dropped = 0

    def set(self, value: float, t: Optional[float] = None) -> None:
        value = float(value)
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.count += 1
        if t is not None:
            if len(self.samples) < GAUGE_SERIES_CAP:
                self.samples.append((float(t), value))
            else:
                self.dropped += 1

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "count": self.count,
            "series_len": len(self.samples),
            "series_dropped": self.dropped,
        }


class Histogram:
    """Fixed-bucket histogram (bucket bounds are inclusive upper edges)."""

    __slots__ = ("name", "bounds", "counts", "overflow", "total", "sum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"{name}: bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else float("nan")

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "overflow": self.overflow,
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean if self.total else None,
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Metric creation is locked; mutation of an individual metric is not (the
    repo's writers are single-threaded per instance — parallel solver restarts
    go through per-restart :class:`~repro.profiling.counters.PerfCounters`
    merged afterwards, not through shared registry counters).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, *args: Any):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(name, *args)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- output -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict snapshot of every metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def counters(self, prefix: str = "") -> Dict[str, Union[int, float]]:
        """Just the counter values (optionally filtered by name prefix)."""
        return {
            name: m.value
            for name, m in sorted(self._metrics.items())
            if isinstance(m, Counter) and name.startswith(prefix)
        }

    def jsonl_lines(self) -> Iterable[str]:
        """One JSON object per metric: ``{"name": ..., **snapshot}``."""
        for name, snap in self.snapshot().items():
            yield json.dumps({"name": name, **snap})

    def export_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")

    def dump_text(self) -> str:
        """Human-readable one-line-per-metric dump."""
        lines = []
        for name, snap in self.snapshot().items():
            kind = snap["type"]
            if kind == "counter":
                lines.append(f"{name} = {snap['value']}")
            elif kind == "gauge":
                if snap["count"]:
                    lines.append(
                        f"{name} = {snap['value']:.6g} "
                        f"(min {snap['min']:.6g}, max {snap['max']:.6g}, "
                        f"n={snap['count']})"
                    )
                else:
                    lines.append(f"{name} = <no samples>")
            else:
                mean = f"{snap['mean']:.6g}" if snap["total"] else "n/a"
                lines.append(
                    f"{name}: n={snap['total']} mean={mean} "
                    f"overflow={snap['overflow']}"
                )
        return "\n".join(lines)


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry (fresh one per traced run); returns it."""
    global _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return registry
