"""Span-based structured tracer.

A :class:`Tracer` records nested wall-clock spans into **per-thread buffers**
so that code running under parallel restarts (thread pools) never contends on
a shared list.  Each span carries a ``stream`` index — the deterministic
seed-stream number of the restart that produced it — and :meth:`Tracer.drain`
merges the per-thread buffers sorted by ``(stream, per-thread sequence)``, so
the merged trace is identical whether the restarts ran serially or in
parallel (wall-clock timestamps aside).

Tracing is **off by default** and the disabled path is allocation-free:
``tracer.span(...)`` returns a module-level no-op context-manager singleton,
so instrumented hot paths pay one attribute check and nothing else.

Exporters:

- :func:`export_jsonl` — one JSON object per span, machine-grep friendly;
- :func:`export_perfetto` — Chrome trace-event JSON loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev (spans become complete
  ``"X"`` events; streams map to tracks).
"""

from __future__ import annotations

import functools
import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "Tracer",
    "export_jsonl",
    "export_perfetto",
    "get_tracer",
    "phase_breakdown",
    "set_tracer",
    "traced",
]


class Span:
    """One finished (or in-flight) traced region.

    ``span_id`` / ``parent_id`` are ``(stream, seq)`` pairs, unique within one
    tracer session and stable across serial/parallel execution of the same
    streams.
    """

    __slots__ = ("name", "span_id", "parent_id", "stream", "start_s", "end_s", "attrs")

    def __init__(
        self,
        name: str,
        span_id: Tuple[int, int],
        parent_id: Optional[Tuple[int, int]],
        stream: int,
        start_s: float,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.stream = stream
        self.start_s = start_s
        self.end_s = float("nan")
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute to the span."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": list(self.span_id),
            "parent_id": list(self.parent_id) if self.parent_id else None,
            "stream": self.stream,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs or {},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, stream={self.stream})"


class _NullSpan:
    """The span handed out when tracing is disabled: absorbs everything."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    attrs: Optional[Dict[str, Any]] = None

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


#: Module-level singleton: the disabled fast path allocates nothing.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span into its thread's buffer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self._span: Optional[Span] = None
        local = tracer._state()
        span_id = (local.stream, local.seq)
        local.seq += 1
        parent = local.stack[-1] if local.stack else local.parent
        self._span = Span(name, span_id, parent, local.stream, 0.0, attrs)
        local.stack.append(span_id)
        self._span.start_s = time.perf_counter()

    def __enter__(self) -> Span:
        assert self._span is not None
        return self._span

    def __exit__(self, *exc: object) -> None:
        span = self._span
        assert span is not None
        span.end_s = time.perf_counter()
        local = self._tracer._state()
        local.stack.pop()
        local.buffer.append(span)


class _StreamContext:
    """Sets the thread-local stream index (and optional cross-thread parent).

    The per-thread sequence counter is swapped for the stream's own counter on
    entry (and persisted on exit), so a span's ``(stream, seq)`` id is the same
    whether streams run serially on one thread or in parallel on many — the
    property :meth:`Tracer.drain`'s deterministic merge relies on.  Streams
    are meant for one concurrent user each (one restart = one stream).
    """

    __slots__ = ("_tracer", "_stream", "_parent", "_saved")

    def __init__(
        self,
        tracer: "Tracer",
        stream: int,
        parent: Optional[Tuple[int, int]],
    ) -> None:
        self._tracer = tracer
        self._stream = stream
        self._parent = parent
        self._saved: Optional[Tuple[int, Optional[Tuple[int, int]], int]] = None

    def __enter__(self) -> "_StreamContext":
        local = self._tracer._state()
        self._saved = (local.stream, local.parent, local.seq)
        local.stream = self._stream
        local.parent = self._parent
        local.seq = self._tracer._stream_seq.get(self._stream, 0)
        return self

    def __exit__(self, *exc: object) -> None:
        local = self._tracer._state()
        assert self._saved is not None
        self._tracer._stream_seq[self._stream] = local.seq
        local.stream, local.parent, local.seq = self._saved


class _ThreadState(threading.local):
    """Per-thread recording state: buffer, span stack, stream, sequence."""

    def __init__(self) -> None:  # called once per thread on first access
        self.buffer: List[Span] = []
        self.stack: List[Tuple[int, int]] = []
        self.stream: int = 0
        self.parent: Optional[Tuple[int, int]] = None
        self.seq: int = 0
        self.registered = False


class Tracer:
    """Span recorder with per-thread buffers and deterministic merge.

    Usage::

        tracer = get_tracer()
        tracer.enable()
        with tracer.span("solve", {"tasks": 8}) as sp:
            with tracer.span("solve.candidates"):
                ...
            sp.set("objective_ms", 12.3)
        spans = tracer.drain()

    Parallel sections set the stream index first (optionally re-parenting
    under a span opened in another thread)::

        with tracer.stream(r, parent=root.span_id):
            with tracer.span("solve.descend", {"restart": r}):
                ...
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._local = _ThreadState()
        self._lock = threading.Lock()
        self._all_buffers: List[List[Span]] = []
        #: next span seq per stream index (swapped in by _StreamContext)
        self._stream_seq: Dict[int, int] = {}

    # -- recording ----------------------------------------------------------

    def _state(self) -> _ThreadState:
        local = self._local
        if not local.registered:
            with self._lock:
                self._all_buffers.append(local.buffer)
            local.registered = True
        return local

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        """Open a span; returns a context manager yielding the :class:`Span`.

        When tracing is disabled this returns :data:`NULL_SPAN` — the same
        object every call, no allocation.
        """
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def stream(self, index: int, parent: Optional[Tuple[int, int]] = None):
        """Context manager tagging spans recorded by this thread with seed
        stream ``index`` (and re-parenting top-level spans under ``parent``)."""
        if not self.enabled:
            return NULL_SPAN
        return _StreamContext(self, index, parent)

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def drain(self) -> List[Span]:
        """All finished spans merged deterministically; clears the buffers.

        Spans are ordered by ``(stream, per-thread sequence)``: within one
        stream the recording order is preserved, and stream blocks are sorted
        by seed-stream index — identical for serial and parallel execution.
        """
        with self._lock:
            merged: List[Span] = []
            for buf in self._all_buffers:
                merged.extend(buf)
                buf.clear()
            self._stream_seq.clear()
        merged.sort(key=lambda s: s.span_id)
        return merged


_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless explicitly enabled)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer (tests / embedders); returns it."""
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return tracer


def traced(name: str):
    """Decorator recording a span around each call of the wrapped function.

    The disabled path is one attribute check — safe on warm (but not
    innermost-loop) paths.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            tracer = _GLOBAL_TRACER
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- exporters --------------------------------------------------------------


def export_jsonl(spans: Iterable[Span], path: str) -> None:
    """Write one JSON object per span (grep/jq-friendly)."""
    with open(path, "w") as fh:
        for span in spans:
            fh.write(json.dumps(span.as_dict()) + "\n")


def perfetto_events(
    spans: Iterable[Span],
    pid: int = 1,
    process_name: str = "repro",
) -> List[Dict[str, Any]]:
    """Spans as Chrome trace-event ``"X"`` (complete) events.

    Timestamps are microseconds relative to the earliest span start; each
    stream becomes its own thread track so parallel restarts render side by
    side.
    """
    spans = list(spans)
    if not spans:
        return []
    t0 = min(s.start_s for s in spans)
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    streams = sorted({s.stream for s in spans})
    for stream in streams:
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": stream,
                "name": "thread_name",
                "args": {"name": f"stream {stream}"},
            }
        )
    for s in spans:
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": s.stream,
                "name": s.name,
                "ts": (s.start_s - t0) * 1e6,
                "dur": max(s.duration_s, 0.0) * 1e6,
                "args": s.attrs or {},
            }
        )
    return events


def export_perfetto(
    spans: Iterable[Span],
    path: str,
    extra_events: Optional[Sequence[Dict[str, Any]]] = None,
) -> None:
    """Write a ``chrome://tracing`` / Perfetto-loadable trace JSON.

    ``extra_events`` (e.g. simulator timeline events from
    :meth:`repro.telemetry.timeline.Timeline.perfetto_events`) are appended to
    the same ``traceEvents`` array.
    """
    payload = {
        "displayTimeUnit": "ms",
        "traceEvents": perfetto_events(spans) + list(extra_events or []),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)


# -- analysis ---------------------------------------------------------------


def phase_breakdown(
    spans: Sequence[Span], root: str = "solve"
) -> List[Tuple[str, int, float, float]]:
    """Aggregate the direct children of ``root`` spans into phases.

    Returns rows ``(phase, count, total_s, fraction_of_root)`` sorted by
    descending total time, with a final ``("(untraced)", ...)`` row holding
    whatever root wall time no child span covers.  Fractions are relative to
    the summed duration of all ``root`` spans.
    """
    roots = {s.span_id: s for s in spans if s.name == root}
    root_total = sum(s.duration_s for s in roots.values())
    if not roots or root_total <= 0:
        return []
    by_name: Dict[str, Tuple[int, float]] = {}
    covered = 0.0
    for s in spans:
        if s.parent_id in roots:
            count, total = by_name.get(s.name, (0, 0.0))
            by_name[s.name] = (count + 1, total + s.duration_s)
            covered += s.duration_s
    rows = [
        (name, count, total, total / root_total)
        for name, (count, total) in by_name.items()
    ]
    rows.sort(key=lambda r: -r[2])
    untraced = max(root_total - covered, 0.0)
    rows.append(("(untraced)", len(roots), untraced, untraced / root_total))
    return rows
