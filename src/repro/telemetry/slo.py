"""SLO monitors: deadline-satisfaction targets + multi-window burn-rate alerts.

The paper's headline metric is deadline satisfaction, so the service-level
objective is expressed directly on it: a target fraction of requests per task
class that must complete within their deadline.  Monitoring follows the SRE
multi-window multi-burn-rate recipe — an alert fires only when **both** a
fast trailing window (catches sudden cliffs quickly) and a slow trailing
window (suppresses blips) burn error budget faster than their thresholds.

Everything here is a pure function of :class:`~repro.telemetry.windows.
WindowedMetrics` *integer* state (counts, met, lost, shed) — divisions of
identical integers yield identical doubles, so the event loop and the
vectorized fast path produce **bit-identical** reports on the same seeded
workload.  The gate asserts this via :meth:`SLOReport.fingerprint`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.telemetry.windows import WindowedMetrics


@dataclass(frozen=True)
class SLOTarget:
    """Deadline-satisfaction objective for a task class.

    ``task`` is an ``fnmatch``-style pattern over task names (``"cam*"``,
    ``"*"``); the first matching target in the policy wins, so list specific
    classes before catch-alls.
    """

    task: str = "*"
    target: float = 0.99

    def __post_init__(self) -> None:
        if not self.task:
            raise ConfigError("SLO target needs a non-empty task pattern")
        if not (0.0 < self.target < 1.0):
            raise ConfigError(
                f"SLO target must be in (0, 1), got {self.target} for {self.task!r}"
            )


@dataclass(frozen=True)
class SLOPolicy:
    """Targets plus the multi-window burn-rate alerting parameters.

    ``fast_windows``/``slow_windows`` are trailing-window lengths in units of
    the metric window; the default thresholds (14.4× / 6×) are the classic
    page-severity pair: burning a 30-day budget in 2 days resp. 5 days.
    """

    targets: Tuple[SLOTarget, ...] = (SLOTarget(),)
    fast_windows: int = 3
    slow_windows: int = 30
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if not self.targets:
            raise ConfigError("SLO policy needs at least one target")
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ConfigError(
                "want 1 <= fast_windows <= slow_windows, got "
                f"{self.fast_windows}/{self.slow_windows}"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise ConfigError("burn-rate thresholds must be > 0")

    def resolve(self, task: str) -> Optional[float]:
        """Target for ``task``: first pattern match wins, None if unmatched."""
        for t in self.targets:
            if fnmatchcase(task, t.task):
                return t.target
        return None


@dataclass(frozen=True)
class SLOAlert:
    """One window where both burn rates exceeded their thresholds."""

    task: str
    window: int
    t_start_s: float
    fast_burn: float
    slow_burn: float


@dataclass
class TaskSLO:
    """Evaluated SLO state of one task."""

    task: str
    target: float
    eligible: int        #: completions + lost + shed over the run
    errors: int          #: deadline misses + lost + shed
    achieved: float      #: realized deadline-satisfaction fraction
    budget_spent: float  #: fraction of the error budget consumed (can be > 1)
    fast_burn: np.ndarray = field(repr=False)
    slow_burn: np.ndarray = field(repr=False)
    alerts: List[SLOAlert] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.achieved >= self.target

    @property
    def status(self) -> str:
        if self.alerts:
            return "PAGE"
        return "OK" if self.ok else "BURN"


@dataclass
class SLOReport:
    """Per-task SLO evaluation over one run's windowed metrics."""

    window_s: float
    horizon_s: float
    policy: SLOPolicy
    per_task: Dict[str, TaskSLO]

    def alerts(self) -> List[SLOAlert]:
        out: List[SLOAlert] = []
        for task in sorted(self.per_task):
            out.extend(self.per_task[task].alerts)
        return out

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.per_task.values())

    def fingerprint(self) -> str:
        """SHA-256 over the full evaluated state.

        Burn-rate series are doubles, but each is a quotient of integer
        window sums — identical integers give identical doubles — so the
        fingerprint is bit-stable across the event loop, the one-shot fast
        path, and the chunked streaming sweep.
        """
        h = hashlib.sha256()
        h.update(f"{self.window_s}:{self.horizon_s}:{self.policy}".encode())
        for task in sorted(self.per_task):
            t = self.per_task[task]
            h.update(f"{task}:{t.target}:{t.eligible}:{t.errors}".encode())
            h.update(np.ascontiguousarray(t.fast_burn).tobytes())
            h.update(np.ascontiguousarray(t.slow_burn).tobytes())
            for a in t.alerts:
                h.update(f"{a.window}:{a.fast_burn}:{a.slow_burn}".encode())
        return h.hexdigest()

    def as_dict(self) -> Dict[str, object]:
        return {
            "window_s": self.window_s,
            "horizon_s": self.horizon_s,
            "ok": self.ok,
            "tasks": {
                task: {
                    "target": t.target,
                    "eligible": t.eligible,
                    "errors": t.errors,
                    "achieved": t.achieved,
                    "budget_spent": t.budget_spent,
                    "status": t.status,
                    "alerts": [
                        {
                            "window": a.window,
                            "t_start_s": a.t_start_s,
                            "fast_burn": a.fast_burn,
                            "slow_burn": a.slow_burn,
                        }
                        for a in t.alerts
                    ],
                }
                for task, t in sorted(self.per_task.items())
            },
        }

    def format(self) -> str:
        """Human-readable status table."""
        lines = [
            f"{'task':>12s} {'target':>7s} {'achieved':>9s} {'budget':>8s} "
            f"{'fastburn':>9s} {'slowburn':>9s} {'alerts':>6s}  status"
        ]
        for task in sorted(self.per_task):
            t = self.per_task[task]
            fb = float(t.fast_burn.max()) if t.fast_burn.size else 0.0
            sb = float(t.slow_burn.max()) if t.slow_burn.size else 0.0
            lines.append(
                f"{task:>12s} {t.target * 100:6.2f}% {t.achieved * 100:8.3f}% "
                f"{t.budget_spent * 100:7.1f}% {fb:9.2f} {sb:9.2f} "
                f"{len(t.alerts):6d}  {t.status}"
            )
        return "\n".join(lines)


def _trailing_ratio(
    errors: np.ndarray, eligible: np.ndarray, k: int
) -> np.ndarray:
    """Error rate over the trailing ``k`` windows ending at each window.

    Windows whose trailing span saw no eligible requests report 0.0 (no
    traffic burns no budget).  Pure integer sums → deterministic doubles.
    """
    ce = np.concatenate(([0], np.cumsum(errors)))
    cn = np.concatenate(([0], np.cumsum(eligible)))
    n = errors.size
    lo = np.maximum(0, np.arange(n) - k + 1)
    err_k = ce[1:] - ce[lo]
    n_k = cn[1:] - cn[lo]
    with np.errstate(invalid="ignore", divide="ignore"):
        rate = np.where(n_k > 0, err_k / n_k, 0.0)
    return rate


def evaluate_slos(
    windowed: WindowedMetrics, policy: Optional[SLOPolicy] = None
) -> SLOReport:
    """Evaluate deadline-satisfaction SLOs over a run's windowed metrics.

    Tasks no policy target matches are skipped.  For each matched task the
    per-window error budget burn is ``error_rate / (1 - target)`` over the
    fast and slow trailing windows; an alert is recorded for every window
    where **both** exceed their thresholds.
    """
    policy = policy or SLOPolicy()
    per_task: Dict[str, TaskSLO] = {}
    for task in windowed.tasks():
        target = policy.resolve(task)
        if target is None:
            continue
        errors = windowed.window_errors(task)
        eligible = windowed.window_eligible(task)
        budget = 1.0 - target
        fast = _trailing_ratio(errors, eligible, policy.fast_windows) / budget
        slow = _trailing_ratio(errors, eligible, policy.slow_windows) / budget
        total_elig = int(eligible.sum())
        total_err = int(errors.sum())
        achieved = 1.0 - total_err / total_elig if total_elig else 1.0
        spent = (total_err / total_elig) / budget if total_elig else 0.0
        firing = np.flatnonzero(
            (fast > policy.fast_burn) & (slow > policy.slow_burn)
        )
        alerts = [
            SLOAlert(
                task=task,
                window=int(w),
                t_start_s=float(w * windowed.config.window_s),
                fast_burn=float(fast[w]),
                slow_burn=float(slow[w]),
            )
            for w in firing.tolist()
        ]
        per_task[task] = TaskSLO(
            task=task,
            target=target,
            eligible=total_elig,
            errors=total_err,
            achieved=achieved,
            budget_spent=spent,
            fast_burn=fast,
            slow_burn=slow,
            alerts=alerts,
        )
    return SLOReport(
        window_s=windowed.config.window_s,
        horizon_s=windowed.horizon_s,
        policy=policy,
        per_task=per_task,
    )
