"""Environment drift detection: which shards need a re-solve?

ROADMAP's "shard-level incremental re-solve" needs a trigger: a cheap, online
signal that some shard's environment (arrival rates, service times) has moved
away from what its plan was solved against.  This module provides it as a
**seeded, deterministic windowed mean-shift test**: per monitored stream it
compares the mean of the most recent ``window`` samples against the mean of
the ``window`` samples before them.

Two calibrations are available:

* ``"permutation"`` (default) — a seeded permutation test: the observed mean
  shift is compared against the shift distribution under random relabelings
  of the pooled two-window sample.  The RNG is derived per ``(seed, key,
  sample_count)`` via :func:`repro.rng.derive`, so verdicts depend only on
  the data and the seed — never on update interleaving across streams.
* ``"zscore"`` — the shift normalized by the reference window's standard
  deviation, compared against ``threshold``.  No randomness at all.

Both apply a relative floor (``min_rel_shift``) so ulp-level wobble around a
stable mean never alarms.  :class:`ShardDriftMonitor` lifts stream verdicts
to shard granularity through the control plane's task→shard homing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.rng import derive


@dataclass(frozen=True)
class DriftConfig:
    """Windowed mean-shift test parameters."""

    #: samples per comparison window (reference + recent = 2·window history)
    window: int = 8
    #: calibration method: "permutation" (seeded) or "zscore"
    calibration: str = "permutation"
    #: permutation relabelings per test
    permutations: int = 128
    #: permutation-test significance level
    alpha: float = 0.01
    #: z-score threshold for calibration="zscore"
    threshold: float = 4.0
    #: ignore shifts smaller than this fraction of the reference mean
    min_rel_shift: float = 0.1

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ConfigError(f"drift window must be >= 2, got {self.window}")
        if self.calibration not in ("permutation", "zscore"):
            raise ConfigError(
                f"unknown drift calibration {self.calibration!r}; "
                "want 'permutation' or 'zscore'"
            )
        if self.permutations < 1:
            raise ConfigError("permutations must be >= 1")
        if not (0.0 < self.alpha < 1.0):
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.threshold <= 0:
            raise ConfigError("z-score threshold must be > 0")
        if self.min_rel_shift < 0:
            raise ConfigError("min_rel_shift must be >= 0")


class DriftDetector:
    """Online mean-shift detector over named sample streams.

    Feed scalar observations with :meth:`update`; a stream's verdict firms up
    once it has ``2·window`` samples and refreshes with every new one.
    """

    def __init__(
        self, config: Optional[DriftConfig] = None, seed: int = 0
    ) -> None:
        self.config = config or DriftConfig()
        self.seed = seed
        self._history: Dict[str, Deque[float]] = {}
        self._seen: Dict[str, int] = {}
        self._flagged: Dict[str, bool] = {}
        self._score: Dict[str, float] = {}

    def update(self, key: str, value: float) -> bool:
        """Fold one sample into stream ``key``; returns its current verdict."""
        cfg = self.config
        hist = self._history.get(key)
        if hist is None:
            hist = self._history[key] = deque(maxlen=2 * cfg.window)
            self._seen[key] = 0
            self._flagged[key] = False
            self._score[key] = 0.0
        hist.append(float(value))
        self._seen[key] += 1
        if len(hist) < 2 * cfg.window:
            return False
        data = np.asarray(hist, dtype=np.float64)
        ref, recent = data[: cfg.window], data[cfg.window:]
        mu_ref = float(ref.mean())
        shift = abs(float(recent.mean()) - mu_ref)
        floor = cfg.min_rel_shift * abs(mu_ref)
        if shift <= floor:
            self._flagged[key] = False
            self._score[key] = 0.0
            return False
        if cfg.calibration == "zscore":
            scale = max(float(ref.std()), floor, 1e-12)
            score = shift / scale
            drifted = score > cfg.threshold
        else:
            # seeded per-(key, sample-count) stream: verdicts are independent
            # of how updates across keys interleave
            rng = derive(self.seed, "drift", key, self._seen[key])
            m = cfg.window
            exceed = 0
            for _ in range(cfg.permutations):
                perm = rng.permutation(data)
                d = abs(float(perm[m:].mean()) - float(perm[:m].mean()))
                if d >= shift:
                    exceed += 1
            p = (exceed + 1) / (cfg.permutations + 1)
            score = 1.0 - p
            drifted = p < cfg.alpha
        self._flagged[key] = drifted
        self._score[key] = score
        return drifted

    def score(self, key: str) -> float:
        """Latest drift score (z-score, or 1 − p for permutation tests)."""
        return self._score.get(key, 0.0)

    def is_drifted(self, key: str) -> bool:
        return self._flagged.get(key, False)

    def drifted(self) -> Tuple[str, ...]:
        """Streams currently flagged, sorted for determinism."""
        return tuple(sorted(k for k, v in self._flagged.items() if v))

    def reset(self, key: Optional[str] = None) -> None:
        """Forget history (after a re-solve): one stream, or all of them."""
        keys = [key] if key is not None else list(self._history)
        for k in keys:
            self._history.pop(k, None)
            self._seen.pop(k, None)
            self._flagged.pop(k, None)
            self._score.pop(k, None)


class ShardDriftMonitor:
    """Lift per-task drift verdicts to control-plane shard granularity.

    ``task_shard`` maps task name → home shard index (from
    :attr:`repro.core.sharding.ShardPlan.task_shard` and the solve's task
    order).  Each task contributes two streams — arrival rate and mean
    service time — and a shard is flagged while any of its tasks' streams
    are.
    """

    def __init__(
        self,
        task_shard: Mapping[str, int],
        config: Optional[DriftConfig] = None,
        seed: int = 0,
    ) -> None:
        if not task_shard:
            raise ConfigError("shard drift monitor needs a task->shard mapping")
        self.task_shard = dict(task_shard)
        self.detector = DriftDetector(config, seed=seed)

    def observe(
        self,
        task: str,
        arrival_rate: Optional[float] = None,
        service_time_s: Optional[float] = None,
    ) -> None:
        """Fold one environment sample for ``task`` (unknown tasks ignored)."""
        if task not in self.task_shard:
            return
        if arrival_rate is not None:
            self.detector.update(f"{task}/rate", arrival_rate)
        if service_time_s is not None:
            self.detector.update(f"{task}/service", service_time_s)

    def drifted_streams(self) -> Tuple[str, ...]:
        return self.detector.drifted()

    def drifted_shards(self) -> Tuple[int, ...]:
        """Shards holding at least one drifted task stream, sorted."""
        shards = {
            self.task_shard[key.rsplit("/", 1)[0]]
            for key in self.detector.drifted()
        }
        return tuple(sorted(shards))

    def reset_shard(self, shard: int) -> None:
        """Forget history of every stream homed on ``shard`` (post re-solve)."""
        for task, s in self.task_shard.items():
            if s == shard:
                self.detector.reset(f"{task}/rate")
                self.detector.reset(f"{task}/service")
