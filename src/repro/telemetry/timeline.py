"""Per-request simulator event timelines.

The discrete-event simulator, when telemetry is enabled, emits one
:class:`TimelineEvent` per lifecycle transition of every request::

    enqueue -> dequeue -> exec_start -> transfer_start/transfer_end
            -> exit_taken -> complete

plus per-resource queue-depth / utilization gauge samples taken on event
boundaries (those land in the :class:`~repro.telemetry.metrics.MetricsRegistry`,
not here).  A :class:`Timeline` is an append-only event log with query
helpers and a Perfetto renderer: each task becomes a track, each request a
nested slice from ``enqueue`` to ``complete`` with instant markers for the
intermediate transitions.

:class:`TimelineRecorder` bundles a timeline with a metrics registry behind
one nullable handle, so instrumented simulator code does a single ``if rec is
not None`` check per emission point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["EVENT_KINDS", "Timeline", "TimelineEvent", "TimelineRecorder"]

#: The lifecycle vocabulary, in canonical order of occurrence.  The second
#: group covers failure-aware runs (:mod:`repro.faults`): injector
#: transitions (``fault_inject`` / ``fault_recover``, ``req_id`` -1) and
#: per-request recovery outcomes.
EVENT_KINDS = (
    "enqueue",
    "dequeue",
    "exec_start",
    "transfer_start",
    "transfer_end",
    "exit_taken",
    "complete",
    "fault_inject",
    "fault_recover",
    "timeout",
    "retry",
    "failover",
    "degraded",
    "lost",
    "shed",
)


@dataclass(frozen=True)
class TimelineEvent:
    """One lifecycle transition of one request."""

    t_s: float
    kind: str  # one of EVENT_KINDS
    task: str
    req_id: int
    resource: str = ""  # resource name (dev:..., srv:..., link:...)
    value: Optional[float] = None  # kind-specific payload (e.g. exit index)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "t_s": self.t_s,
            "kind": self.kind,
            "task": self.task,
            "req_id": self.req_id,
            "resource": self.resource,
            "value": self.value,
        }


@dataclass
class Timeline:
    """Append-only, time-ordered-on-read log of simulator events."""

    events: List[TimelineEvent] = field(default_factory=list)

    def add(
        self,
        t_s: float,
        kind: str,
        task: str,
        req_id: int,
        resource: str = "",
        value: Optional[float] = None,
    ) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown timeline event kind {kind!r}")
        self.events.append(TimelineEvent(t_s, kind, task, req_id, resource, value))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -- queries ------------------------------------------------------------

    def for_task(self, task: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.task == task]

    def for_request(self, task: str, req_id: int) -> List[TimelineEvent]:
        """Events of one request, sorted by time (emission order breaks ties)."""
        out = [e for e in self.events if e.task == task and e.req_id == req_id]
        out.sort(key=lambda e: e.t_s)
        return out

    def counts(self) -> Dict[str, int]:
        """Event count per kind (canonical kind order)."""
        out = {k: 0 for k in EVENT_KINDS}
        for e in self.events:
            out[e.kind] += 1
        return {k: v for k, v in out.items() if v}

    # -- export -------------------------------------------------------------

    def perfetto_events(self, pid: int = 2) -> List[Dict[str, Any]]:
        """Chrome trace-event JSON payload for the simulator timeline.

        Tasks map to thread tracks of a ``simulator`` process; each request
        renders as one complete slice (enqueue -> complete) and every
        intermediate transition as an instant event on the same track.
        """
        if not self.events:
            return []
        tasks = sorted({e.task for e in self.events})
        tid = {name: i for i, name in enumerate(tasks)}
        events: List[Dict[str, Any]] = [
            {"ph": "M", "pid": pid, "name": "process_name", "args": {"name": "simulator"}}
        ]
        for name in tasks:
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid[name],
                    "name": "thread_name",
                    "args": {"name": f"task {name}"},
                }
            )
        # one slice per request from enqueue to complete
        bounds: Dict[Tuple[str, int], Dict[str, float]] = {}
        for e in self.events:
            key = (e.task, e.req_id)
            if e.kind == "enqueue":
                bounds.setdefault(key, {})["start"] = e.t_s
            elif e.kind == "complete":
                bounds.setdefault(key, {})["end"] = e.t_s
        for (task, req_id), be in sorted(bounds.items()):
            if "start" in be and "end" in be:
                events.append(
                    {
                        "ph": "X",
                        "pid": pid,
                        "tid": tid[task],
                        "name": f"req {req_id}",
                        "ts": be["start"] * 1e6,
                        "dur": max(be["end"] - be["start"], 0.0) * 1e6,
                        "args": {"task": task, "req_id": req_id},
                    }
                )
        for e in self.events:
            if e.kind in ("enqueue", "complete"):
                continue
            args: Dict[str, Any] = {"req_id": e.req_id, "resource": e.resource}
            if e.value is not None:
                args["value"] = e.value
            events.append(
                {
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "pid": pid,
                    "tid": tid[e.task],
                    "name": e.kind,
                    "ts": e.t_s * 1e6,
                    "args": args,
                }
            )
        return events


class TimelineRecorder:
    """Nullable handle bundling a timeline and a metrics registry.

    Simulator components receive ``Optional[TimelineRecorder]``; a single
    ``is not None`` check guards every emission point, so disabled runs pay
    nothing.
    """

    __slots__ = ("timeline", "registry")

    def __init__(
        self,
        timeline: Optional[Timeline] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.timeline = timeline if timeline is not None else Timeline()
        self.registry = registry if registry is not None else MetricsRegistry()

    def event(
        self,
        t_s: float,
        kind: str,
        task: str,
        req_id: int,
        resource: str = "",
        value: Optional[float] = None,
    ) -> None:
        self.timeline.add(t_s, kind, task, req_id, resource, value)

    def sample(self, name: str, t_s: float, value: float) -> None:
        """Record a gauge sample (queue depth, utilization) at ``t_s``."""
        self.registry.gauge(name).set(value, t=t_s)

    def count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)
