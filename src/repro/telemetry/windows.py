"""Windowed metric aggregation: the streaming-compatible half of telemetry.

Per-request timelines (:mod:`repro.telemetry.timeline`) need the event loop —
gauges sample on event boundaries the chunked fast path never visits.  This
module provides the complement: **tumbling-window aggregates** whose state is
a handful of fixed-size integer arrays, cheap enough to update from a
million-request streaming sweep and exact enough to drive SLO monitoring.

Design contract (the basis of the gate's bit-identity check):

* All *integer* state — request counts, deadline-met counts, per-window
  latency-histogram bins, fault marks — is order-independent under addition,
  so the event loop (scalar observes in completion order) and the vectorized
  fast path (chunked column observes in stream order) produce **bit-identical**
  arrays for the same seeded workload.  Window and bin indices are computed
  with the same IEEE-754 double division + truncation in both paths.
* Float state (Kahan-compensated latency sums) is accumulation-order
  dependent at the ulp level and therefore *excluded* from
  :meth:`WindowedMetrics.fingerprint`; per-window maxima are order-independent
  and included.

:class:`KahanSum` and :class:`LatencyHistogram` started life in
``repro.sim.metrics`` (PR 5); they live here now so the sim can depend on
telemetry without a cycle, and are re-exported from their old home.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError, SimulationError

#: fault-annotation kinds a window can be marked with (per completed-or-lost
#: request); these feed the SLO error budget alongside deadline misses
MARK_KINDS = ("lost", "shed", "degraded")

#: refuse WindowedMetrics instances whose histogram planes would exceed this
#: many int64 cells per task (guards the streaming RSS ceiling)
_MAX_CELLS_PER_TASK = 4_000_000


class KahanSum:
    """Neumaier-compensated running sum (order-stable, near-exact means)."""

    __slots__ = ("total", "_comp")

    def __init__(self) -> None:
        self.total = 0.0
        self._comp = 0.0

    def add(self, value: float) -> None:
        t = self.total + value
        if abs(self.total) >= abs(value):
            self._comp += (self.total - t) + value
        else:
            self._comp += (value - t) + self.total
        self.total = t

    @property
    def value(self) -> float:
        return self.total + self._comp


class LatencyHistogram:
    """Fixed-bin latency histogram with exact counts and running extremes.

    Bins are ``[k·bin_s, (k+1)·bin_s)`` over ``[0, max_s)``; latencies at or
    beyond ``max_s`` land in an overflow bucket whose exact maximum is
    tracked, so the histogram never loses counts.  Quantiles are reported as
    the upper edge of the bin holding the ceil-rank order statistic — exact
    within one ``bin_s`` of that order statistic.
    """

    __slots__ = ("bin_s", "max_s", "counts", "overflow", "min_s", "max_seen_s")

    def __init__(self, bin_s: float = 5e-4, max_s: float = 30.0) -> None:
        if bin_s <= 0 or max_s <= bin_s:
            raise SimulationError(f"invalid histogram bins: bin_s={bin_s} max_s={max_s}")
        self.bin_s = bin_s
        self.max_s = max_s
        self.counts = np.zeros(int(np.ceil(max_s / bin_s)), dtype=np.int64)
        self.overflow = 0
        self.min_s = float("inf")
        self.max_seen_s = float("-inf")

    @property
    def count(self) -> int:
        return int(self.counts.sum()) + self.overflow

    def observe(self, latencies: np.ndarray) -> None:
        """Fold a chunk of latencies (seconds) into the histogram."""
        if latencies.size == 0:
            return
        self.min_s = min(self.min_s, float(latencies.min()))
        self.max_seen_s = max(self.max_seen_s, float(latencies.max()))
        idx = (latencies / self.bin_s).astype(np.int64)
        over = idx >= self.counts.size
        self.overflow += int(np.count_nonzero(over))
        inside = idx[~over]
        if inside.size:
            self.counts += np.bincount(inside, minlength=self.counts.size)

    def quantile(self, q: float) -> float:
        """Latency of the ceil-rank order statistic at percentile ``q``.

        Returns the upper edge of that element's bin (exact running max for
        the overflow region), so the error versus the exact order statistic
        is at most ``bin_s``.
        """
        n = self.count
        if n == 0:
            return float("nan")
        if not (0.0 <= q <= 100.0):
            raise SimulationError(f"quantile {q} outside [0, 100]")
        rank = int(np.ceil((n - 1) * q / 100.0))  # 0-based ceil rank
        cum = np.cumsum(self.counts)
        if rank >= int(cum[-1]):  # lands in the overflow bucket
            return self.max_seen_s
        b = int(np.searchsorted(cum, rank + 1, side="left"))
        return (b + 1) * self.bin_s

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Exact accumulation of ``other`` (same binning) into ``self``."""
        if self.bin_s != other.bin_s or self.max_s != other.max_s:
            raise SimulationError(
                "cannot merge histograms with different binning: "
                f"({self.bin_s}, {self.max_s}) vs ({other.bin_s}, {other.max_s})"
            )
        self.counts += other.counts
        self.overflow += other.overflow
        self.min_s = min(self.min_s, other.min_s)
        self.max_seen_s = max(self.max_seen_s, other.max_seen_s)
        return self


@dataclass(frozen=True)
class WindowConfig:
    """Tumbling-window layout for :class:`WindowedMetrics`.

    ``window_s`` is the tumbling-window width in simulated seconds; windows
    tile ``[0, horizon)`` and completions draining past the horizon clamp
    into the final window.  ``bin_s``/``max_s`` set the *per-window* latency
    histogram resolution — deliberately coarser than the global streaming
    histogram (default 5 ms bins up to 2 s → 400 bins) because every window
    of every task carries its own row of bins.
    """

    window_s: float = 1.0
    bin_s: float = 5e-3
    max_s: float = 2.0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigError(f"window_s must be > 0, got {self.window_s}")
        if self.bin_s <= 0 or self.max_s <= self.bin_s:
            raise ConfigError(
                f"invalid window histogram bins: bin_s={self.bin_s} max_s={self.max_s}"
            )

    @property
    def num_bins(self) -> int:
        return int(np.ceil(self.max_s / self.bin_s))

    def num_windows(self, horizon_s: float) -> int:
        """Windows tiling ``[0, horizon)`` plus one clamp window for drain."""
        if horizon_s <= 0:
            raise ConfigError(f"horizon must be > 0, got {horizon_s}")
        return int(math.ceil(horizon_s / self.window_s)) + 1


class _TaskWindows:
    """Per-task window arrays (one row of bins per window)."""

    __slots__ = (
        "counts", "met", "lost", "shed", "degraded",
        "hist", "overflow", "lat_sum", "lat_comp", "lat_max",
    )

    def __init__(self, n_windows: int, n_bins: int) -> None:
        self.counts = np.zeros(n_windows, dtype=np.int64)
        self.met = np.zeros(n_windows, dtype=np.int64)
        self.lost = np.zeros(n_windows, dtype=np.int64)
        self.shed = np.zeros(n_windows, dtype=np.int64)
        self.degraded = np.zeros(n_windows, dtype=np.int64)
        self.hist = np.zeros((n_windows, n_bins), dtype=np.int64)
        self.overflow = np.zeros(n_windows, dtype=np.int64)
        self.lat_sum = np.zeros(n_windows, dtype=np.float64)
        self.lat_comp = np.zeros(n_windows, dtype=np.float64)
        self.lat_max = np.full(n_windows, float("-inf"), dtype=np.float64)


class WindowedMetrics:
    """Tumbling-window SLO aggregates with bounded, pre-allocated memory.

    One instance covers one run: per task it keeps ``n_windows`` integer
    counters (completions, deadline-met, fault marks), an
    ``[n_windows, n_bins]`` int64 latency-histogram plane, and per-window
    Kahan latency sums.  Updates come either one request at a time from the
    event loop (:meth:`observe_one`) or as NumPy columns from the fast-path
    sweeps (:meth:`observe`); both produce bit-identical integer state.

    Accumulators from independent replications or traffic cells
    :meth:`merge` exactly (integer adds, compensated float adds).
    """

    __slots__ = ("config", "horizon_s", "n_windows", "n_bins", "per_task")

    def __init__(self, config: WindowConfig, horizon_s: float) -> None:
        self.config = config
        self.horizon_s = float(horizon_s)
        self.n_windows = config.num_windows(horizon_s)
        self.n_bins = config.num_bins
        if self.n_windows * self.n_bins > _MAX_CELLS_PER_TASK:
            raise ConfigError(
                f"window layout needs {self.n_windows}x{self.n_bins} histogram "
                f"cells per task (> {_MAX_CELLS_PER_TASK}); widen window_s or "
                "coarsen bin_s to keep streaming memory bounded"
            )
        self.per_task: Dict[str, _TaskWindows] = {}

    # -- accumulation ---------------------------------------------------------

    def _ensure(self, task: str) -> _TaskWindows:
        tw = self.per_task.get(task)
        if tw is None:
            tw = self.per_task[task] = _TaskWindows(self.n_windows, self.n_bins)
        return tw

    def _window_of(self, completion_s: float) -> int:
        w = int(completion_s / self.config.window_s)
        return w if w < self.n_windows else self.n_windows - 1

    def observe_one(
        self, task: str, completion_s: float, latency_s: float, met: bool
    ) -> None:
        """Fold one completed request (event-loop feed).

        The window index uses the same double division + truncation as the
        vectorized path, so the two stay bit-identical.
        """
        tw = self._ensure(task)
        w = self._window_of(completion_s)
        tw.counts[w] += 1
        if met:
            tw.met[w] += 1
        b = int(latency_s / self.config.bin_s)
        if b >= self.n_bins:
            tw.overflow[w] += 1
        else:
            tw.hist[w, b] += 1
        # Neumaier add into window w (scalar form of the chunked update)
        s = float(tw.lat_sum[w])
        t = s + latency_s
        if abs(s) >= abs(latency_s):
            tw.lat_comp[w] += (s - t) + latency_s
        else:
            tw.lat_comp[w] += (latency_s - t) + s
        tw.lat_sum[w] = t
        if latency_s > tw.lat_max[w]:
            tw.lat_max[w] = latency_s

    def observe(
        self,
        task: str,
        completion_s: np.ndarray,
        latency_s: np.ndarray,
        met: np.ndarray,
    ) -> None:
        """Fold a (already warmup-filtered) chunk of completions of one task."""
        if completion_s.size == 0:
            return
        tw = self._ensure(task)
        nw, nb = self.n_windows, self.n_bins
        w = (completion_s / self.config.window_s).astype(np.int64)
        np.minimum(w, nw - 1, out=w)
        tw.counts += np.bincount(w, minlength=nw)
        wm = w[met]
        if wm.size:
            tw.met += np.bincount(wm, minlength=nw)
        b = (latency_s / self.config.bin_s).astype(np.int64)
        over = b >= nb
        if over.any():
            tw.overflow += np.bincount(w[over], minlength=nw)
            inside = ~over
            w_in, b_in, lat_in = w[inside], b[inside], latency_s[inside]
        else:
            w_in, b_in, lat_in = w, b, latency_s
        if w_in.size:
            flat = np.bincount(w_in * nb + b_in, minlength=nw * nb)
            tw.hist += flat.reshape(nw, nb)
        # per-window chunk partial sums, Kahan-folded into the running sums
        part = np.bincount(w, weights=latency_s, minlength=nw)
        touched = np.flatnonzero(part)
        if touched.size:
            s = tw.lat_sum[touched]
            v = part[touched]
            t = s + v
            big = np.abs(s) >= np.abs(v)
            tw.lat_comp[touched] += np.where(big, (s - t) + v, (v - t) + s)
            tw.lat_sum[touched] = t
        np.maximum.at(tw.lat_max, w, latency_s)

    def mark(self, task: str, time_s: float, kind: str) -> None:
        """Record a fault outcome (``lost``/``shed``/``degraded``) at ``time_s``.

        Lost and shed requests never complete, so they enter the SLO error
        budget through these marks instead of the miss counters; degraded
        completions are counted both as completions (via ``observe_one``) and
        annotated here.
        """
        if kind not in MARK_KINDS:
            raise ConfigError(f"unknown window mark kind {kind!r}; want {MARK_KINDS}")
        tw = self._ensure(task)
        getattr(tw, kind)[self._window_of(time_s)] += 1

    # -- merge / identity -----------------------------------------------------

    def _check_layout(self, other: "WindowedMetrics") -> None:
        if (
            self.config != other.config
            or self.horizon_s != other.horizon_s
            or self.n_windows != other.n_windows
        ):
            raise SimulationError(
                "cannot merge windowed metrics with different layouts: "
                f"{self.config}/{self.horizon_s}s vs {other.config}/{other.horizon_s}s"
            )

    def merge(self, other: "WindowedMetrics") -> "WindowedMetrics":
        """Exact accumulation of ``other`` (same layout) into ``self``."""
        self._check_layout(other)
        for task, o in other.per_task.items():
            tw = self._ensure(task)
            tw.counts += o.counts
            tw.met += o.met
            tw.lost += o.lost
            tw.shed += o.shed
            tw.degraded += o.degraded
            tw.hist += o.hist
            tw.overflow += o.overflow
            v = o.lat_sum + o.lat_comp
            s = tw.lat_sum.copy()
            t = s + v
            big = np.abs(s) >= np.abs(v)
            tw.lat_comp += np.where(big, (s - t) + v, (v - t) + s)
            tw.lat_sum = t
            np.maximum(tw.lat_max, o.lat_max, out=tw.lat_max)
        return self

    def fingerprint(self) -> str:
        """SHA-256 over the order-independent state (ints + maxima).

        Equal fingerprints ⇒ bit-identical windowed SLO inputs.  Kahan sums
        are excluded (accumulation-order dependent at the ulp level).
        """
        h = hashlib.sha256()
        h.update(
            f"{self.config.window_s}:{self.config.bin_s}:{self.config.max_s}:"
            f"{self.horizon_s}:{self.n_windows}".encode()
        )
        for task in sorted(self.per_task):
            tw = self.per_task[task]
            h.update(task.encode())
            for arr in (tw.counts, tw.met, tw.lost, tw.shed, tw.degraded,
                        tw.hist, tw.overflow, tw.lat_max):
                h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    # -- aggregates -----------------------------------------------------------

    def tasks(self) -> List[str]:
        return sorted(self.per_task)

    @property
    def total_count(self) -> int:
        return sum(int(tw.counts.sum()) for tw in self.per_task.values())

    @property
    def total_met(self) -> int:
        return sum(int(tw.met.sum()) for tw in self.per_task.values())

    def window_counts(self, task: str) -> np.ndarray:
        return self.per_task[task].counts

    def window_met(self, task: str) -> np.ndarray:
        return self.per_task[task].met

    def window_errors(self, task: str) -> np.ndarray:
        """SLO errors per window: deadline misses + lost + shed requests."""
        tw = self.per_task[task]
        return (tw.counts - tw.met) + tw.lost + tw.shed

    def window_eligible(self, task: str) -> np.ndarray:
        """SLO denominator per window: completions + lost + shed requests."""
        tw = self.per_task[task]
        return tw.counts + tw.lost + tw.shed

    def window_mean_latency_s(self, task: str) -> np.ndarray:
        """Per-window mean latency (NaN where a window saw no completions)."""
        tw = self.per_task[task]
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                tw.counts > 0, (tw.lat_sum + tw.lat_comp) / tw.counts, np.nan
            )

    def window_quantile(self, task: str, q: float) -> np.ndarray:
        """Per-window ceil-rank latency quantile from the histogram plane.

        Upper bin edges (window maximum for overflow windows), NaN for empty
        windows — same contract as :meth:`LatencyHistogram.quantile`.
        """
        if not (0.0 <= q <= 100.0):
            raise SimulationError(f"quantile {q} outside [0, 100]")
        tw = self.per_task[task]
        out = np.full(self.n_windows, np.nan)
        n = tw.hist.sum(axis=1) + tw.overflow
        nonempty = np.flatnonzero(n)
        if nonempty.size == 0:
            return out
        cum = np.cumsum(tw.hist[nonempty], axis=1)
        rank = np.ceil((n[nonempty] - 1) * q / 100.0).astype(np.int64)
        inside = rank < cum[:, -1]
        rows = np.flatnonzero(inside)
        for r in rows.tolist():
            b = int(np.searchsorted(cum[r], rank[r] + 1, side="left"))
            out[nonempty[r]] = (b + 1) * self.config.bin_s
        out[nonempty[~inside]] = tw.lat_max[nonempty[~inside]]
        return out

    def snapshot(self) -> Dict[str, object]:
        """JSON-able state for the metrics stream / dashboard."""
        tasks = {}
        for task in self.tasks():
            tw = self.per_task[task]
            n = tw.counts
            with np.errstate(invalid="ignore", divide="ignore"):
                miss = np.where(n > 0, (n - tw.met) / n, np.nan)
            tasks[task] = {
                "counts": tw.counts.tolist(),
                "met": tw.met.tolist(),
                "lost": tw.lost.tolist(),
                "shed": tw.shed.tolist(),
                "degraded": tw.degraded.tolist(),
                "miss_rate": [None if np.isnan(x) else float(x) for x in miss],
                "p99_s": [
                    None if np.isnan(x) else float(x)
                    for x in self.window_quantile(task, 99)
                ],
            }
        return {
            "window_s": self.config.window_s,
            "bin_s": self.config.bin_s,
            "max_s": self.config.max_s,
            "horizon_s": self.horizon_s,
            "n_windows": self.n_windows,
            "tasks": tasks,
        }
