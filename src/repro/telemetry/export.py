"""Exporters: OpenMetrics text exposition + structured JSONL metrics streams.

Two output formats for the same state:

* :func:`openmetrics_text` renders a :class:`~repro.telemetry.metrics.
  MetricsRegistry` snapshot in the OpenMetrics/Prometheus text exposition
  format — dot-separated repo names become underscore-separated metric
  families, counters gain the ``_total`` suffix, histograms emit cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``, and the document ends
  with ``# EOF`` as the spec requires.  Any Prometheus-compatible scraper or
  ``promtool check metrics`` can consume the result.
* :class:`MetricsStreamWriter` appends timestamped JSONL events — registry
  snapshots, windowed-metric snapshots, SLO reports — producing the saved
  metrics stream ``repro monitor --from`` replays.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, IO, Iterator, List, Optional

from repro.telemetry.metrics import MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    """Sanitize a dot-separated repo metric name into an OpenMetrics name."""
    flat = _INVALID.sub("_", f"{prefix}_{name}" if prefix else name)
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def openmetrics_lines(
    snapshot: Dict[str, Dict[str, Any]], prefix: str = "repro"
) -> Iterator[str]:
    """Render a registry snapshot as OpenMetrics text lines (with ``# EOF``)."""
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap["type"]
        flat = _metric_name(name, prefix)
        if kind == "counter":
            yield f"# TYPE {flat} counter"
            yield f"{flat}_total {_fmt(snap['value'])}"
        elif kind == "gauge":
            if snap["count"] == 0:
                continue
            yield f"# TYPE {flat} gauge"
            yield f"{flat} {_fmt(snap['value'])}"
            yield f"# TYPE {flat}_min gauge"
            yield f"{flat}_min {_fmt(snap['min'])}"
            yield f"# TYPE {flat}_max gauge"
            yield f"{flat}_max {_fmt(snap['max'])}"
        else:  # histogram
            yield f"# TYPE {flat} histogram"
            cum = 0
            for bound, count in zip(snap["bounds"], snap["counts"]):
                cum += count
                yield f'{flat}_bucket{{le="{_fmt(bound)}"}} {cum}'
            cum += snap["overflow"]
            yield f'{flat}_bucket{{le="+Inf"}} {cum}'
            yield f"{flat}_sum {_fmt(snap['sum'])}"
            yield f"{flat}_count {snap['total']}"
    yield "# EOF"


def openmetrics_text(registry: MetricsRegistry, prefix: str = "repro") -> str:
    """The full OpenMetrics document for a registry's current state."""
    return "\n".join(openmetrics_lines(registry.snapshot(), prefix)) + "\n"


def export_openmetrics(
    registry: MetricsRegistry, path: str, prefix: str = "repro"
) -> None:
    """Write the OpenMetrics document to ``path``."""
    with open(path, "w") as fh:
        fh.write(openmetrics_text(registry, prefix))


class MetricsStreamWriter:
    """Append-only JSONL event log of metric snapshots.

    Each line is one event: ``{"t_s": <sim-time>, "kind": <event kind>,
    ...payload}``.  The stream is self-describing — ``repro monitor --from``
    replays it without any side channel — and append-only, so a live run and
    a tailing dashboard can share the file.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: Optional[IO[str]] = open(path, "w")

    def write(self, kind: str, t_s: float, payload: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"metrics stream {self.path} already closed")
        event = {"t_s": float(t_s), "kind": kind}
        event.update(payload)
        self._fh.write(json.dumps(event) + "\n")
        self._fh.flush()

    def registry_snapshot(self, t_s: float, registry: MetricsRegistry) -> None:
        self.write("registry", t_s, {"metrics": registry.snapshot()})

    def windowed_snapshot(self, t_s: float, snapshot: Dict[str, Any]) -> None:
        self.write("windows", t_s, {"windows": snapshot})

    def slo_report(self, t_s: float, report_dict: Dict[str, Any]) -> None:
        self.write("slo", t_s, {"slo": report_dict})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "MetricsStreamWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_metrics_stream(path: str) -> List[Dict[str, Any]]:
    """Parse a saved metrics stream back into its event list."""
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
