"""Text dashboard rendering for ``repro monitor``.

Pure functions from plain-dict snapshots (the same JSON shapes the metrics
stream carries: ``WindowedMetrics.snapshot()``, ``SLOReport.as_dict()``,
``MetricsRegistry.snapshot()``) to a fixed-width text frame.  Keeping the
renderer side-effect free makes it trivially testable and lets the live
dashboard and the ``--from`` replay share one code path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

_SPARK = " ▁▂▃▄▅▆▇█"


def sparkline(values: List[Optional[float]], width: int = 40) -> str:
    """Render a numeric series as unicode block characters.

    ``None``/missing samples render as ``·``.  The series is tail-truncated
    to ``width`` samples; scale is 0..max over the rendered span.
    """
    tail = values[-width:] if len(values) > width else values
    present = [v for v in tail if v is not None]
    top = max(present) if present else 0.0
    out = []
    for v in tail:
        if v is None:
            out.append("·")
        elif top <= 0:
            out.append(_SPARK[1])
        else:
            idx = 1 + int(round((len(_SPARK) - 2) * (v / top)))
            out.append(_SPARK[min(idx, len(_SPARK) - 1)])
    return "".join(out)


def _slo_section(slo: Dict[str, Any]) -> List[str]:
    lines = [
        f"{'task':>12s} {'target':>7s} {'achieved':>9s} {'budget':>8s} "
        f"{'alerts':>6s}  status"
    ]
    for task in sorted(slo.get("tasks", {})):
        t = slo["tasks"][task]
        lines.append(
            f"{task:>12s} {t['target'] * 100:6.2f}% {t['achieved'] * 100:8.3f}% "
            f"{t['budget_spent'] * 100:7.1f}% {len(t['alerts']):6d}  {t['status']}"
        )
    return lines


def _windows_section(windows: Dict[str, Any], width: int) -> List[str]:
    lines = [f"miss-rate per {windows['window_s']:g}s window (tail):"]
    for task in sorted(windows.get("tasks", {})):
        t = windows["tasks"][task]
        total = sum(t["counts"])
        lines.append(
            f"  {task:>12s} [{sparkline(t['miss_rate'], width)}] n={total}"
        )
    return lines


def _gauge_rows(
    registry: Dict[str, Any], prefix: str
) -> List[Dict[str, Any]]:
    rows = []
    for name in sorted(registry):
        if name.startswith(prefix) and registry[name]["type"] == "gauge":
            rows.append({"name": name[len(prefix):], **registry[name]})
    return rows


def _shard_section(registry: Dict[str, Any]) -> List[str]:
    """Per-shard health table from ``shard.<s>.<field>`` gauges."""
    shards: Dict[str, Dict[str, float]] = {}
    for name in registry:
        parts = name.split(".")
        if len(parts) == 3 and parts[0] == "shard" and parts[1].isdigit():
            snap = registry[name]
            if snap["type"] == "gauge" and snap.get("count"):
                shards.setdefault(parts[1], {})[parts[2]] = snap["value"]
    if not shards:
        return []
    fields = ("tasks", "objective", "solve_s", "migrations_in",
              "utilization", "violation_rate", "drifted")
    header = f"{'shard':>6s}" + "".join(f"{f:>15s}" for f in fields)
    lines = ["per-shard health:", header]
    for s in sorted(shards, key=int):
        row = f"{s:>6s}"
        for f in fields:
            v = shards[s].get(f)
            row += f"{v:15.4g}" if v is not None else f"{'-':>15s}"
        lines.append(row)
    return lines


def _queue_section(registry: Dict[str, Any], width: int) -> List[str]:
    depth = _gauge_rows(registry, "sim.queue_depth.")
    if not depth:
        return []
    lines = ["queue depth (last / max):"]
    for row in depth[: max(1, width // 5)]:
        lines.append(
            f"  {row['name']:>12s} {row['value']:8.1f} / {row['max']:8.1f}"
        )
    return lines


def render_dashboard(
    t_s: float,
    windows: Optional[Dict[str, Any]] = None,
    slo: Optional[Dict[str, Any]] = None,
    registry: Optional[Dict[str, Any]] = None,
    title: str = "repro monitor",
    width: int = 48,
) -> str:
    """Render one dashboard frame from snapshot dicts; absent sections skip."""
    bar = "=" * 72
    lines = [bar, f"{title} @ t={t_s:.1f}s", bar]
    if slo is not None:
        status = "OK" if slo.get("ok") else "VIOLATED"
        lines.append(f"SLO: {status}")
        lines.extend(_slo_section(slo))
        lines.append("")
    if windows is not None:
        lines.extend(_windows_section(windows, width))
        lines.append("")
    if registry is not None:
        shard = _shard_section(registry)
        if shard:
            lines.extend(shard)
            lines.append("")
        queues = _queue_section(registry, width)
        if queues:
            lines.extend(queues)
            lines.append("")
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines)
