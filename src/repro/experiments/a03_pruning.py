"""A3 (ablation): dominance pruning — speed for free.

DESIGN.md claims feature-space dominance pruning is *allocation-safe*: it
shrinks the candidate set the solver iterates over without ever removing a
plan that could be optimal under any allocation.  This ablation verifies both
halves on real instances: identical objectives with and without pruning, at
a large reduction in candidate count and solve time.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.experiments.common import ExperimentResult
from repro.workloads.scenarios import build_scenario

DEFAULT_SIZES = (4, 8)


def run(
    scenario: str = "smart_city",
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 0,
) -> ExperimentResult:
    """Solve identical instances with pruned and unpruned candidate sets."""
    rows = []
    extras = {"match": [], "reduction": []}
    for n in sizes:
        cluster, tasks = build_scenario(scenario, num_tasks=n, seed=seed)
        pruned = [build_candidates(t, prune=True) for t in tasks]
        unpruned = [build_candidates(t, prune=False) for t in tasks]
        t0 = time.perf_counter()
        r_p = JointOptimizer(cluster).solve(tasks, candidates=pruned, seed=seed)
        t_p = time.perf_counter() - t0
        t0 = time.perf_counter()
        r_u = JointOptimizer(cluster).solve(tasks, candidates=unpruned, seed=seed)
        t_u = time.perf_counter() - t0
        n_p = sum(len(c) for c in pruned)
        n_u = sum(len(c) for c in unpruned)
        match = bool(
            np.isclose(r_p.plan.objective_value, r_u.plan.objective_value, rtol=1e-6)
        )
        extras["match"].append(match)
        extras["reduction"].append(n_u / n_p)
        rows.append(
            (
                n,
                n_u,
                n_p,
                n_u / n_p,
                t_u,
                t_p,
                r_u.plan.objective_value * 1e3,
                r_p.plan.objective_value * 1e3,
                "yes" if match else "NO",
            )
        )
    return ExperimentResult(
        exp_id="A3",
        title="ablation: dominance pruning (allocation-safety check)",
        headers=[
            "tasks",
            "cands_full",
            "cands_pruned",
            "reduction",
            "solve_full_s",
            "solve_pruned_s",
            "obj_full_ms",
            "obj_pruned_ms",
            "objectives_match",
        ],
        rows=rows,
        notes=[
            "pruning must never change the objective — only the time to find it"
        ],
        extras=extras,
    )
