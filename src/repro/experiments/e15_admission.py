"""E15 (extension figure): admission control under increasing overload.

Past a load threshold no joint plan meets every deadline; the admission
controller (:mod:`repro.core.admission`) rejects the least valuable violating
tasks until the admitted set is schedulable.  The sweep increases the offered
task count and reports the admission ratio plus the *measured* deadline
satisfaction of the admitted set.

Expected shape: admission ratio is ~1 until the edge saturates, then decays
roughly as capacity/load; measured satisfaction of the *admitted* tasks stays
high throughout — the whole point of rejecting rather than degrading everyone
(contrast with E4/E5, where the un-gated system's miss rate climbs without
bound).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.admission import admit_tasks
from repro.core.candidates import build_candidates
from repro.experiments.common import ExperimentResult, simulate_measured
from repro.sim import SimulationConfig
from repro.workloads.scenarios import build_scenario

DEFAULT_LOADS = (4, 8, 16, 32)


def run(
    scenario: str = "smart_city",
    loads: Sequence[int] = DEFAULT_LOADS,
    deadline_scale: float = 1.25,
    horizon_s: float = 20.0,
    seed: int = 0,
    replications: int = 1,
    sim_workers: int = 1,
    streaming: bool = False,
    cells: int = 1,
) -> ExperimentResult:
    """Sweep offered load; admit, then simulate the admitted set.

    ``streaming``/``cells`` select the bounded-memory chunked sweep and the
    sharded traffic-cell fan-out for long-horizon runs.
    """
    rows = []
    extras = {"ratio": {}, "admitted_satisfaction": {}}
    for n in loads:
        cluster, tasks = build_scenario(scenario, num_tasks=n, seed=seed)
        tasks = [
            dataclasses.replace(t, deadline_s=t.deadline_s * deadline_scale)
            for t in tasks
        ]
        cands = [build_candidates(t) for t in tasks]
        res = admit_tasks(tasks, cluster, candidates=cands, seed=seed)
        extras["ratio"][n] = res.admission_ratio
        if res.admitted and res.plan is not None:
            rep = simulate_measured(
                res.admitted,
                res.plan,
                cluster,
                SimulationConfig(
                    horizon_s=horizon_s, warmup_s=min(2.0, horizon_s / 5), seed=seed,
                    replications=replications, sim_workers=sim_workers,
                    streaming=streaming,
                ),
                cells=cells,
            )
            satisfied = 1.0 - rep.miss_rate
            mean_ms = rep.mean_latency_s * 1e3
        else:
            satisfied, mean_ms = float("nan"), float("nan")
        extras["admitted_satisfaction"][n] = satisfied
        rows.append(
            (
                n,
                len(res.admitted),
                res.admission_ratio * 100,
                res.rounds,
                mean_ms,
                satisfied * 100,
            )
        )
    return ExperimentResult(
        exp_id="E15",
        title=f"admission control under overload ({scenario}, deadlines x{deadline_scale})",
        headers=["offered", "admitted", "ratio_%", "rounds", "admitted_mean_ms", "admitted_satisfied_%"],
        rows=rows,
        notes=[
            "rejecting the right tasks keeps the admitted set's measured "
            "deadline satisfaction high as offered load grows"
        ],
        extras=extras,
    )
