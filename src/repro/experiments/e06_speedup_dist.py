"""E6 (figure): speedup distribution of joint optimization across scenarios.

Randomized deployments (cluster shape, bandwidths, task mixes) are solved by
the joint optimizer and every baseline; each resulting plan is then *measured*
by the discrete-event simulator over a fixed horizon, and the per-scenario
speedup (baseline measured mean latency / joint measured mean latency) is
aggregated per baseline.  Measuring — rather than using predicted objectives —
matters here: a contention-oblivious baseline can drive a queue unstable, and
a finite measurement horizon is how a real testbed (and the paper family)
turns that into a large-but-finite slowdown.

The sibling LEIME paper reports 1.1–18.7× "in different situations"; the
reconstructed expectation is that the pooled speedup distribution spans
roughly that band: near 1× where a baseline happens to be right, order-10×
where it is badly wrong.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.candidates import build_candidates
from repro.experiments.common import (
    ExperimentResult,
    default_strategies,
    run_strategies,
    simulate_measured,
)
from repro.rng import derive
from repro.sim import SimulationConfig
from repro.workloads.generator import RandomScenarioConfig, random_scenario

#: Cap applied to reported max speedups (unstable baselines grow with the
#: measurement horizon; the cap keeps tables readable).
CAP = 100.0


def run(
    num_scenarios: int = 40,
    horizon_s: float = 20.0,
    seed: int = 7,
    config: RandomScenarioConfig = RandomScenarioConfig(),
    replications: int = 1,
    sim_workers: int = 1,
) -> ExperimentResult:
    """Solve + simulate ``num_scenarios`` random instances; report speedups."""
    speedups: Dict[str, List[float]] = {}
    strategies = default_strategies()
    for k in range(num_scenarios):
        cluster, tasks = random_scenario(derive(seed, "scenario", k), config)
        cands = [build_candidates(t) for t in tasks]
        plans = run_strategies(tasks, cluster, strategies, candidates=cands, seed=k)
        measured: Dict[str, float] = {}
        for name, plan in plans.items():
            rep = simulate_measured(
                tasks,
                plan,
                cluster,
                SimulationConfig(
                    horizon_s=horizon_s, warmup_s=horizon_s / 6, seed=k,
                    replications=replications, sim_workers=sim_workers,
                ),
            )
            measured[name] = rep.mean_latency_s
        joint = measured.get("joint")
        if joint is None or not np.isfinite(joint) or joint <= 0:
            continue
        for name, lat in measured.items():
            if name != "joint" and np.isfinite(lat):
                speedups.setdefault(name, []).append(float(lat / joint))
    rows = []
    for name in sorted(speedups):
        arr = np.array(speedups[name])
        rows.append(
            (
                name,
                len(arr),
                float(np.min(arr)),
                float(np.percentile(arr, 50)),
                float(np.mean(arr)),
                float(np.percentile(arr, 95)),
                float(np.minimum(np.max(arr), CAP)),
            )
        )
    all_sp = np.concatenate([np.array(v) for v in speedups.values()])
    return ExperimentResult(
        exp_id="E6",
        title=f"measured speedup of joint over baselines ({num_scenarios} random scenarios)",
        headers=["baseline", "n", "min", "p50", "mean", "p95", "max"],
        rows=rows,
        notes=[
            f"pooled measured-speedup range: {all_sp.min():.2f}x – "
            f"{min(all_sp.max(), CAP):.1f}x "
            "(expected band per the paper family: ~1.1–18.7x)",
        ],
        extras={"speedups": speedups},
    )
