"""E18: chance-constrained deadline calibration under service-time jitter.

The chance-constrained solver certifies a task at tail level ε when its
buffered latency ``μ + κ(ε)·σ`` meets the deadline (:mod:`repro.core.risk`).
This experiment closes the loop empirically: sweep ε × offered load with
per-request service jitter switched on in the simulator, and compare the
*realized* per-request violation rate among certified tasks against the
target ε.  The calibration claim is one-sided — Cantelli buffering plus the
sub-additive variance bound must keep realized violation **at or below** ε;
the slack between the two is the price of distribution-free guarantees and
is reported as conservatism.

Two arms per cell:

- **deterministic** — the risk-blind solver; a task counts as certified
  when its *mean* latency meets the deadline.  Under jitter its certified
  tasks violate freely (there is no buffer), which is the failure mode the
  buffered solver exists to prevent.
- **buffered** — the same solver with ``RiskConfig(ε, σ)``; certified means
  buffered latency ≤ deadline.

Both arms replay under identical seeds and identical jitter, so any gap in
violation rates is attributable to the buffering alone.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.risk import RiskConfig
from repro.experiments.common import ExperimentResult, simulate_measured
from repro.sim.metrics import SimulationReport
from repro.sim.runner import SimulationConfig
from repro.workloads.scenarios import build_scenario


def _certified(plan, tasks) -> Tuple[str, ...]:
    """Tasks whose plan latency (mean or buffered) meets the deadline."""
    return tuple(
        t.name for t in tasks if plan.latencies[t.name] <= t.deadline_s
    )


def _violation(report: SimulationReport, certified: Sequence[str]) -> Tuple[float, int]:
    """Request-weighted deadline-miss rate over the certified tasks."""
    total = 0
    missed = 0.0
    for name in certified:
        st = report.per_task.get(name)
        if st is None:
            continue
        total += st.count
        missed += st.miss_rate * st.count
    return (missed / total if total else 0.0), total


def run(
    scenario: str = "smart_city",
    num_tasks: int = 6,
    epsilons: Sequence[float] = (0.01, 0.05, 0.1),
    load_scales: Sequence[float] = (0.6, 1.0, 1.4),
    service_noise: float = 0.15,
    deadline_scale: float = 3.0,
    horizon_s: float = 30.0,
    warmup_s: float = 3.0,
    seed: int = 0,
    sim_workers: int = 1,
) -> ExperimentResult:
    """Sweep ε × load; check realized violation ≤ ε among certified tasks.

    ``deadline_scale`` loosens the scenario deadlines so that the
    deterministic arm certifies (means fit comfortably) while jitter still
    drives real tail misses at higher loads — the regime where buffering
    matters.  ``extras["calibration_ok"]`` is the headline boolean: True iff
    every (ε, load) cell's buffered arm realized violation ≤ ε.
    """
    cluster, base_tasks = build_scenario(scenario, num_tasks=num_tasks, seed=1)
    rows = []
    cells = []
    calibration_ok = True
    beats_deterministic = False

    for load in load_scales:
        tasks = [
            dataclasses.replace(
                t,
                arrival_rate=t.arrival_rate * load,
                deadline_s=t.deadline_s * deadline_scale,
            )
            for t in base_tasks
        ]
        sim_cfg = SimulationConfig(
            horizon_s=horizon_s,
            warmup_s=warmup_s,
            seed=seed + 7,
            service_noise=service_noise,
            sim_workers=sim_workers,
        )
        det_plan = JointOptimizer(cluster).solve(tasks, seed=seed).plan
        det_cert = _certified(det_plan, tasks)
        det_rep = simulate_measured(tasks, det_plan, cluster, sim_cfg)
        det_viol, det_n = _violation(det_rep, det_cert)

        for eps in epsilons:
            cfg = JointSolverConfig(
                risk=RiskConfig(epsilon=eps, service_noise=service_noise)
            )
            buf_plan = JointOptimizer(cluster, config=cfg).solve(
                tasks, seed=seed
            ).plan
            buf_cert = _certified(buf_plan, tasks)
            buf_rep = simulate_measured(tasks, buf_plan, cluster, sim_cfg)
            buf_viol, buf_n = _violation(buf_rep, buf_cert)

            ok = buf_viol <= eps + 1e-12
            calibration_ok = calibration_ok and ok
            if det_viol > eps and buf_viol < det_viol:
                beats_deterministic = True
            rows.append(
                (
                    f"{load:.1f}x",
                    f"{eps:.2f}",
                    f"{len(det_cert)}/{len(tasks)}",
                    f"{det_viol * 100:.2f}",
                    f"{len(buf_cert)}/{len(tasks)}",
                    f"{buf_viol * 100:.2f}",
                    f"{(eps - buf_viol) * 100:+.2f}",
                    "yes" if ok else "NO",
                )
            )
            cells.append(
                {
                    "load": load,
                    "epsilon": eps,
                    "deterministic_certified": len(det_cert),
                    "deterministic_violation": det_viol,
                    "deterministic_requests": det_n,
                    "buffered_certified": len(buf_cert),
                    "buffered_violation": buf_viol,
                    "buffered_requests": buf_n,
                    "conservatism": eps - buf_viol,
                    "ok": ok,
                }
            )

    notes = [
        f"jitter: mean-one log-normal, σ={service_noise} per pipeline stage; "
        f"deadlines at {deadline_scale}x the scenario defaults",
        "violation = request-weighted deadline-miss rate over *certified* "
        "tasks only (deterministic arm: mean ≤ deadline; buffered arm: "
        "μ+κσ ≤ deadline)",
        "conservatism = ε − realized: Cantelli is distribution-free, so the "
        "guarantee is one-sided and the slack is expected",
        f"calibration {'holds' if calibration_ok else 'FAILS'} in every "
        f"(ε, load) cell"
        + (
            "; buffered arm beats the deterministic arm's violation rate "
            "on at least one over-ε cell"
            if beats_deterministic
            else ""
        ),
    ]
    return ExperimentResult(
        exp_id="E18",
        title="chance-constrained calibration: realized tail violation vs ε",
        headers=[
            "load", "eps", "det cert", "det viol%",
            "buf cert", "buf viol%", "slack%", "ok",
        ],
        rows=rows,
        notes=notes,
        extras={
            "calibration_ok": calibration_ok,
            "beats_deterministic": beats_deterministic,
            "cells": cells,
            "service_noise": service_noise,
            "deadline_scale": deadline_scale,
        },
    )
