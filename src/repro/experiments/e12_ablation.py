"""E12 (table): component ablation.

One fixed mixed scenario; the full strategy ladder from "no knobs" through
each single knob to the full joint optimizer and its distributed variant.
Expected ordering (objective, lower is better):

    joint <= distributed ≈ greedy < {surgery-only, allocation-only}
          < single-placement baselines

i.e. each knob helps alone and the combination beats either alone.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.candidates import build_candidates
from repro.core.distributed import best_response_offloading
from repro.experiments.common import (
    ExperimentResult,
    default_strategies,
    run_strategies,
    simulate_measured,
)
from repro.sim import SimulationConfig
from repro.workloads.scenarios import build_scenario


def run(
    scenario: str = "smart_city",
    num_tasks: int = 8,
    horizon_s: float = 20.0,
    seed: int = 0,
    replications: int = 1,
    sim_workers: int = 1,
) -> ExperimentResult:
    """Full ablation ladder on one instance, predicted + simulated."""
    cluster, tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    cands = [build_candidates(t) for t in tasks]
    plans = run_strategies(
        tasks, cluster, default_strategies(), candidates=cands, seed=seed
    )
    plans["joint_distributed"] = best_response_offloading(
        tasks, cluster, candidates=cands, seed=seed
    ).plan

    rows = []
    extras: Dict[str, Dict[str, float]] = {}
    for name in sorted(plans, key=lambda n: plans[n].objective_value):
        plan = plans[name]
        rep = simulate_measured(
            tasks,
            plan,
            cluster,
            SimulationConfig(
                horizon_s=horizon_s, warmup_s=min(2.0, horizon_s / 5), seed=seed,
                replications=replications, sim_workers=sim_workers,
            ),
        )
        extras[name] = {
            "objective": plan.objective_value,
            "measured_mean": rep.mean_latency_s,
            "miss": rep.miss_rate,
            "accuracy": rep.accuracy,
        }
        rows.append(
            (
                name,
                plan.objective_value * 1e3
                if np.isfinite(plan.objective_value)
                else float("inf"),
                rep.mean_latency_s * 1e3,
                rep.percentile_latency_s(99) * 1e3,
                rep.miss_rate * 100,
                rep.accuracy,
            )
        )
    return ExperimentResult(
        exp_id="E12",
        title=f"component ablation ({scenario}, {num_tasks} tasks)",
        headers=["strategy", "predicted_ms", "measured_ms", "p99_ms", "miss_%", "accuracy"],
        rows=rows,
        notes=[
            "surgery-only (edgent/branchy) and allocation-only each beat static "
            "placement; the joint combination beats both single knobs"
        ],
        extras={"ablation": extras},
    )
