"""E16 (extension figure): resilience under a mid-run server crash.

A crash-recover fault takes down the busiest server (the one carrying the
most plan assignments) for a third of the horizon.  Three operating modes
replay the *identical* workload and fault schedule:

- **static** — the solved plan with no failure handling: every offload
  attempt touching the downed server is lost;
- **failover** — the :class:`~repro.faults.policy.FailurePolicy` ladder
  (timeout, backoff retry, failover to the standby server slice, graceful
  local degradation) recovers requests without re-planning;
- **failover+repair** — the ladder plus the online controller's
  failure-triggered plan repair: a ``server_down`` sample forces an
  immediate re-solve over the surviving servers (bypassing drift
  hysteresis), new arrivals launch on the repaired plan, and a
  ``server_up`` sample restores the original placement after recovery.

Expected shape: static loses a fault-proportional slice of the workload;
failover completes everything at some latency cost (retries queue on the
survivor); repair additionally shortens the degraded window because new
arrivals never target the dead server at all.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.core.online import ControllerConfig, EnvironmentSample, OnlineController
from repro.experiments.common import ExperimentResult, simulate_measured
from repro.faults.policy import FailurePolicy, PlanUpdate
from repro.faults.schedule import FaultSchedule
from repro.sim import SimulationConfig
from repro.workloads.scenarios import build_scenario


def run(
    scenario: str = "smart_city",
    num_tasks: int = 6,
    deadline_scale: float = 1.5,
    horizon_s: float = 20.0,
    crash_frac: float = 0.35,
    down_frac: float = 0.35,
    detection_lag_s: float = 0.1,
    seed: int = 0,
    replications: int = 1,
    sim_workers: int = 1,
) -> ExperimentResult:
    """Compare static / failover / failover+repair under a crash-recover fault.

    ``deadline_scale`` relaxes deadlines (as E15 does) so the instance is
    feasible *before* the fault — the interesting question is what the crash
    does, not whether the scenario was overloaded to begin with.
    """
    import dataclasses

    cluster, tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    tasks = [
        dataclasses.replace(t, deadline_s=t.deadline_s * deadline_scale)
        for t in tasks
    ]
    cands = [build_candidates(t) for t in tasks]
    # the plan all three modes replay: a plain joint solve (no shedding —
    # the static baseline must launch every task)
    plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=seed).plan
    # the repair controller may shed overload survivors after the crash
    controller = OnlineController(
        cluster,
        tasks,
        config=ControllerConfig(shed_on_overload=True),
        candidates=cands,
        seed=seed,
    )

    # crash the busiest server: the failure that actually hurts this plan
    by_server = Counter(
        s for s in plan.assignment.values() if s is not None
    )
    target_idx = by_server.most_common(1)[0][0] if by_server else 0
    target = cluster.servers[target_idx].name
    crash_s = crash_frac * horizon_s
    down_s = down_frac * horizon_s
    schedule = FaultSchedule.crash_recover(target, crash_s, down_s)

    # controller repair: the health check reports the crash (and later the
    # recovery) one detection lag after the transition
    updates: List[PlanUpdate] = []
    controller.observe(
        EnvironmentSample(time_s=crash_s + detection_lag_s, server_down=(target,))
    )
    updates.append(controller.repair_update(crash_s + detection_lag_s))
    controller.observe(
        EnvironmentSample(
            time_s=crash_s + down_s + detection_lag_s, server_up=(target,)
        )
    )
    updates.append(controller.repair_update(crash_s + down_s + detection_lag_s))

    base = SimulationConfig(
        horizon_s=horizon_s,
        warmup_s=min(2.0, horizon_s / 5),
        seed=seed,
        replications=replications,
        sim_workers=sim_workers,
        faults=schedule,
    )
    modes = [
        ("static", base, ()),
        ("failover", _with_policy(base), ()),
        ("failover+repair", _with_policy(base), tuple(updates)),
    ]
    rows = []
    extras = {"crashed_server": target, "crash_s": crash_s, "down_s": down_s,
              "shed_tasks": controller.shed_tasks, "counters": {}}
    deadlines = {t.name: t.deadline_s for t in tasks}
    for name, cfg, plan_updates in modes:
        rep = simulate_measured(
            tasks, plan, cluster, cfg, plan_updates=plan_updates
        )
        c = rep.counters
        extras["counters"][name] = c.as_dict()
        # tail deadline satisfaction: tasks whose per-task p99 latency meets
        # their own deadline — the chance-constrained view of the fault run
        # (mean latency can look healthy while the tail blows the deadline)
        sat99 = sum(
            1
            for tn, st in rep.per_task.items()
            if st.count > 0 and st.p99_latency_s <= deadlines[tn]
        )
        rows.append(
            (
                name,
                rep.mean_latency_s * 1e3,
                rep.percentile_latency_s(99) * 1e3,
                rep.percentile_latency_s(99.9) * 1e3,
                rep.miss_rate * 100,
                f"{sat99}/{len(tasks)}",
                rep.goodput(),
                c.lost,
                c.shed,
                c.degraded_completions,
                c.failovers,
                c.retries,
            )
        )
    return ExperimentResult(
        exp_id="E16",
        title=(
            f"resilience under {target} crash at t={crash_s:.1f}s for "
            f"{down_s:.1f}s ({scenario}, n={num_tasks})"
        ),
        headers=[
            "mode", "mean_ms", "p99_ms", "p999_ms", "miss_%", "p99_sat",
            "goodput_rps", "lost", "shed", "degraded", "failovers", "retries",
        ],
        rows=rows,
        notes=[
            "identical workload and fault schedule across modes; only the "
            "recovery machinery differs",
            "static loses every request stranded on the dead server; the "
            "policy ladder completes them via retry/failover/degradation; "
            "repair re-plans survivors so new arrivals avoid the dead server",
            "p999 and p99_sat (tasks whose own p99 latency meets their "
            "deadline) expose the tail cost recovery hides from the mean: "
            "failover completes everything but queues retries on the "
            "survivor, which the p99/p999 columns pay for",
        ],
        extras=extras,
    )


def _with_policy(base: SimulationConfig) -> SimulationConfig:
    import dataclasses

    return dataclasses.replace(base, failure_policy=FailurePolicy())
