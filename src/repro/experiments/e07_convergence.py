"""E7 (figure): convergence of the BCD solver and best-response dynamics.

Reports the objective trajectory per iteration/round.  Expected shape: both
monotone non-increasing; BCD converges within a handful of iterations; best
response needs a few rounds and lands within a few percent of BCD.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.candidates import build_candidates
from repro.core.distributed import best_response_offloading
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.experiments.common import ExperimentResult
from repro.workloads.scenarios import build_scenario


def run(
    scenario: str = "smart_city",
    num_tasks: int = 8,
    seed: int = 0,
) -> ExperimentResult:
    """Record objective-vs-iteration for both solvers on one instance."""
    cluster, tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    cands = [build_candidates(t) for t in tasks]

    res = JointOptimizer(
        cluster, config=JointSolverConfig(max_iterations=30, tol=0.0)
    ).solve(tasks, candidates=cands, seed=seed)
    br = best_response_offloading(tasks, cluster, candidates=cands, seed=seed)

    rows: List[tuple] = []
    for i, v in enumerate(res.history):
        rows.append(("bcd", i, v * 1e3))
    for i, v in enumerate(br.history):
        rows.append(("best_response", i, v * 1e3))
    gap = (br.plan.objective_value - res.plan.objective_value) / res.plan.objective_value
    return ExperimentResult(
        exp_id="E7",
        title=f"solver convergence ({scenario}, {num_tasks} tasks)",
        headers=["solver", "iteration", "objective_ms"],
        rows=rows,
        notes=[
            f"bcd converged={res.converged} in {res.iterations} iterations",
            f"best-response converged={br.converged} in {br.rounds} rounds, "
            f"{br.moves} moves; gap to centralized = {gap * 100:.2f}%",
        ],
        extras={
            "bcd_history": res.history,
            "br_history": br.history,
            "bcd_converged": res.converged,
            "br_converged": br.converged,
            "gap": gap,
        },
    )
