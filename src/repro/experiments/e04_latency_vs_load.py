"""E4 (figure): mean and tail latency vs number of concurrent tasks.

Each strategy plans the instance, then the discrete-event simulator measures
the latency distribution under Poisson load.  Expected shape: every curve
rises with load; contention-oblivious baselines (Neurosurgeon/Edgent) blow up
first because they all over-offload to the same resources; the joint curve
rises last and slowest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import AllocationOnly, EdgeOnly, Edgent, Neurosurgeon, RoundRobinStrategy
from repro.core.candidates import build_candidates
from repro.experiments.common import ExperimentResult, run_strategies, simulate_measured
from repro.sim import SimulationConfig
from repro.workloads.scenarios import build_scenario

DEFAULT_LOADS = (2, 4, 8, 16)


def run(
    scenario: str = "smart_city",
    loads: Sequence[int] = DEFAULT_LOADS,
    horizon_s: float = 20.0,
    seed: int = 0,
    replications: int = 1,
    sim_workers: int = 1,
    streaming: bool = False,
    cells: int = 1,
) -> ExperimentResult:
    """Sweep task count; simulate each strategy's plan; report mean/p99.

    ``streaming=True`` runs the bounded-memory chunked sweep (needed for
    very long horizons); ``cells > 1`` additionally shards each simulation
    across independent traffic cells merged via streaming accumulators.
    """
    strategies = [
        EdgeOnly(),
        Neurosurgeon(),
        Edgent(),
        AllocationOnly(),
        RoundRobinStrategy(),
    ]
    rows = []
    extras: Dict[str, Dict[int, Dict[str, float]]] = {}
    for n in loads:
        cluster, tasks = build_scenario(scenario, num_tasks=n, seed=seed)
        cands = [build_candidates(t) for t in tasks]
        plans = run_strategies(tasks, cluster, strategies, candidates=cands, seed=seed)
        for name, plan in plans.items():
            rep = simulate_measured(
                tasks,
                plan,
                cluster,
                SimulationConfig(
                    horizon_s=horizon_s, warmup_s=min(2.0, horizon_s / 5), seed=seed,
                    replications=replications, sim_workers=sim_workers,
                    streaming=streaming,
                ),
                cells=cells,
            )
            extras.setdefault(name, {})[n] = {
                "mean": rep.mean_latency_s,
                "p99": rep.percentile_latency_s(99),
                "miss": rep.miss_rate,
            }
            rows.append(
                (
                    n,
                    name,
                    rep.mean_latency_s * 1e3,
                    rep.percentile_latency_s(99) * 1e3,
                    rep.miss_rate * 100,
                )
            )
    return ExperimentResult(
        exp_id="E4",
        title=f"latency vs concurrent tasks ({scenario}, simulated)",
        headers=["tasks", "strategy", "mean_ms", "p99_ms", "miss_%"],
        rows=rows,
        notes=[
            "joint degrades slowest with load; contention-oblivious surgery "
            "(edgent/neurosurgeon) collapses once servers saturate"
        ],
        extras={"measured": extras},
    )
