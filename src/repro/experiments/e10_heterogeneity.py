"""E10 (figure): how edge heterogeneity amplifies the value of joint control.

Server *total* capacity is held constant while the fastest-to-slowest spread
grows.  Expected shape: heterogeneity-oblivious placement (round-robin /
edge-only) degrades as spread grows (half its tasks land on slow machines),
while the joint optimizer exploits the fast servers and keeps — or improves —
its objective, so the joint-vs-baseline gap widens with spread.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

import numpy as np

from repro.baselines import EdgeOnly, RoundRobinStrategy
from repro.core.candidates import build_candidates
from repro.devices.presets import heterogeneous_servers
from repro.devices.cluster import EdgeCluster
from repro.experiments.common import ExperimentResult, run_strategies
from repro.network.link import Link
from repro.units import mbps
from repro.workloads.scenarios import SCENARIOS, build_scenario

DEFAULT_SPREADS = (1.0, 2.0, 4.0, 8.0, 16.0)


def run(
    spreads: Sequence[float] = DEFAULT_SPREADS,
    num_tasks: int = 8,
    num_servers: int = 4,
    scenario: str = "smart_city",
    seed: int = 0,
) -> ExperimentResult:
    """Sweep heterogeneity at constant aggregate capacity."""
    strategies = [EdgeOnly(), RoundRobinStrategy()]
    rows = []
    extras: Dict[str, Dict[float, float]] = {}
    for spread in spreads:
        cluster, tasks = build_scenario(
            scenario,
            num_tasks=num_tasks,
            num_servers=num_servers,
            server_spread=spread,
            seed=seed,
        )
        # normalize total capacity so only the *spread* varies
        total = sum(s.peak_flops for s in cluster.servers)
        target = num_servers * 450e9 * 2.0  # fixed aggregate budget
        scale = target / total
        servers = [
            dataclasses.replace(s, peak_flops=s.peak_flops * scale)
            for s in cluster.servers
        ]
        cluster = EdgeCluster(
            cluster.end_devices,
            servers,
            cluster.topology,
        )
        cands = [build_candidates(t) for t in tasks]
        plans = run_strategies(tasks, cluster, strategies, candidates=cands, seed=seed)
        for name, p in plans.items():
            extras.setdefault(name, {})[spread] = p.objective_value
        gain_rr = plans["round_robin"].objective_value / plans["joint"].objective_value
        rows.append(
            (
                spread,
                plans["joint"].objective_value * 1e3,
                plans["round_robin"].objective_value * 1e3,
                plans["edge_only"].objective_value * 1e3,
                gain_rr,
            )
        )
    gains = [r[-1] for r in rows]
    return ExperimentResult(
        exp_id="E10",
        title="impact of server heterogeneity (constant aggregate capacity)",
        headers=["spread", "joint_ms", "round_robin_ms", "edge_only_ms", "gain_vs_rr"],
        rows=rows,
        notes=[
            f"joint-vs-round-robin gain grows from {gains[0]:.2f}x (homogeneous) "
            f"to {max(gains):.2f}x at the largest spread"
        ],
        extras={"objectives": extras},
    )
