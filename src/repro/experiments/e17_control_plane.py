"""E17 (figure): control-plane comparison at scale — centralized vs sharded
vs decentralized best response.

The sharded hierarchical control plane (DESIGN.md §11) exists to scale the
joint optimizer past the point where one centralized solve owns every task
and server.  This experiment measures what the partition costs and buys on
1k–10k-task instances:

- **centralized** — one `JointOptimizer` solve over the whole cluster (the
  quality reference; its superlinear pieces price all tasks × all servers);
- **sharded** — `shards`-way partitioned solves + cross-shard migration
  (`core.coordinator`); expected ≥5× faster at a few percent objective
  regression, with migration recovering part of the partition's loss;
- **decentralized** — best-response dynamics (`core.distributed`), the
  fully coordination-free lower bound on control-plane machinery.

Arrival rates are scaled down (``rate_scale``) so the large instances are
queue-stable and objectives comparable; per the E9 precedent, the O(n²)
local-search sweep is disabled above 32 tasks in *both* centralized and
sharded arms so the comparison isolates the control-plane structure.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

from repro.core.candidates import build_candidates
from repro.core.distributed import best_response_offloading
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.experiments.common import ExperimentResult
from repro.workloads.scenarios import build_scenario

#: (tasks, servers, shards) per instance.
DEFAULT_SIZES = ((1024, 32, 8), (4096, 128, 64))


def run(
    sizes: Sequence[tuple] = DEFAULT_SIZES,
    scenario: str = "smart_city",
    seed: int = 0,
    rate_scale: float = 0.1,
    migration_rounds: int = 3,
    br_rounds: int = 6,
) -> ExperimentResult:
    """Sweep instances; run all three control-plane arms on each."""
    rows = []
    extras = {"speedup": {}, "regression_pct": {}, "perf": {}, "migrations": {}}
    for n_tasks, n_servers, n_shards in sizes:
        cluster, tasks = build_scenario(
            scenario, num_tasks=n_tasks, num_servers=n_servers,
            server_spread=4.0, seed=seed,
        )
        if rate_scale != 1.0:
            tasks = [
                dataclasses.replace(t, arrival_rate=t.arrival_rate * rate_scale)
                for t in tasks
            ]
        cands = [build_candidates(t) for t in tasks]
        key = f"{n_tasks}x{n_servers}"
        local_search = n_tasks <= 32  # E9 precedent: O(n²) sweep off at scale

        cfg_c = JointSolverConfig(local_search=local_search)
        t0 = time.perf_counter()
        cen = JointOptimizer(cluster, config=cfg_c).solve(
            tasks, candidates=cands, seed=seed
        )
        t_cen = time.perf_counter() - t0

        cfg_s = JointSolverConfig(
            local_search=local_search,
            shards=n_shards,
            shard_by="interleave",
            migration_rounds=migration_rounds,
        )
        t0 = time.perf_counter()
        sha = JointOptimizer(cluster, config=cfg_s).solve(
            tasks, candidates=cands, seed=seed
        )
        t_sha = time.perf_counter() - t0

        t0 = time.perf_counter()
        dec = best_response_offloading(
            tasks, cluster, candidates=cands, max_rounds=br_rounds, seed=seed
        )
        t_dec = time.perf_counter() - t0

        obj_c = cen.plan.objective_value
        extras["speedup"][key] = t_cen / t_sha if t_sha > 0 else float("inf")
        extras["regression_pct"][key] = (
            (sha.plan.objective_value / obj_c - 1.0) * 100.0 if obj_c > 0 else 0.0
        )
        extras["migrations"][key] = list(sha.migration_history)
        extras["perf"][key] = {
            "centralized": cen.perf.as_dict(),
            "sharded": sha.perf.as_dict(),
        }
        rows.append((n_tasks, n_servers, 1, "centralized", t_cen,
                     obj_c * 1e3, cen.iterations, 0))
        rows.append((n_tasks, n_servers, n_shards, "sharded", t_sha,
                     sha.plan.objective_value * 1e3, sha.iterations,
                     sha.perf.migrations))
        rows.append((n_tasks, n_servers, n_shards, "decentralized", t_dec,
                     dec.plan.objective_value * 1e3, dec.rounds, dec.moves))
    return ExperimentResult(
        exp_id="E17",
        title="control plane at scale: centralized vs sharded vs decentralized",
        headers=["tasks", "servers", "shards", "arm", "wall_s",
                 "objective_ms", "rounds", "moves"],
        rows=rows,
        notes=[
            "sharded = partitioned solves + cross-shard migration; "
            "speedup comes from shard-sized Hungarian matchings and "
            "cost-matrix sweeps, regression stays within a few percent "
            "(extras: speedup, regression_pct, migrations per instance)"
        ],
        extras=extras,
    )
