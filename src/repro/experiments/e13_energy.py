"""E13 (figure): device energy per inference vs latency across strategies.

Energy is the end device's battery cost per request, decomposed into local
compute, radio transmission, and idle waiting (see
:class:`~repro.devices.energy.EnergyModel`).  Both axes are *per-request*
quantities (no queueing): the figure isolates the energy/latency tradeoff of
the plans themselves, so strategies whose queues would be unstable at the
offered load still appear (their latency axis is the per-request service
time a single inference would see).

Expected shape: device-only burns the most energy (all compute local); full
offload trades compute joules for radio + waiting joules; joint plans sit on
the knee — less energy *and* less latency than either extreme in
bandwidth-reasonable regimes.  The default scenario uses capable end devices
(``mobile_ar``) where local execution is a live option and the knee is
visible.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.allocation import Allocation, solution_latencies
from repro.core.candidates import build_candidates
from repro.devices.energy import EnergyModel
from repro.devices.latency import LatencyModel
from repro.experiments.common import ExperimentResult, default_strategies, run_strategies
from repro.workloads.scenarios import build_scenario


def run(
    scenario: str = "mobile_ar",
    num_tasks: int = 6,
    seed: int = 0,
) -> ExperimentResult:
    """Analytic per-request device energy for every strategy's plan."""
    cluster, tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    cands = [build_candidates(t) for t in tasks]
    plans = run_strategies(tasks, cluster, default_strategies(), candidates=cands, seed=seed)

    em = EnergyModel()
    lm = LatencyModel()
    rows = []
    extras: Dict[str, Dict[str, float]] = {}
    for name, plan in sorted(plans.items()):
        dev_j, tx_j, idle_j, lat_sum = 0.0, 0.0, 0.0, 0.0
        for i, t in enumerate(tasks):
            f = plan.features[t.name]
            device = cluster.by_name(t.device_name)
            compute_s = f.dev_flops / lm.throughput(device)
            s = plan.assignment[t.name]
            if s is None:
                tx_s, wait_s = 0.0, 0.0
            else:
                server = cluster.servers[s]
                link = cluster.link(t.device_name, server.name)
                y = plan.bandwidth_shares[t.name]
                x = plan.compute_shares[t.name]
                tx_s = f.wire_bytes / (link.bandwidth_bps * y)
                wait_s = f.srv_flops / (lm.throughput(server) * x) + f.p_offload * link.rtt_s
            e = em.device_energy(device, compute_s, tx_s, wait_s)
            dev_j += e.compute_j
            tx_j += e.tx_j
            idle_j += e.idle_wait_j
            lat_sum += compute_s + tx_s + wait_s
        n = len(tasks)
        total_mj = (dev_j + tx_j + idle_j) / n * 1e3
        extras[name] = {
            "compute_mj": dev_j / n * 1e3,
            "tx_mj": tx_j / n * 1e3,
            "idle_mj": idle_j / n * 1e3,
            "latency": lat_sum / n,
        }
        rows.append(
            (
                name,
                lat_sum / n * 1e3,
                dev_j / n * 1e3,
                tx_j / n * 1e3,
                idle_j / n * 1e3,
                total_mj,
            )
        )
    return ExperimentResult(
        exp_id="E13",
        title=f"device energy per inference vs per-request latency ({scenario})",
        headers=["strategy", "latency_ms", "compute_mJ", "radio_mJ", "idle_mJ", "total_mJ"],
        rows=rows,
        notes=[
            "joint plans cut both axes vs device-only (less local compute) and "
            "vs full offload (less airtime + waiting)"
        ],
        extras={"energy": extras},
    )
