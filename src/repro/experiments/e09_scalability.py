"""E9 (figure): joint-solver scalability in tasks and servers.

Measures solver wall-clock and resulting objective as the instance grows.
Expected shape: near-linear growth in tasks for fixed servers (candidate
evaluation is vectorized per task; the Hungarian step is polynomial but small
in practice), and wall-clock well under a second for hundreds of tasks —
i.e. fast enough to re-run at runtime on every environment change.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.experiments.common import ExperimentResult
from repro.workloads.scenarios import build_scenario

DEFAULT_SIZES = ((8, 2), (16, 4), (32, 4), (64, 8))


def run(
    sizes: Sequence[tuple] = DEFAULT_SIZES,
    scenario: str = "smart_city",
    seed: int = 0,
) -> ExperimentResult:
    """Sweep (tasks, servers); time candidate build and solve separately."""
    rows = []
    extras = {"solve_s": {}, "build_s": {}, "perf": {}}
    for n_tasks, n_servers in sizes:
        cluster, tasks = build_scenario(
            scenario, num_tasks=n_tasks, num_servers=n_servers, server_spread=4.0, seed=seed
        )
        t0 = time.perf_counter()
        cands = [build_candidates(t) for t in tasks]
        t_build = time.perf_counter() - t0
        # disable the O(n*m) local search at scale to measure the core BCD
        cfg = JointSolverConfig(local_search=(n_tasks <= 32))
        t0 = time.perf_counter()
        res = JointOptimizer(cluster, config=cfg).solve(tasks, candidates=cands, seed=seed)
        t_solve = time.perf_counter() - t0
        extras["solve_s"][(n_tasks, n_servers)] = t_solve
        extras["build_s"][(n_tasks, n_servers)] = t_build
        # JSON-safe key: perf counters feed the benchmark extra_info and the
        # perf-gate baseline, both of which round-trip through JSON
        extras["perf"][f"{n_tasks}x{n_servers}"] = res.perf.as_dict()
        rows.append(
            (
                n_tasks,
                n_servers,
                t_build,
                t_solve,
                res.iterations,
                res.plan.objective_value * 1e3,
            )
        )
    return ExperimentResult(
        exp_id="E9",
        title="joint-solver scalability",
        headers=["tasks", "servers", "candgen_s", "solve_s", "iters", "objective_ms"],
        rows=rows,
        notes=[
            "candidate generation is per-task and cacheable across re-solves; "
            "the solve itself stays sub-second at the largest size"
        ],
        extras=extras,
    )
