"""E14 (table): analytic queueing model vs discrete-event simulation.

The optimizer charges congestion via per-stage M/G/1 waiting terms over the
device -> uplink -> server tandem, with service moments taken from each
plan's realized-demand distribution
(:func:`repro.core.allocation.solution_latencies`).  This experiment sweeps
the offered load of a single offloading task and compares predicted expected
latency against simulated means.  Expected shape: agreement within a few
percent at low and moderate load; divergence only near saturation, where the
steady-state formula exceeds what any finite measurement horizon can
accumulate.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.allocation import Allocation, solution_latencies
from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.core.plan import TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.presets import SERVER_PRESETS, device_preset
from repro.experiments.common import ExperimentResult, simulate_measured
from repro.network.link import Link
from repro.sim import SimulationConfig
from repro.units import mbps
from repro.workloads.scenarios import multiexit_model

DEFAULT_RATES = (1.0, 2.0, 4.0, 6.0, 8.0)


def run(
    model_name: str = "resnet18",
    rates: Sequence[float] = DEFAULT_RATES,
    horizon_s: float = 60.0,
    seed: int = 0,
    replications: int = 1,
    sim_workers: int = 1,
) -> ExperimentResult:
    """Sweep arrival rate; report predicted vs simulated mean latency."""
    model = multiexit_model(model_name, 4, "mixed")
    device = dataclasses.replace(device_preset("raspberry_pi4"), name="dev0")
    server = dataclasses.replace(SERVER_PRESETS["edge_gpu"], name="srv0")
    cluster = EdgeCluster.star([device], [server], Link(mbps(40), rtt_s=10e-3))

    rows = []
    errors = []
    for rate in rates:
        task = TaskSpec(
            "t0", model, "dev0", deadline_s=1.0, accuracy_floor=0.6, arrival_rate=rate
        )
        cands = [build_candidates(task)]
        res = JointOptimizer(cluster).solve([task], candidates=cands, seed=seed)
        predicted = res.plan.latencies["t0"]
        rep = simulate_measured(
            [task],
            res.plan,
            cluster,
            SimulationConfig(
                horizon_s=horizon_s, warmup_s=horizon_s / 6, seed=seed,
                replications=replications, sim_workers=sim_workers,
            ),
        )
        measured = rep.mean_latency_s
        err = (predicted - measured) / measured
        errors.append(err)
        rows.append(
            (
                rate,
                predicted * 1e3,
                measured * 1e3,
                rep.percentile_latency_s(99) * 1e3,
                err * 100,
            )
        )
    return ExperimentResult(
        exp_id="E14",
        title=f"analytic queueing vs simulation ({model_name}, single stream)",
        headers=["rate_rps", "predicted_ms", "simulated_ms", "sim_p99_ms", "error_%"],
        rows=rows,
        notes=[
            f"mean |error| {np.mean(np.abs(errors)) * 100:.1f}%; the per-stage "
            "M/G/1 tandem model tracks simulation within a few percent at "
            "moderate load and diverges only near saturation, where the "
            "steady-state formula exceeds what a finite horizon can build up"
        ],
        extras={"errors": errors},
    )
