"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    AllocationOnly,
    BranchyLocal,
    CloudOnly,
    DeviceOnly,
    EdgeOnly,
    Edgent,
    GreedyJoint,
    Neurosurgeon,
    RandomStrategy,
    RoundRobinStrategy,
    Strategy,
)
from repro.core.candidates import CandidateSet, build_candidates
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.objectives import Objective
from repro.core.plan import JointPlan, TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError, InfeasibleError
from repro.analysis.tables import format_table
from repro.rng import SeedLike
from repro.sim.metrics import SimulationReport, merge_reports
from repro.sim.runner import (
    SimulationConfig,
    run_cells,
    run_replications,
    simulate_plan,
)


@dataclass
class ExperimentResult:
    """Output of one experiment run: a printable table plus raw extras."""

    exp_id: str
    title: str
    headers: List[str]
    rows: List[Tuple]
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        out = format_table(self.headers, self.rows, title=f"[{self.exp_id}] {self.title}")
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out


def default_strategies(
    objective: Objective = Objective.AVG_LATENCY,
    latency_model: Optional[LatencyModel] = None,
) -> List[Strategy]:
    """The standard baseline lineup used across experiments."""
    kw = dict(objective=objective, latency_model=latency_model)
    return [
        DeviceOnly(**kw),
        BranchyLocal(**kw),
        EdgeOnly(**kw),
        CloudOnly(**kw),
        Neurosurgeon(**kw),
        Edgent(**kw),
        AllocationOnly(**kw),
        GreedyJoint(**kw),
        RoundRobinStrategy(**kw),
        RandomStrategy(**kw),
    ]


def run_strategies(
    tasks: Sequence[TaskSpec],
    cluster: EdgeCluster,
    strategies: Sequence[Strategy],
    candidates: Optional[Sequence[CandidateSet]] = None,
    joint_objective: Objective = Objective.AVG_LATENCY,
    joint_config: Optional[JointSolverConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    seed: SeedLike = 0,
) -> Dict[str, JointPlan]:
    """Solve one instance with the joint optimizer and every strategy.

    Candidate sets are built once and shared.  Strategies whose restrictions
    are infeasible on this instance (e.g. no local-only plan meets the
    accuracy floor on a weak device) are skipped rather than failing the
    whole sweep.
    """
    if candidates is None:
        candidates = [build_candidates(t) for t in tasks]
    out: Dict[str, JointPlan] = {}
    joint = JointOptimizer(
        cluster,
        latency_model=latency_model,
        objective=joint_objective,
        config=joint_config or JointSolverConfig(),
    )
    out["joint"] = joint.solve(tasks, candidates=candidates, seed=seed).plan
    for s in strategies:
        try:
            out[s.name] = s.solve(tasks, cluster, candidates=candidates, seed=seed)
        except InfeasibleError:
            continue
    return out


def simulate_measured(
    tasks: Sequence[TaskSpec],
    plan: JointPlan,
    cluster: EdgeCluster,
    config: SimulationConfig,
    latency_model: Optional[LatencyModel] = None,
    plan_updates: Sequence = (),
    cells: int = 1,
) -> SimulationReport:
    """Simulate ``plan``, honouring ``config.replications``/``sim_workers``.

    With one replication (the default everywhere) this is exactly
    :func:`repro.sim.runner.simulate_plan`, so experiment outputs are
    unchanged; with more, replications fan out deterministically and the
    pooled report (records concatenated in replication order, utilizations
    averaged, counters merged) is returned.  ``plan_updates`` (fault runs
    only) forward controller-issued mid-run plan repairs.

    ``cells > 1`` instead shards the workload across independent traffic
    cells (:func:`repro.sim.runner.run_cells`) — the high-volume streaming
    fan-out, which forces ``streaming=True`` and merges cell accumulators
    exactly.  Cells and replications/fault runs are mutually exclusive.
    """
    if cells > 1:
        if plan_updates:
            raise ConfigError("cells cannot be combined with plan_updates")
        if config.replications != 1:
            raise ConfigError("cells cannot be combined with replications")
        return run_cells(tasks, plan, cluster, config, cells, latency_model)
    if config.replications == 1:
        return simulate_plan(
            tasks, plan, cluster, config, latency_model, plan_updates=plan_updates
        )
    return merge_reports(
        run_replications(
            tasks, plan, cluster, config, latency_model, plan_updates=plan_updates
        )
    )


def finite(x: float, cap: float = float("inf")) -> float:
    """Clamp inf to ``cap`` for display-friendly aggregation."""
    return min(float(x), cap)
