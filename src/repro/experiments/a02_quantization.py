"""A2 (ablation): what the precision knob buys, by bandwidth regime.

Quantization shrinks both compute and (crucially) the boundary activation on
the wire.  Expected shape: on starved links the int8-enabled search wins big
(it ships 4× fewer bytes); on fat links the gain shrinks toward the pure
compute speedup — and the optimizer only pays the accuracy cost where it buys
latency (it keeps fp32 when the link is not the bottleneck and accuracy
floors are tight).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.experiments.common import ExperimentResult
from repro.models.quantization import ALL_LEVELS
from repro.workloads.scenarios import build_scenario

DEFAULT_BANDWIDTHS = (3.0, 10.0, 40.0, 150.0)


def run(
    scenario: str = "smart_city",
    num_tasks: int = 4,
    bandwidths_mbps: Sequence[float] = DEFAULT_BANDWIDTHS,
    seed: int = 0,
) -> ExperimentResult:
    """Joint objective with and without the quantization knob, per bandwidth."""
    rows = []
    extras = {"fp32": {}, "quant": {}}
    for bw in bandwidths_mbps:
        cluster, tasks = build_scenario(
            scenario, num_tasks=num_tasks, access_mbps=bw, seed=seed
        )
        c32 = [build_candidates(t) for t in tasks]
        cq = [build_candidates(t, quantization_levels=ALL_LEVELS) for t in tasks]
        r32 = JointOptimizer(cluster).solve(tasks, candidates=c32, seed=seed)
        rq = JointOptimizer(cluster).solve(tasks, candidates=cq, seed=seed)
        levels = [f.plan.quantization for f in rq.plan.features.values()]
        acc_min = min(f.accuracy for f in rq.plan.features.values())
        o32, oq = r32.plan.objective_value, rq.plan.objective_value
        gain = o32 / oq if np.isfinite(o32) and np.isfinite(oq) and oq > 0 else float("inf")
        extras["fp32"][bw] = o32
        extras["quant"][bw] = oq
        rows.append(
            (
                bw,
                o32 * 1e3,
                oq * 1e3,
                gain,
                "/".join(sorted(set(levels))),
                acc_min,
            )
        )
    return ExperimentResult(
        exp_id="A2",
        title="ablation: quantization knob vs access bandwidth",
        headers=["mbps", "fp32_only_ms", "with_quant_ms", "gain", "levels_chosen", "min_acc"],
        rows=rows,
        notes=[
            "gains concentrate on thin links where the 4x smaller int8 "
            "boundary dominates; accuracy floors remain satisfied throughout"
        ],
        extras=extras,
    )
