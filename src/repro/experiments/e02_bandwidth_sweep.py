"""E2 (figure): single-task latency vs uplink bandwidth, per strategy.

Expected shape: device-only is flat; edge-only decays as 1/bandwidth and
overtakes device-only past a crossover; partition-only tracks the better of
the two and wins in between; the joint plan (partition + exits) lower-bounds
everything.  Crossover bandwidths are reported explicitly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.compare import crossover_point
from repro.baselines import DeviceOnly, EdgeOnly, Neurosurgeon
from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.core.plan import TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.presets import SERVER_PRESETS, device_preset
from repro.experiments.common import ExperimentResult
from repro.network.link import Link
from repro.units import mbps
from repro.workloads.scenarios import multiexit_model

DEFAULT_BANDWIDTHS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0)


def run(
    model_name: str = "vgg16",
    device_name: str = "raspberry_pi4",
    server_name: str = "edge_gpu",
    bandwidths_mbps: Sequence[float] = DEFAULT_BANDWIDTHS,
    accuracy_floor: float = 0.62,
) -> ExperimentResult:
    """Sweep access bandwidth for one task; report per-strategy latency."""
    model = multiexit_model(model_name, 4, "mixed")
    device = dataclasses.replace(device_preset(device_name), name="dev0")
    server = dataclasses.replace(SERVER_PRESETS[server_name], name="srv0")

    series: Dict[str, List[float]] = {
        "device_only": [],
        "edge_only": [],
        "neurosurgeon": [],
        "joint": [],
    }
    rows = []
    for bw in bandwidths_mbps:
        cluster = EdgeCluster.star([device], [server], Link(mbps(bw), rtt_s=10e-3))
        task = TaskSpec(
            "t0",
            model,
            "dev0",
            deadline_s=10.0,
            accuracy_floor=accuracy_floor,
            arrival_rate=0.01,  # open-loop single requests: this figure
            # isolates the compute/communication tradeoff from queueing
        )
        cands = [build_candidates(task)]
        from repro.core.joint import JointSolverConfig

        plans = {
            "device_only": DeviceOnly(include_queueing=False).solve(
                [task], cluster, candidates=cands
            ),
            "edge_only": EdgeOnly(include_queueing=False).solve(
                [task], cluster, candidates=cands
            ),
            "neurosurgeon": Neurosurgeon(include_queueing=False).solve(
                [task], cluster, candidates=cands
            ),
            "joint": JointOptimizer(
                cluster, config=JointSolverConfig(include_queueing=False)
            )
            .solve([task], candidates=cands)
            .plan,
        }
        for k in series:
            series[k].append(plans[k].latencies["t0"])
        rows.append(
            (
                bw,
                series["device_only"][-1] * 1e3,
                series["edge_only"][-1] * 1e3,
                series["neurosurgeon"][-1] * 1e3,
                series["joint"][-1] * 1e3,
            )
        )
    x = list(bandwidths_mbps)
    cross_edge_device = crossover_point(x, series["edge_only"], series["device_only"])
    notes = [
        f"edge-only overtakes device-only at ~{cross_edge_device:.1f} Mbps"
        if cross_edge_device is not None
        else "no edge/device crossover inside the swept range",
        "joint <= min(all baselines) at every bandwidth (exits + partition dominate)",
    ]
    return ExperimentResult(
        exp_id="E2",
        title=f"latency vs bandwidth ({model_name} on {device_name} vs {server_name})",
        headers=["mbps", "device_ms", "edge_ms", "neurosurgeon_ms", "joint_ms"],
        rows=rows,
        notes=notes,
        extras={"series": series, "bandwidths": x, "crossover_mbps": cross_edge_device},
    )
