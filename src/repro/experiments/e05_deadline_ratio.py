"""E5 (figure): deadline-satisfaction ratio vs deadline tightness.

The scenario's base deadlines are scaled by a factor sweep; each strategy
re-plans (the optimizer sees the deadlines through its objective) and the
simulator measures the fraction of requests finishing in time.  Expected
shape: all curves are monotone non-decreasing in the scale; joint reaches
high satisfaction at tighter deadlines than any baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.baselines import AllocationOnly, EdgeOnly, Edgent, Neurosurgeon
from repro.core.candidates import build_candidates
from repro.core.objectives import Objective
from repro.experiments.common import ExperimentResult, run_strategies, simulate_measured
from repro.sim import SimulationConfig
from repro.workloads.scenarios import build_scenario

DEFAULT_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


def run(
    scenario: str = "smart_city",
    num_tasks: int = 8,
    scales: Sequence[float] = DEFAULT_SCALES,
    horizon_s: float = 20.0,
    seed: int = 0,
    replications: int = 1,
    sim_workers: int = 1,
    streaming: bool = False,
    cells: int = 1,
) -> ExperimentResult:
    """Sweep deadline scale; report measured satisfaction ratio per strategy.

    ``streaming``/``cells`` select the bounded-memory chunked sweep and the
    sharded traffic-cell fan-out for long-horizon runs.
    """
    cluster, base_tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    cands = [build_candidates(t) for t in base_tasks]
    strategies = [EdgeOnly(), Neurosurgeon(), Edgent(), AllocationOnly()]
    rows = []
    extras: Dict[str, Dict[float, float]] = {}
    for scale in scales:
        tasks = [
            dataclasses.replace(t, deadline_s=t.deadline_s * scale) for t in base_tasks
        ]
        plans = run_strategies(
            tasks,
            cluster,
            strategies,
            candidates=cands,
            joint_objective=Objective.DEADLINE_MISS,
            seed=seed,
        )
        for name, plan in plans.items():
            rep = simulate_measured(
                tasks,
                plan,
                cluster,
                SimulationConfig(
                    horizon_s=horizon_s, warmup_s=min(2.0, horizon_s / 5), seed=seed,
                    replications=replications, sim_workers=sim_workers,
                    streaming=streaming,
                ),
                cells=cells,
            )
            ratio = 1.0 - rep.miss_rate
            extras.setdefault(name, {})[scale] = ratio
            rows.append((scale, name, ratio * 100, rep.mean_latency_s * 1e3))
    return ExperimentResult(
        exp_id="E5",
        title=f"deadline satisfaction vs tightness ({scenario}, simulated)",
        headers=["deadline_scale", "strategy", "satisfied_%", "mean_ms"],
        rows=rows,
        notes=["joint sustains high satisfaction at tighter deadlines than baselines"],
        extras={"satisfaction": extras},
    )
