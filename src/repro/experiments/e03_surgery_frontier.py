"""E3 (table): the accuracy–latency frontier of model surgery.

For each zoo model, sweep the accuracy floor and report the fastest surgery
plan meeting it (single task, fixed device/server/bandwidth).  Shape: latency
rises monotonically with the floor; the gap between the loosest and tightest
floor quantifies how much latency early exits buy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

import numpy as np

from repro.core.candidates import build_candidates
from repro.core.plan import TaskSpec
from repro.core.joint import JointOptimizer
from repro.devices.cluster import EdgeCluster
from repro.devices.presets import SERVER_PRESETS, device_preset
from repro.errors import InfeasibleError
from repro.experiments.common import ExperimentResult
from repro.network.link import Link
from repro.units import mbps
from repro.workloads.scenarios import multiexit_model

DEFAULT_MODELS = ("alexnet", "vgg16", "resnet18", "resnet50", "mobilenet_v2")
DEFAULT_FLOORS = (0.50, 0.55, 0.60, 0.65, 0.70)


def run(
    models: Sequence[str] = DEFAULT_MODELS,
    floors: Sequence[float] = DEFAULT_FLOORS,
    device_name: str = "raspberry_pi4",
    server_name: str = "edge_gpu",
    bandwidth_mbps: float = 40.0,
) -> ExperimentResult:
    """Report best (latency, plan shape) per (model, accuracy floor)."""
    device = dataclasses.replace(device_preset(device_name), name="dev0")
    server = dataclasses.replace(SERVER_PRESETS[server_name], name="srv0")
    cluster = EdgeCluster.star([device], [server], Link(mbps(bandwidth_mbps), rtt_s=10e-3))

    rows = []
    extras: Dict[str, Dict[float, float]] = {}
    for mname in models:
        model = multiexit_model(mname, 4, "mixed")
        extras[mname] = {}
        for floor in floors:
            task = TaskSpec(
                "t0", model, "dev0", deadline_s=1.0, accuracy_floor=floor, arrival_rate=0.5
            )
            try:
                cands = [build_candidates(task)]
            except InfeasibleError:
                rows.append((mname, floor, float("nan"), float("nan"), "-", "-"))
                extras[mname][floor] = float("inf")
                continue
            plan = JointOptimizer(cluster).solve([task], candidates=cands).plan
            f = plan.features["t0"]
            rows.append(
                (
                    mname,
                    floor,
                    plan.latencies["t0"] * 1e3,
                    f.accuracy,
                    f"{len(f.plan.kept_exits) - 1} exits@{f.plan.thresholds[0] if len(f.plan.thresholds) > 1 else 0:.2f}",
                    f"cut@{f.plan.partition_cut}",
                )
            )
            extras[mname][floor] = plan.latencies["t0"]
    return ExperimentResult(
        exp_id="E3",
        title="accuracy–latency frontier of surgery plans",
        headers=["model", "floor", "latency_ms", "achieved_acc", "exit_config", "partition"],
        rows=rows,
        notes=[
            "latency is non-decreasing in the accuracy floor; loose floors let "
            "aggressive exits cut latency, tight floors force deep execution"
        ],
        extras={"frontier": extras},
    )
