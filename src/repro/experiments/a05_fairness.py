"""A5 (ablation): the fairness/efficiency knob of the share allocation.

The sqrt rule (share exponent 0.5) is *provably* the minimum of total
weighted latency, but a platform may prefer equal shares (exponent 0) or
latency-equalizing shares (exponent 1).  This ablation sweeps the exponent on
a fixed instance and reports both the efficiency axis (mean latency) and the
fairness axis (Jain's index over deadline-normalized latencies).

Expected shape: the rate-weighted per-request mean (no queueing) is
minimized *exactly* at 0.5 — that is the KKT statement, and the sweep shows
the symmetric bowl around it.  With queueing included the optimum drifts
slightly upward (waiting times are more convex in 1/x than service times),
while fairness peaks at exponent 0 (equal shares).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.stats import jain_index
from repro.core.allocation import allocate_shares, solution_latencies
from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.devices.latency import LatencyModel
from repro.experiments.common import ExperimentResult
from repro.workloads.scenarios import build_scenario

DEFAULT_EXPONENTS = (0.0, 0.25, 0.5, 0.75, 1.0)


def run(
    scenario: str = "smart_city",
    num_tasks: int = 8,
    exponents: Sequence[float] = DEFAULT_EXPONENTS,
    seed: int = 0,
) -> ExperimentResult:
    """Re-allocate a fixed joint solution under different share exponents."""
    cluster, tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    cands = [build_candidates(t) for t in tasks]
    lm = LatencyModel()
    # fix plans + assignment with the standard solver, vary only the shares:
    # this isolates the allocation rule from the surgery search
    base = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=seed).plan
    plan_idx = [
        next(
            j
            for j, f in enumerate(cands[i].features)
            if f.plan == base.features[t.name].plan
        )
        for i, t in enumerate(tasks)
    ]
    assignment = [base.assignment[t.name] for t in tasks]

    rows = []
    extras = {"mean_request": {}, "mean_queued": {}, "jain": {}}
    deadlines = np.array([t.deadline_s for t in tasks])
    rates = np.array([t.arrival_rate for t in tasks])
    for beta in exponents:
        alloc = allocate_shares(
            tasks, cands, plan_idx, assignment, cluster, lm, share_exponent=beta
        )
        lat_req = solution_latencies(
            tasks, cands, plan_idx, alloc, cluster, lm,
            include_queueing=False, overload="penalty",
        )
        lat_q = solution_latencies(
            tasks, cands, plan_idx, alloc, cluster, lm, overload="penalty"
        )
        # rate-weighted means: the quantity the allocation rule optimizes
        # (every *request* counts equally, so busier tasks weigh more)
        extras["mean_request"][beta] = float(rates @ lat_req / rates.sum())
        extras["mean_queued"][beta] = float(rates @ lat_q / rates.sum())
        extras["jain"][beta] = jain_index(lat_q / deadlines)
        rows.append(
            (
                beta,
                extras["mean_request"][beta] * 1e3,
                extras["mean_queued"][beta] * 1e3,
                float(np.max(lat_q)) * 1e3,
                extras["jain"][beta],
            )
        )
    best_req = min(extras["mean_request"], key=extras["mean_request"].get)
    return ExperimentResult(
        exp_id="A5",
        title="ablation: share-allocation fairness/efficiency exponent",
        headers=["exponent", "request_mean_ms", "queued_mean_ms", "queued_max_ms", "jain_fairness"],
        rows=rows,
        notes=[
            f"per-request mean is minimized at exponent {best_req} "
            "(KKT predicts 0.5); queueing shifts the queued-mean optimum "
            "slightly higher, while equal shares (0.0) maximize fairness"
        ],
        extras=extras,
    )
