"""E8 (table): optimality gap of BCD and best-response vs exhaustive search.

Small instances (few tasks, 2 servers, coarsened candidate sets) are solved
exactly by enumeration; both practical solvers are scored by their relative
objective gap.  Expected shape: gaps within a few percent; the centralized
solver at or near 0%.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.candidates import build_candidates
from repro.core.distributed import best_response_offloading
from repro.core.exhaustive import exhaustive_optimum
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.experiments.common import ExperimentResult
from repro.rng import derive
from repro.workloads.generator import RandomScenarioConfig, random_scenario

#: Coarse enumeration knobs that keep exhaustive search tractable.
SMALL = RandomScenarioConfig(
    num_tasks=(2, 3),
    num_servers=(2, 2),
    models=("alexnet", "resnet18", "mobilenet_v2"),
)


def run(num_instances: int = 6, seed: int = 11) -> ExperimentResult:
    """Measure gap-to-optimal over ``num_instances`` small random instances."""
    rows: List[tuple] = []
    gaps_bcd, gaps_br = [], []
    for k in range(num_instances):
        cluster, tasks = random_scenario(derive(seed, "inst", k), SMALL)
        cands = [
            build_candidates(t, threshold_grid=(0.6, 0.9), max_cuts=5).subsample(10)
            for t in tasks
        ]
        opt = exhaustive_optimum(tasks, cluster, candidates=cands)
        # refinement is disabled so all three solvers search the identical
        # candidate space (it would otherwise beat the "optimum")
        bcd = JointOptimizer(
            cluster, config=JointSolverConfig(refine_thresholds=False)
        ).solve(tasks, candidates=cands, seed=k).plan
        br = best_response_offloading(tasks, cluster, candidates=cands, seed=k).plan
        g_bcd = bcd.objective_value / opt.objective_value - 1.0
        g_br = br.objective_value / opt.objective_value - 1.0
        gaps_bcd.append(g_bcd)
        gaps_br.append(g_br)
        rows.append(
            (
                k,
                len(tasks),
                opt.objective_value * 1e3,
                bcd.objective_value * 1e3,
                g_bcd * 100,
                br.objective_value * 1e3,
                g_br * 100,
            )
        )
    rows.append(
        (
            "mean",
            "-",
            float("nan"),
            float("nan"),
            float(np.mean(gaps_bcd)) * 100,
            float("nan"),
            float(np.mean(gaps_br)) * 100,
        )
    )
    return ExperimentResult(
        exp_id="E8",
        title="optimality gap vs exhaustive optimum (small instances)",
        headers=["inst", "tasks", "opt_ms", "bcd_ms", "bcd_gap_%", "br_ms", "br_gap_%"],
        rows=rows,
        notes=[
            f"max bcd gap {max(gaps_bcd) * 100:.2f}%, max br gap {max(gaps_br) * 100:.2f}%"
        ],
        extras={"gaps_bcd": gaps_bcd, "gaps_br": gaps_br},
    )
