"""Experiment registry: id -> runner."""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigError
from repro.experiments import (
    a01_candidate_budget,
    a02_quantization,
    a03_pruning,
    a04_queue_model,
    a05_fairness,
    a06_refinement,
    e01_layer_profiles,
    e02_bandwidth_sweep,
    e03_surgery_frontier,
    e04_latency_vs_load,
    e05_deadline_ratio,
    e06_speedup_dist,
    e07_convergence,
    e08_optimality_gap,
    e09_scalability,
    e10_heterogeneity,
    e11_dynamic,
    e12_ablation,
    e13_energy,
    e14_queueing_validation,
    e15_admission,
    e16_resilience,
    e17_control_plane,
    e18_risk,
)
from repro.experiments.common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": e01_layer_profiles.run,
    "E2": e02_bandwidth_sweep.run,
    "E3": e03_surgery_frontier.run,
    "E4": e04_latency_vs_load.run,
    "E5": e05_deadline_ratio.run,
    "E6": e06_speedup_dist.run,
    "E7": e07_convergence.run,
    "E8": e08_optimality_gap.run,
    "E9": e09_scalability.run,
    "E10": e10_heterogeneity.run,
    "E11": e11_dynamic.run,
    "E12": e12_ablation.run,
    "E13": e13_energy.run,
    "E14": e14_queueing_validation.run,
    "E15": e15_admission.run,
    "E16": e16_resilience.run,
    "E17": e17_control_plane.run,
    "E18": e18_risk.run,
    # ablations of design choices (DESIGN.md §6-§7)
    "A1": a01_candidate_budget.run,
    "A2": a02_quantization.run,
    "A3": a03_pruning.run,
    "A4": a04_queue_model.run,
    "A5": a05_fairness.run,
    "A6": a06_refinement.run,
}


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run an experiment by id (e.g. ``run_experiment("E2")``)."""
    try:
        fn = EXPERIMENTS[exp_id.upper()]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)
