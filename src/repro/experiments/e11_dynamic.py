"""E11 (figure): behaviour under time-varying bandwidth, with and without
re-optimization.

The access bandwidth follows a fade profile — nominal, degraded, deep-fade,
recovering — scaled from the scenario's nominal rate (the deterministic
profile makes the figure reproducible; stochastic Gauss–Markov traces are
available in :mod:`repro.network.wireless` and exercised by E14-adjacent
tests).  Two policies are compared window by window:

- **static** — the plan solved once for the nominal bandwidth;
- **adaptive** — re-solved at the start of every window for that window's
  bandwidth (candidate sets are reused; only the solve repeats, which E9
  shows is sub-second).

Expected shape: indistinguishable in good windows; in the deep fade the
static plan's offloading stalls on the thin uplink while the adaptive plan
retreats to earlier exits / local execution, cutting both the latency spike
and the miss rate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.devices.cluster import EdgeCluster
from repro.experiments.common import ExperimentResult, simulate_measured
from repro.network.link import Link
from repro.network.topology import StarTopology
from repro.sim import SimulationConfig
from repro.units import mbps, to_mbps
from repro.workloads.scenarios import build_scenario

#: Fade profile: per-window multiplier on the nominal bandwidth.
DEFAULT_PROFILE = (1.0, 0.5, 0.08, 0.04, 0.5, 1.0)


def _with_bandwidth(cluster: EdgeCluster, bw_bps: float) -> EdgeCluster:
    topo = cluster.topology
    links = {
        k: Link(bw_bps, rtt_s=l.rtt_s, name=l.name) for k, l in topo.links.items()
    }
    return cluster.with_topology(
        StarTopology(list(topo.device_names), list(topo.server_names), links)
    )


def run(
    scenario: str = "smart_city",
    num_tasks: int = 6,
    profile: Sequence[float] = DEFAULT_PROFILE,
    window_s: float = 10.0,
    nominal_mbps: float = 40.0,
    seed: int = 0,
    replications: int = 1,
    sim_workers: int = 1,
) -> ExperimentResult:
    """Window-by-window static vs adaptive comparison under a fade profile."""
    cluster, tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    cands = [build_candidates(t) for t in tasks]

    static_cluster = _with_bandwidth(cluster, mbps(nominal_mbps))
    static_plan = (
        JointOptimizer(static_cluster).solve(tasks, candidates=cands, seed=seed).plan
    )

    rows: List[tuple] = []
    series: Dict[str, List[float]] = {"static": [], "adaptive": [], "bw": []}
    for w, factor in enumerate(profile):
        bw = mbps(nominal_mbps * factor)
        series["bw"].append(to_mbps(bw))
        win_cluster = _with_bandwidth(cluster, bw)
        adaptive_plan = (
            JointOptimizer(win_cluster).solve(tasks, candidates=cands, seed=seed).plan
        )
        cfg = SimulationConfig(
            horizon_s=window_s, warmup_s=0.0, seed=seed + w,
            replications=replications, sim_workers=sim_workers,
        )
        rep_static = simulate_measured(tasks, static_plan, win_cluster, cfg)
        rep_adapt = simulate_measured(tasks, adaptive_plan, win_cluster, cfg)
        series["static"].append(rep_static.mean_latency_s)
        series["adaptive"].append(rep_adapt.mean_latency_s)
        rows.append(
            (
                w,
                to_mbps(bw),
                rep_static.mean_latency_s * 1e3,
                rep_static.miss_rate * 100,
                rep_adapt.mean_latency_s * 1e3,
                rep_adapt.miss_rate * 100,
            )
        )
    imp = np.array(series["static"]) / np.array(series["adaptive"])
    return ExperimentResult(
        exp_id="E11",
        title="dynamic bandwidth: static plan vs per-window re-optimization",
        headers=[
            "window",
            "bw_mbps",
            "static_ms",
            "static_miss_%",
            "adaptive_ms",
            "adaptive_miss_%",
        ],
        rows=rows,
        notes=[
            f"re-optimization improves mean latency by up to {imp.max():.2f}x in "
            f"the deep-fade window (median window: {np.median(imp):.2f}x)"
        ],
        extras={"series": series},
    )
