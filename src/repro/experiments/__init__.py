"""Experiment harness: one module per reconstructed table/figure (E1–E14).

Each ``eXX_*`` module exposes ``run(**knobs) -> ExperimentResult`` producing
the same rows/series the corresponding paper artifact would carry, plus
machine-readable extras for tests.  ``registry.run_experiment`` dispatches by
id; the ``benchmarks/`` tree wraps each in a pytest-benchmark target.

Default knob values are sized to finish in seconds; pass larger values (more
scenarios, longer horizons) to tighten confidence intervals.
"""

from repro.experiments.common import ExperimentResult, default_strategies, run_strategies
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "default_strategies",
    "run_experiment",
    "run_strategies",
]
