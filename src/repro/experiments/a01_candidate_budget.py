"""A1 (ablation): candidate-budget vs solution quality.

The enumeration granularity — threshold-grid resolution and the partition-cut
budget — is a designed tradeoff: more candidates cost enumeration time and
solver work, fewer risk missing the best plan.  This ablation sweeps the
budget and reports candidate counts, wall-clock, and the joint objective.

Expected shape: the objective improves quickly then saturates — the default
budget (5 thresholds × 16 cuts) sits on the flat part, i.e. it is "enough".
"""

from __future__ import annotations

import time
from typing import Sequence, Tuple

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.experiments.common import ExperimentResult
from repro.workloads.scenarios import build_scenario

#: (label, threshold grid, max cuts) budgets from coarse to fine.
DEFAULT_BUDGETS: Tuple[Tuple[str, Tuple[float, ...], int], ...] = (
    ("minimal", (0.8,), 3),
    ("coarse", (0.65, 0.9), 6),
    ("default", (0.5, 0.65, 0.8, 0.9, 0.95), 16),
    ("fine", (0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98), 32),
)


def run(
    scenario: str = "smart_city",
    num_tasks: int = 6,
    budgets: Sequence[Tuple[str, Tuple[float, ...], int]] = DEFAULT_BUDGETS,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep enumeration budgets on one fixed instance."""
    cluster, tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    rows = []
    extras = {"objective": {}, "candidates": {}}
    for label, grid, max_cuts in budgets:
        t0 = time.perf_counter()
        cands = [
            build_candidates(t, threshold_grid=grid, max_cuts=max_cuts) for t in tasks
        ]
        t_enum = time.perf_counter() - t0
        t0 = time.perf_counter()
        res = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=seed)
        t_solve = time.perf_counter() - t0
        n_cands = sum(len(c) for c in cands)
        extras["objective"][label] = res.plan.objective_value
        extras["candidates"][label] = n_cands
        rows.append(
            (
                label,
                len(grid),
                max_cuts,
                n_cands,
                t_enum,
                t_solve,
                res.plan.objective_value * 1e3,
            )
        )
    objs = [r[-1] for r in rows]
    rel = (objs[0] - objs[-2]) / objs[-2] * 100  # minimal vs default
    return ExperimentResult(
        exp_id="A1",
        title="ablation: candidate enumeration budget",
        headers=["budget", "thresholds", "max_cuts", "candidates", "enum_s", "solve_s", "objective_ms"],
        rows=rows,
        notes=[
            f"the minimal budget costs {rel:+.1f}% objective vs the default; "
            "the fine budget buys nothing beyond the default (saturation)"
        ],
        extras=extras,
    )
