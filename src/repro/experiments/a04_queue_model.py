"""A4 (ablation): does modeling congestion inside the optimizer pay?

The joint optimizer charges per-stage M/G/1 terms during plan selection
(``include_queueing``).  The ablation solves the same instances with the
terms disabled — every decision then optimizes single-request latency — and
measures both plans in the simulator under real load.

Expected shape: at light load the two agree (congestion terms ≈ 0).  Because
the blind variant keeps the smart allocator, it stays surprisingly close
until the system approaches saturation, where the aware solver's refusal of
queue-unstable choices keeps its measured mean (weakly) ahead — the dramatic
collapse requires removing allocation too, which is exactly the Edgent
baseline measured in E4/E12.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.experiments.common import ExperimentResult, simulate_measured
from repro.sim import SimulationConfig
from repro.workloads.scenarios import build_scenario

DEFAULT_LOADS = (2, 4, 8)


def run(
    scenario: str = "smart_city",
    loads: Sequence[int] = DEFAULT_LOADS,
    horizon_s: float = 20.0,
    seed: int = 0,
    replications: int = 1,
    sim_workers: int = 1,
) -> ExperimentResult:
    """Congestion-aware vs congestion-blind solving, measured by simulation."""
    rows = []
    extras = {"aware": {}, "blind": {}}
    for n in loads:
        cluster, tasks = build_scenario(scenario, num_tasks=n, seed=seed)
        cands = [build_candidates(t) for t in tasks]
        aware = JointOptimizer(
            cluster, config=JointSolverConfig(include_queueing=True)
        ).solve(tasks, candidates=cands, seed=seed).plan
        blind = JointOptimizer(
            cluster, config=JointSolverConfig(include_queueing=False)
        ).solve(tasks, candidates=cands, seed=seed).plan
        cfg = SimulationConfig(
            horizon_s=horizon_s, warmup_s=min(2.0, horizon_s / 5), seed=seed,
            replications=replications, sim_workers=sim_workers,
        )
        m_aware = simulate_measured(tasks, aware, cluster, cfg)
        m_blind = simulate_measured(tasks, blind, cluster, cfg)
        extras["aware"][n] = m_aware.mean_latency_s
        extras["blind"][n] = m_blind.mean_latency_s
        rows.append(
            (
                n,
                m_aware.mean_latency_s * 1e3,
                m_blind.mean_latency_s * 1e3,
                m_blind.mean_latency_s / m_aware.mean_latency_s,
                m_aware.miss_rate * 100,
                m_blind.miss_rate * 100,
            )
        )
    return ExperimentResult(
        exp_id="A4",
        title="ablation: congestion-aware vs congestion-blind solving (simulated)",
        headers=["tasks", "aware_ms", "blind_ms", "blind/aware", "aware_miss_%", "blind_miss_%"],
        rows=rows,
        notes=[
            "with smart allocation still in place, congestion-blind surgery "
            "stays near par at light load; the aware solver's edge appears "
            "toward saturation, where it avoids queue-unstable plan choices "
            "(the blind variant of BOTH knobs is the Edgent baseline, whose "
            "collapse E4/E12 show)"
        ],
        extras=extras,
    )
