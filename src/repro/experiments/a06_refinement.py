"""A6 (ablation): what per-exit threshold refinement buys.

Enumeration couples all early exits to one shared threshold to keep the
candidate space small; the refinement pass
(:func:`repro.core.surgery.refine_thresholds`) then re-tunes each exit
individually on the winning solution.  This ablation crosses enumeration
grids with refinement on/off.

Expected shape: with the default (fine) grid, refinement adds little — the
grid already brackets the optimum.  With coarse grids, refinement claws the
lost quality back, landing within a fraction of a percent of the fine-grid
solution at a fraction of the enumeration cost.  That combination — coarse
grid + refinement — is the recommended configuration for large fleets.
"""

from __future__ import annotations

import time
from typing import Sequence, Tuple

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.experiments.common import ExperimentResult
from repro.workloads.scenarios import build_scenario

DEFAULT_GRIDS: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("single", (0.8,)),
    ("coarse", (0.65, 0.9)),
    ("default", (0.5, 0.65, 0.8, 0.9, 0.95)),
)


def run(
    scenario: str = "smart_city",
    num_tasks: int = 6,
    grids: Sequence[Tuple[str, Tuple[float, ...]]] = DEFAULT_GRIDS,
    seed: int = 0,
) -> ExperimentResult:
    """Cross enumeration grid × refinement on/off on one instance."""
    cluster, tasks = build_scenario(scenario, num_tasks=num_tasks, seed=seed)
    rows = []
    extras = {"objective": {}}
    for label, grid in grids:
        cands = [build_candidates(t, threshold_grid=grid) for t in tasks]
        n_cands = sum(len(c) for c in cands)
        results = {}
        for refine in (False, True):
            cfg = JointSolverConfig(refine_thresholds=refine)
            t0 = time.perf_counter()
            res = JointOptimizer(cluster, config=cfg).solve(
                tasks, candidates=cands, seed=seed
            )
            took = time.perf_counter() - t0
            results[refine] = (res.plan.objective_value, took)
            extras["objective"][(label, refine)] = res.plan.objective_value
        off, t_off = results[False]
        on, t_on = results[True]
        rows.append(
            (
                label,
                len(grid),
                n_cands,
                off * 1e3,
                on * 1e3,
                (off - on) / off * 100,
                t_on - t_off,
            )
        )
    return ExperimentResult(
        exp_id="A6",
        title="ablation: per-exit threshold refinement vs enumeration grid",
        headers=[
            "grid",
            "thresholds",
            "candidates",
            "no_refine_ms",
            "refined_ms",
            "gain_%",
            "refine_cost_s",
        ],
        rows=rows,
        notes=[
            "refinement recovers what coarse shared-threshold grids lose, at "
            "millisecond solve cost — coarse grid + refinement matches the "
            "fine grid with far fewer candidates"
        ],
        extras=extras,
    )
