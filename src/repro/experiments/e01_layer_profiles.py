"""E1 (motivation figure): per-layer latency and boundary-size profiles.

Reproduces the classic "why partitioning works" figure: per-layer latency
differs by orders of magnitude across devices, while boundary activation
sizes are *non-monotone* in depth — so the best cut is neither at the input
nor the output, and differs per (model, device, bandwidth).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.devices.latency import LatencyModel
from repro.devices.presets import device_preset
from repro.experiments.common import ExperimentResult
from repro.models import zoo
from repro.profiling.profiler import profile_model
from repro.units import to_mib

DEFAULT_MODELS: Tuple[str, ...] = ("alexnet", "vgg16", "resnet18", "mobilenet_v1")
DEFAULT_DEVICES: Tuple[str, ...] = ("raspberry_pi4", "jetson_nano", "edge_gpu")


def run(
    models: Sequence[str] = DEFAULT_MODELS,
    devices: Sequence[str] = DEFAULT_DEVICES,
) -> ExperimentResult:
    """Profile every (model, device) pair; report totals, class split, and
    the boundary-size extremes that motivate mid-network cuts."""
    lm = LatencyModel()
    rows = []
    extras = {"profiles": {}, "boundaries": {}}
    for mname in models:
        graph = zoo.build(mname)
        cuts = graph.cut_points
        sizes = np.array([c.boundary_bytes for c in cuts], dtype=float)
        interior = sizes[1:-1] if sizes.size > 2 else sizes
        min_cut = cuts[1 + int(np.argmin(interior))] if sizes.size > 2 else cuts[0]
        extras["boundaries"][mname] = sizes
        for dname in devices:
            dev = device_preset(dname)
            table = profile_model(graph, dev, lm)
            split = table.by_class()
            extras["profiles"][(mname, dname)] = table
            rows.append(
                (
                    mname,
                    dname,
                    table.total_latency_s * 1e3,
                    split.get("conv", 0.0) * 1e3,
                    split.get("dense", 0.0) * 1e3,
                    (split.get("memory", 0.0) + split.get("depthwise", 0.0)) * 1e3,
                    to_mib(graph.input_bytes),
                    to_mib(min_cut.boundary_bytes),
                    min_cut.name,
                )
            )
    return ExperimentResult(
        exp_id="E1",
        title="per-layer latency & boundary-size profiles (motivation)",
        headers=[
            "model",
            "device",
            "total_ms",
            "conv_ms",
            "dense_ms",
            "mem_ms",
            "input_MiB",
            "min_boundary_MiB",
            "min_boundary_at",
        ],
        rows=rows,
        notes=[
            "boundary activation sizes are non-monotone in depth: the smallest "
            "interior boundary is far below the input size, so a mid-network "
            "cut ships less data than full offload",
        ],
        extras=extras,
    )
