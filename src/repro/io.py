"""JSON serialization for plans and experiment results.

Deployments need to persist the controller's decisions (to apply them, audit
them, or diff them across re-plans), and experiment pipelines need
machine-readable outputs.  Only *decisions and measurements* serialize —
models, clusters, and candidate sets are code-defined and reproducible from
seeds, so they are referenced by name rather than embedded.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.plan import JointPlan, PlanFeatures, SurgeryPlan
from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult


def surgery_plan_to_dict(plan: SurgeryPlan) -> Dict[str, Any]:
    """Plain-dict form of a surgery plan."""
    return {
        "kept_exits": list(plan.kept_exits),
        "thresholds": list(plan.thresholds),
        "partition_cut": plan.partition_cut,
        "quantization": plan.quantization,
    }


def surgery_plan_from_dict(d: Dict[str, Any]) -> SurgeryPlan:
    """Inverse of :func:`surgery_plan_to_dict` (validates on construction)."""
    try:
        return SurgeryPlan(
            kept_exits=tuple(int(k) for k in d["kept_exits"]),
            thresholds=tuple(float(t) for t in d["thresholds"]),
            partition_cut=int(d["partition_cut"]),
            quantization=str(d.get("quantization", "fp32")),
        )
    except KeyError as e:
        raise ConfigError(f"surgery plan dict missing key {e}") from None


def joint_plan_to_dict(plan: JointPlan) -> Dict[str, Any]:
    """Plain-dict form of a complete joint plan."""
    return {
        "objective_value": plan.objective_value,
        "tasks": {
            name: {
                "server": plan.assignment[name],
                "surgery": surgery_plan_to_dict(plan.features[name].plan),
                "compute_share": plan.compute_shares[name],
                "bandwidth_share": plan.bandwidth_shares[name],
                "predicted_latency_s": plan.latencies[name],
                "expected_accuracy": plan.features[name].accuracy,
                "features": {
                    "dev_flops": plan.features[name].dev_flops,
                    "srv_flops": plan.features[name].srv_flops,
                    "wire_bytes": plan.features[name].wire_bytes,
                    "p_offload": plan.features[name].p_offload,
                    "dev_flops_sq": plan.features[name].dev_flops_sq,
                    "srv_flops_sq": plan.features[name].srv_flops_sq,
                    "wire_bytes_sq": plan.features[name].wire_bytes_sq,
                },
            }
            for name in sorted(plan.latencies)
        },
    }


def joint_plan_from_dict(d: Dict[str, Any]) -> JointPlan:
    """Inverse of :func:`joint_plan_to_dict`."""
    try:
        tasks = d["tasks"]
        assignment, features, xs, ys, lats = {}, {}, {}, {}, {}
        for name, entry in tasks.items():
            assignment[name] = entry["server"]
            f = entry["features"]
            features[name] = PlanFeatures(
                plan=surgery_plan_from_dict(entry["surgery"]),
                dev_flops=float(f["dev_flops"]),
                srv_flops=float(f["srv_flops"]),
                wire_bytes=float(f["wire_bytes"]),
                p_offload=float(f["p_offload"]),
                accuracy=float(entry["expected_accuracy"]),
                dev_flops_sq=float(f.get("dev_flops_sq", 0.0)),
                srv_flops_sq=float(f.get("srv_flops_sq", 0.0)),
                wire_bytes_sq=float(f.get("wire_bytes_sq", 0.0)),
            )
            xs[name] = float(entry["compute_share"])
            ys[name] = float(entry["bandwidth_share"])
            lats[name] = float(entry["predicted_latency_s"])
        return JointPlan(
            assignment=assignment,
            features=features,
            compute_shares=xs,
            bandwidth_shares=ys,
            latencies=lats,
            objective_value=float(d["objective_value"]),
        )
    except KeyError as e:
        raise ConfigError(f"joint plan dict missing key {e}") from None


def save_joint_plan(plan: JointPlan, path: str) -> None:
    """Write a joint plan to a JSON file."""
    with open(path, "w") as fh:
        json.dump(joint_plan_to_dict(plan), fh, indent=2, sort_keys=True)


def load_joint_plan(path: str) -> JointPlan:
    """Read a joint plan from a JSON file."""
    with open(path) as fh:
        return joint_plan_from_dict(json.load(fh))


def experiment_result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Machine-readable form of an experiment result (tables + notes).

    ``extras`` are intentionally dropped: they hold arbitrary in-memory
    objects (arrays, profile tables) meant for tests, not archives.
    """
    return {
        "exp_id": result.exp_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(r) for r in result.rows],
        "notes": list(result.notes),
    }


def save_experiment_result(result: ExperimentResult, path: str) -> None:
    """Write an experiment result's tables to a JSON file."""
    with open(path, "w") as fh:
        json.dump(experiment_result_to_dict(result), fh, indent=2, default=str)
