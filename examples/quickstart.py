#!/usr/bin/env python
"""Quickstart: solve one heterogeneous-edge instance end to end.

Builds the ``smart_city`` scenario (camera streams on Raspberry-Pi-class
devices, one CPU + one GPU edge server), runs the joint model-surgery +
resource-allocation optimizer, prints the decisions it made, and then
*measures* the plan with the discrete-event simulator to confirm the
prediction.

Run:  python examples/quickstart.py
"""

from repro import JointOptimizer, SimulationConfig, build_scenario, simulate_plan


def main() -> None:
    # 1. An instance: cluster (devices + servers + links) and tasks
    #    (model, deadline, accuracy floor, request rate per task).
    cluster, tasks = build_scenario("smart_city", num_tasks=6, seed=0)
    print(f"cluster: {cluster.num_devices} end devices, {cluster.num_servers} servers")
    for t in tasks:
        print(
            f"  {t.name}: {t.model.name:<12s} on {t.device_name}, "
            f"deadline {t.deadline_s * 1e3:.0f} ms, accuracy >= {t.accuracy_floor:.2f}, "
            f"{t.arrival_rate:.0f} req/s"
        )

    # 2. Joint optimization: for every task simultaneously choose which early
    #    exits to keep (and their thresholds), where to cut the model between
    #    device and server, which server to use, and what share of that
    #    server's compute and of the access link the task gets.
    result = JointOptimizer(cluster).solve(tasks)
    print(f"\nsolved in {result.iterations} iterations (converged={result.converged})")
    print(result.plan.summary())
    print(f"objective (mean expected latency): {result.plan.objective_value * 1e3:.2f} ms")

    # 3. Validate by simulation: Poisson arrivals, per-request input
    #    difficulties, FIFO queues on every resource.
    report = simulate_plan(
        tasks, result.plan, cluster, SimulationConfig(horizon_s=30.0, warmup_s=3.0, seed=1)
    )
    print("\nsimulated:")
    print(report.summary())


if __name__ == "__main__":
    main()
