#!/usr/bin/env python
"""Camera analytics under a fading wireless backhaul: why re-optimization matters.

Pi-class cameras running heavyweight backbones offload over a backhaul whose
capacity collapses and recovers (weather, contention).  A plan solved once
for the nominal bandwidth keeps shipping activations into the fade and
stalls; re-solving at each bandwidth change (sub-second, per experiment E9)
retreats to earlier exits and local execution, then re-offloads on recovery.

Run:  python examples/dynamic_network_adaptation.py
"""

from repro import JointOptimizer, SimulationConfig, build_scenario, simulate_plan
from repro.analysis import format_table
from repro.core.candidates import build_candidates
from repro.network.link import Link
from repro.network.topology import StarTopology
from repro.units import mbps

#: Bandwidth profile (Mbps) over consecutive 8-second windows.
FADE_PROFILE = (40.0, 20.0, 3.0, 1.5, 20.0, 40.0)


def with_bandwidth(cluster, bw_bps):
    topo = cluster.topology
    links = {k: Link(bw_bps, rtt_s=l.rtt_s) for k, l in topo.links.items()}
    return cluster.with_topology(
        StarTopology(list(topo.device_names), list(topo.server_names), links)
    )


def main() -> None:
    cluster, tasks = build_scenario("smart_city", num_tasks=4, seed=1)
    cands = [build_candidates(t) for t in tasks]

    nominal = with_bandwidth(cluster, mbps(FADE_PROFILE[0]))
    static_plan = JointOptimizer(nominal).solve(tasks, candidates=cands).plan

    rows = []
    for w, bw in enumerate(FADE_PROFILE):
        window = with_bandwidth(cluster, mbps(bw))
        adaptive_plan = JointOptimizer(window).solve(tasks, candidates=cands).plan
        cfg = SimulationConfig(horizon_s=8.0, warmup_s=0.0, seed=10 + w)
        static_rep = simulate_plan(tasks, static_plan, window, cfg)
        adaptive_rep = simulate_plan(tasks, adaptive_plan, window, cfg)
        offloaded = sum(1 for s in adaptive_plan.assignment.values() if s is not None)
        rows.append(
            (
                w,
                bw,
                static_rep.mean_latency_s * 1e3,
                adaptive_rep.mean_latency_s * 1e3,
                static_rep.mean_latency_s / adaptive_rep.mean_latency_s,
                f"{offloaded}/{len(tasks)}",
            )
        )
    print(
        format_table(
            ["window", "bw_mbps", "static_ms", "adaptive_ms", "speedup", "adaptive_offloads"],
            rows,
            title="fading link: static plan vs per-window re-optimization (simulated)",
            float_fmt="{:.2f}",
        )
    )
    print(
        "\nTakeaway: in the deep fade the adaptive plan cuts what crosses the "
        "thin link\n(deeper cuts, earlier exits, rebalanced shares) and avoids "
        "the static plan's upload stall."
    )


if __name__ == "__main__":
    main()
