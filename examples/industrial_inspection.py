#!/usr/bin/env python
"""Industrial visual inspection: tight deadlines, hard inputs, strict accuracy.

Factory-floor defect detection inverts the smart-city tradeoffs: inputs are
*hard* (cluttered parts, fine-grained defects) so early exits rarely fire;
deadlines are tight (a conveyor does not wait); and the accuracy floor is a
hard business constraint.  This example shows how the optimizer's decisions
shift with the accuracy floor — from aggressive exits to deep execution with
carefully allocated server shares — and what each floor costs in deadline
compliance.

Run:  python examples/industrial_inspection.py
"""

import dataclasses

from repro import JointOptimizer, Objective, SimulationConfig, build_scenario, simulate_plan
from repro.analysis import format_table


def main() -> None:
    cluster, base_tasks = build_scenario("industrial", num_tasks=6, seed=2)
    print(
        "scenario: 6 inspection stations, deadlines "
        f"{sorted({t.deadline_s * 1e3 for t in base_tasks})} ms, hard input mix\n"
    )

    rows = []
    for floor in (0.55, 0.62, 0.68):
        tasks = [dataclasses.replace(t, accuracy_floor=floor) for t in base_tasks]
        result = JointOptimizer(cluster, objective=Objective.DEADLINE_MISS).solve(tasks)
        rep = simulate_plan(
            tasks, result.plan, cluster, SimulationConfig(horizon_s=20.0, warmup_s=2.0, seed=4)
        )
        # characterize the chosen surgery
        n_exits = [len(f.plan.kept_exits) - 1 for f in result.plan.features.values()]
        offloaded = sum(1 for s in result.plan.assignment.values() if s is not None)
        rows.append(
            (
                floor,
                rep.accuracy,
                rep.mean_latency_s * 1e3,
                rep.percentile_latency_s(99) * 1e3,
                (1 - rep.miss_rate) * 100,
                f"{sum(n_exits) / len(n_exits):.1f}",
                f"{offloaded}/{len(tasks)}",
            )
        )
    print(
        format_table(
            [
                "acc_floor",
                "measured_acc",
                "mean_ms",
                "p99_ms",
                "in_deadline_%",
                "avg_exits_kept",
                "offloaded",
            ],
            rows,
            title="accuracy floor vs deadline compliance (simulated)",
            float_fmt="{:.3f}",
        )
    )
    print(
        "\nTakeaway: raising the floor forces deeper execution; the optimizer "
        "compensates\nwith offloading and larger server shares, trading "
        "deadline slack for accuracy."
    )


if __name__ == "__main__":
    main()
