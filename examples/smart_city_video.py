#!/usr/bin/env python
"""Smart-city video analytics: scaling camera count on a fixed edge site.

The motivating workload of the paper family: a city deploys ever more
analytics cameras against a fixed pool of edge servers.  This example scales
the number of camera streams and compares the joint optimizer against the
strategies a practitioner would otherwise reach for, showing where each
collapses — and that surgery alone or allocation alone is not enough.

Run:  python examples/smart_city_video.py
"""

from repro import JointOptimizer, SimulationConfig, build_scenario, simulate_plan
from repro.analysis import format_table
from repro.baselines import AllocationOnly, EdgeOnly, Edgent
from repro.core.candidates import build_candidates


def main() -> None:
    rows = []
    for n_cameras in (4, 8, 16):
        cluster, tasks = build_scenario("smart_city", num_tasks=n_cameras, seed=3)
        cands = [build_candidates(t) for t in tasks]

        plans = {
            "joint": JointOptimizer(cluster).solve(tasks, candidates=cands).plan,
            "edgent (surgery only)": Edgent().solve(tasks, cluster, candidates=cands),
            "allocation only": AllocationOnly().solve(tasks, cluster, candidates=cands),
            "edge only": EdgeOnly().solve(tasks, cluster, candidates=cands),
        }
        for name, plan in plans.items():
            rep = simulate_plan(
                tasks, plan, cluster, SimulationConfig(horizon_s=20.0, warmup_s=2.0, seed=5)
            )
            rows.append(
                (
                    n_cameras,
                    name,
                    rep.mean_latency_s * 1e3,
                    rep.percentile_latency_s(99) * 1e3,
                    rep.miss_rate * 100,
                    rep.accuracy,
                )
            )
    print(
        format_table(
            ["cameras", "strategy", "mean_ms", "p99_ms", "deadline_miss_%", "accuracy"],
            rows,
            title="smart-city video analytics under increasing camera load (simulated)",
            float_fmt="{:.2f}",
        )
    )
    print(
        "\nTakeaway: surgery-only over-offloads and saturates the servers as "
        "cameras multiply;\nallocation-only wastes work running full-depth "
        "models; the joint plan does neither."
    )


if __name__ == "__main__":
    main()
