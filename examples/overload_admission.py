#!/usr/bin/env python
"""Operating an oversubscribed edge: admission control + online re-planning.

Two production concerns the one-shot optimizer doesn't cover:

1. **Overload** — more streams than the site can serve within deadlines.
   Admission control rejects the least valuable violating streams so the
   admitted ones keep their guarantees.
2. **Drift** — the environment changes after the plan is made.  The online
   controller watches bandwidth/load observations and re-solves only on
   material drift (with hysteresis against flapping).

Run:  python examples/overload_admission.py
"""

import dataclasses

from repro import SimulationConfig, admit_tasks, build_scenario, simulate_plan
from repro.analysis import format_table
from repro.core.candidates import build_candidates
from repro.core.online import ControllerConfig, EnvironmentSample, OnlineController
from repro.units import mbps


def admission_demo() -> None:
    print("=" * 72)
    print("Part 1: admission control under overload")
    print("=" * 72)
    rows = []
    for offered in (8, 16, 32):
        cluster, tasks = build_scenario("smart_city", num_tasks=offered, seed=0)
        tasks = [dataclasses.replace(t, deadline_s=t.deadline_s * 1.25) for t in tasks]
        cands = [build_candidates(t) for t in tasks]
        res = admit_tasks(tasks, cluster, candidates=cands)
        if res.plan is not None:
            rep = simulate_plan(
                res.admitted, res.plan, cluster,
                SimulationConfig(horizon_s=15.0, warmup_s=2.0, seed=1),
            )
            satisfied = (1 - rep.miss_rate) * 100
        else:
            satisfied = float("nan")
        rows.append(
            (offered, len(res.admitted), len(res.rejected), res.rounds, satisfied)
        )
    print(
        format_table(
            ["offered", "admitted", "rejected", "rounds", "admitted_satisfied_%"],
            rows,
            float_fmt="{:.1f}",
        )
    )
    print(
        "\nThe admitted subset keeps meeting deadlines while an un-gated "
        "system would\ndegrade everyone (compare experiment E4)."
    )


def online_demo() -> None:
    print()
    print("=" * 72)
    print("Part 2: online controller reacting to drift")
    print("=" * 72)
    cluster, tasks = build_scenario("smart_city", num_tasks=4, seed=0)
    controller = OnlineController(
        cluster,
        tasks,
        config=ControllerConfig(replan_threshold=0.3, min_replan_interval_s=2.0),
    )
    print(f"t=0s   initial plan, objective {controller.plan.objective_value * 1e3:.1f} ms")

    timeline = [
        (5.0, 44.0, "noise (+10%) — below threshold"),
        (10.0, 4.0, "deep fade (-90%) — re-plan"),
        (11.0, 2.0, "still fading — hysteresis holds"),
        (20.0, 40.0, "recovery — re-plan back"),
    ]
    for t, bw, label in timeline:
        fired = controller.observe(
            EnvironmentSample(
                time_s=t,
                bandwidth_bps={k: mbps(bw) for k in cluster.topology.links},
            )
        )
        action = "RE-PLANNED" if fired else "kept plan "
        print(
            f"t={t:<4.0f}s bw={bw:5.1f} Mbps  {action}  "
            f"objective {controller.plan.objective_value * 1e3:9.1f} ms   ({label})"
        )
    print(f"\ntotal re-plans: {controller.replan_count} (of {len(timeline)} observations)")


if __name__ == "__main__":
    admission_demo()
    online_demo()
