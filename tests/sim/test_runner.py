"""End-to-end simulation runner."""

import numpy as np
import pytest

from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.errors import ConfigError
from repro.network.wireless import BandwidthTrace
from repro.sim.runner import SimulationConfig, simulate_plan


@pytest.fixture(scope="module")
def solved(small_cluster, small_tasks, small_candidates):
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(horizon_s=0.0),
            dict(warmup_s=50.0, horizon_s=10.0),
            dict(arrival="bursty-ish"),
            dict(burst_factor=0.5),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            SimulationConfig(**kwargs)


class TestSimulatePlan:
    def test_conservation(self, small_cluster, small_tasks, solved):
        """Every generated request is either completed or warmup-discarded."""
        cfg = SimulationConfig(horizon_s=10.0, warmup_s=1.0, seed=1)
        rep = simulate_plan(small_tasks, solved, small_cluster, cfg)
        from repro.sim.sources import PoissonArrivals
        from repro.rng import derive

        expected = sum(
            len(PoissonArrivals(t.arrival_rate).generate(10.0, derive(1, "arrivals", t.name)))
            for t in small_tasks
        )
        assert rep.total_requests + rep.discarded_warmup == expected

    def test_latencies_positive(self, small_cluster, small_tasks, solved):
        rep = simulate_plan(
            small_tasks, solved, small_cluster, SimulationConfig(horizon_s=10.0, seed=2)
        )
        assert np.all(rep.latencies() > 0)

    def test_deterministic_given_seed(self, small_cluster, small_tasks, solved):
        cfg = SimulationConfig(horizon_s=8.0, seed=3)
        a = simulate_plan(small_tasks, solved, small_cluster, cfg)
        b = simulate_plan(small_tasks, solved, small_cluster, cfg)
        np.testing.assert_array_equal(a.latencies(), b.latencies())

    def test_mean_tracks_prediction(self, small_cluster, small_tasks, solved):
        """Measured mean within 40% of predicted expected latency."""
        rep = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(horizon_s=60.0, warmup_s=10.0, seed=4),
        )
        for t in small_tasks:
            measured = rep.per_task[t.name].mean_latency_s
            predicted = solved.latencies[t.name]
            assert measured == pytest.approx(predicted, rel=0.4)

    def test_deterministic_arrivals_mode(self, small_cluster, small_tasks, solved):
        rep = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(horizon_s=10.0, arrival="deterministic", seed=5),
        )
        assert rep.total_requests > 0

    def test_mmpp_arrivals_mode(self, small_cluster, small_tasks, solved):
        rep = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(horizon_s=10.0, arrival="mmpp", seed=6),
        )
        assert rep.total_requests > 0

    def test_bandwidth_trace_slows_offloads(self, small_cluster, small_tasks, solved):
        fast = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(horizon_s=15.0, seed=7),
        )
        slow_trace = BandwidthTrace(
            times=np.array([0.0]), values=np.array([small_cluster.link("dev0", "srv_cpu").bandwidth_bps / 20])
        )
        slow = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(horizon_s=15.0, seed=7, bandwidth_trace=slow_trace),
        )
        offloaded = any(s is not None for s in solved.assignment.values())
        if offloaded:
            assert slow.mean_latency_s > fast.mean_latency_s

    def test_unknown_task_in_plan_raises(self, small_cluster, small_tasks, solved, me_resnet18):
        from repro.core.plan import TaskSpec

        stranger = TaskSpec("ghost", me_resnet18, "dev0")
        with pytest.raises(ConfigError):
            simulate_plan([stranger], solved, small_cluster)

    def test_empty_tasks_raise(self, small_cluster, solved):
        with pytest.raises(ConfigError):
            simulate_plan([], solved, small_cluster)

    def test_utilizations_reported(self, small_cluster, small_tasks, solved):
        rep = simulate_plan(
            small_tasks, solved, small_cluster, SimulationConfig(horizon_s=10.0, seed=8)
        )
        assert any(k.startswith("dev:") for k in rep.utilizations)
        assert all(0.0 <= v <= 1.0 for v in rep.utilizations.values())
