"""Metrics collection and reports."""

import pytest

from repro.errors import SimulationError
from repro.sim.entities import RequestRecord
from repro.sim.metrics import MetricsCollector, SimulationReport


def rec(task="t0", rid=0, arrival=1.0, completion=1.1, deadline=1.2, correct=True):
    return RequestRecord(
        task_name=task,
        req_id=rid,
        arrival_s=arrival,
        completion_s=completion,
        deadline_s=deadline,
        exit_position=1,
        offloaded=True,
        correct=correct,
        dev_busy_s=0.02,
        srv_busy_s=0.03,
        net_busy_s=0.01,
    )


class TestRequestRecord:
    def test_latency(self):
        assert rec().latency_s == pytest.approx(0.1)

    def test_deadline_check(self):
        assert rec(completion=1.15).met_deadline
        assert not rec(completion=1.25).met_deadline

    def test_queueing_time(self):
        r = rec()
        assert r.queueing_s == pytest.approx(0.1 - 0.06)

    def test_queueing_clamped_nonnegative(self):
        r = rec(completion=1.01)
        assert r.queueing_s == 0.0


class TestCollector:
    def test_warmup_discard(self):
        c = MetricsCollector(warmup_s=2.0)
        c.record(rec(arrival=1.0, completion=1.1))
        c.record(rec(arrival=3.0, completion=3.1))
        assert len(c.records) == 1
        assert c.discarded == 1

    def test_time_travel_rejected(self):
        c = MetricsCollector()
        with pytest.raises(SimulationError):
            c.record(rec(arrival=2.0, completion=1.0))

    def test_negative_warmup_rejected(self):
        with pytest.raises(SimulationError):
            MetricsCollector(warmup_s=-1.0)


class TestReport:
    def make_report(self):
        records = [
            rec(rid=0, arrival=1.0, completion=1.1, correct=True),
            rec(rid=1, arrival=2.0, completion=2.3, correct=False),
            rec(task="t1", rid=0, arrival=1.0, completion=1.05, correct=True),
        ]
        return SimulationReport.from_records(records, horizon_s=10.0, utilizations={})

    def test_per_task_counts(self):
        r = self.make_report()
        assert r.per_task["t0"].count == 2
        assert r.per_task["t1"].count == 1

    def test_aggregate_mean(self):
        r = self.make_report()
        assert r.mean_latency_s == pytest.approx((0.1 + 0.3 + 0.05) / 3)

    def test_miss_rate(self):
        r = self.make_report()
        # t0#1 completes 0.1s after its deadline (2.0+0.2)
        assert r.miss_rate == pytest.approx(1 / 3)

    def test_accuracy(self):
        r = self.make_report()
        assert r.accuracy == pytest.approx(2 / 3)

    def test_percentiles_ordered(self):
        r = self.make_report()
        assert (
            r.percentile_latency_s(50)
            <= r.percentile_latency_s(95)
            <= r.percentile_latency_s(99)
        )

    def test_summary_renders(self):
        s = self.make_report().summary()
        assert "t0" in s and "t1" in s and "miss" in s
