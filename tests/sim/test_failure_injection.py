"""Failure injection: the simulator under pathological configurations.

The simulator must stay causally consistent (no negative latencies, no lost
requests, deterministic) even when the inputs are extreme — overload,
near-zero bandwidth, bursty arrivals, degenerate difficulty distributions.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.plan import TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.presets import SERVER_PRESETS, device_preset
from repro.models.exits import DifficultyDistribution
from repro.network.link import Link
from repro.network.wireless import BandwidthTrace
from repro.sim import SimulationConfig, simulate_plan
from repro.units import mbps
from repro.workloads.scenarios import multiexit_model


def solve_and_simulate(cluster, tasks, cfg):
    plan = JointOptimizer(
        cluster, config=JointSolverConfig(refine_thresholds=False)
    ).solve(tasks, candidates=None, seed=0).plan
    return simulate_plan(tasks, plan, cluster, cfg)


class TestOverloadRegime:
    def test_massive_overload_completes_all_requests(self, small_cluster, me_alexnet):
        tasks = [
            TaskSpec("hot", me_alexnet, "dev0", deadline_s=0.05, accuracy_floor=0.5,
                     arrival_rate=200.0)
        ]
        rep = solve_and_simulate(
            small_cluster, tasks, SimulationConfig(horizon_s=3.0, warmup_s=0.0, seed=1)
        )
        # every arrival completes (latency grows, nothing is lost or negative)
        assert rep.total_requests > 300
        assert np.all(rep.latencies() > 0)
        assert rep.miss_rate > 0.5  # and the overload is visible

    def test_latency_grows_with_horizon_when_unstable(self, small_cluster, me_alexnet):
        tasks = [
            TaskSpec("hot", me_alexnet, "dev0", deadline_s=0.05, accuracy_floor=0.5,
                     arrival_rate=200.0)
        ]
        plan = JointOptimizer(
            small_cluster, config=JointSolverConfig(refine_thresholds=False)
        ).solve(tasks, seed=0).plan
        short = simulate_plan(
            tasks, plan, small_cluster, SimulationConfig(horizon_s=2.0, warmup_s=0.0, seed=2)
        )
        long = simulate_plan(
            tasks, plan, small_cluster, SimulationConfig(horizon_s=8.0, warmup_s=0.0, seed=2)
        )
        assert long.mean_latency_s > short.mean_latency_s  # queue keeps building


class TestDegenerateNetwork:
    def test_near_zero_bandwidth(self, me_alexnet, pi4):
        server = dataclasses.replace(SERVER_PRESETS["edge_gpu"], name="srv")
        device = dataclasses.replace(pi4, name="dev0")
        cluster = EdgeCluster.star([device], [server], Link(mbps(0.05), rtt_s=0.2))
        tasks = [TaskSpec("t", me_alexnet, "dev0", deadline_s=5.0, accuracy_floor=0.5,
                          arrival_rate=0.5)]
        rep = solve_and_simulate(
            cluster, tasks, SimulationConfig(horizon_s=20.0, warmup_s=0.0, seed=3)
        )
        assert rep.total_requests > 0
        assert np.all(np.isfinite(rep.latencies()))

    def test_bandwidth_collapse_mid_run(self, small_cluster, small_tasks, small_candidates):
        plan = JointOptimizer(small_cluster).solve(
            small_tasks, candidates=small_candidates, seed=0
        ).plan
        base_bw = small_cluster.link("dev0", "srv_cpu").bandwidth_bps
        # full speed for 5 s, then a 99.9% collapse
        trace = BandwidthTrace(
            times=np.array([0.0, 5.0]), values=np.array([base_bw, base_bw / 1000])
        )
        rep = simulate_plan(
            small_tasks, plan, small_cluster,
            SimulationConfig(horizon_s=10.0, warmup_s=0.0, seed=4, bandwidth_trace=trace),
        )
        before = [r.latency_s for r in rep.records if r.arrival_s < 4.0 and r.offloaded]
        after = [r.latency_s for r in rep.records if r.arrival_s >= 5.0 and r.offloaded]
        if before and after:
            assert np.mean(after) > np.mean(before)


class TestDegenerateWorkloads:
    @pytest.mark.parametrize("alpha,beta", [(0.51, 20.0), (20.0, 0.51)])
    def test_extreme_difficulty_distributions(self, alpha, beta, pi4):
        model = dataclasses.replace  # noqa: F841 - keep import-style parallel
        me = multiexit_model("alexnet", 3, "mixed")
        # rebuild with an extreme difficulty mix
        from repro.models.multiexit import insert_exits
        from repro.models.zoo import build

        me = insert_exits(
            build("alexnet"), num_exits=3,
            difficulty=DifficultyDistribution(alpha=alpha, beta=beta),
        )
        server = dataclasses.replace(SERVER_PRESETS["edge_gpu"], name="srv")
        device = dataclasses.replace(pi4, name="dev0")
        cluster = EdgeCluster.star([device], [server], Link(mbps(40), rtt_s=0.01))
        tasks = [TaskSpec("t", me, "dev0", deadline_s=1.0, accuracy_floor=0.4,
                          arrival_rate=2.0)]
        rep = solve_and_simulate(
            cluster, tasks, SimulationConfig(horizon_s=15.0, warmup_s=0.0, seed=5)
        )
        assert rep.total_requests > 0
        assert 0.0 <= rep.accuracy <= 1.0

    def test_bursty_arrivals_tail_heavier_than_poisson(self, small_cluster, small_tasks, small_candidates):
        plan = JointOptimizer(small_cluster).solve(
            small_tasks, candidates=small_candidates, seed=0
        ).plan
        poisson = simulate_plan(
            small_tasks, plan, small_cluster,
            SimulationConfig(horizon_s=60.0, warmup_s=5.0, seed=6, arrival="poisson"),
        )
        bursty = simulate_plan(
            small_tasks, plan, small_cluster,
            SimulationConfig(horizon_s=60.0, warmup_s=5.0, seed=6, arrival="mmpp",
                             burst_factor=8.0),
        )
        assert bursty.percentile_latency_s(99) > poisson.percentile_latency_s(99) * 0.9

    def test_single_request_horizon(self, small_cluster, me_alexnet):
        tasks = [TaskSpec("t", me_alexnet, "dev0", deadline_s=1.0, accuracy_floor=0.5,
                          arrival_rate=0.5)]
        rep = solve_and_simulate(
            small_cluster, tasks, SimulationConfig(horizon_s=3.0, warmup_s=0.0, seed=7)
        )
        assert rep.total_requests >= 1
