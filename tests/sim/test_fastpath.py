"""The vectorized fast path must be bit-identical to the event loop."""

import numpy as np
import pytest

from repro.core.joint import JointOptimizer
from repro.core.candidates import build_candidates
from repro.core.plan import TaskSpec
from repro.network.wireless import BandwidthTrace
from repro.sim import runner as runner_mod
from repro.sim.runner import SimulationConfig, simulate_plan


@pytest.fixture(scope="module")
def solved(small_cluster, small_tasks, small_candidates):
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


def assert_reports_identical(a, b):
    assert len(a.records) == len(b.records)
    assert a.records == b.records  # dataclass equality: every field, every request
    assert a.utilizations == b.utilizations
    assert a.discarded_warmup == b.discarded_warmup
    assert a.counters == b.counters
    np.testing.assert_array_equal(a.latencies(), b.latencies())


class TestBitIdentity:
    @pytest.mark.parametrize("arrival", ["poisson", "deterministic", "mmpp"])
    def test_arrival_modes(self, small_cluster, small_tasks, solved, arrival):
        cfg = SimulationConfig(horizon_s=8.0, warmup_s=1.0, seed=11, arrival=arrival)
        fast = simulate_plan(small_tasks, solved, small_cluster, cfg)
        event = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(
                horizon_s=8.0, warmup_s=1.0, seed=11, arrival=arrival, fast_path=False
            ),
        )
        assert_reports_identical(fast, event)

    def test_bandwidth_trace(self, small_cluster, small_tasks, solved):
        trace = BandwidthTrace(
            times=np.array([0.0, 4.0]),
            values=np.array(
                [
                    small_cluster.link("dev0", "srv_cpu").bandwidth_bps / 10,
                    small_cluster.link("dev0", "srv_cpu").bandwidth_bps / 3,
                ]
            ),
        )
        kw = dict(horizon_s=8.0, warmup_s=1.0, seed=12, bandwidth_trace=trace)
        fast = simulate_plan(
            small_tasks, solved, small_cluster, SimulationConfig(**kw)
        )
        event = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(fast_path=False, **kw),
        )
        assert_reports_identical(fast, event)

    def test_shared_device_ties(self, small_cluster, me_resnet18, me_alexnet):
        """Deterministic arrivals on one shared device: maximal time ties.

        Both tasks run on ``dev0`` at the same rate, so every arrival
        instant is shared; the sweep's submission order must reproduce the
        event loop's (arrival time, schedule order) tie-break exactly.
        """
        tasks = [
            TaskSpec("s0", me_resnet18, "dev0", deadline_s=0.3, accuracy_floor=0.6,
                     arrival_rate=4.0),
            TaskSpec("s1", me_alexnet, "dev0", deadline_s=0.3, accuracy_floor=0.5,
                     arrival_rate=4.0),
        ]
        cands = [build_candidates(t) for t in tasks]
        plan = JointOptimizer(small_cluster).solve(tasks, candidates=cands, seed=0).plan
        kw = dict(horizon_s=6.0, warmup_s=0.5, seed=13, arrival="deterministic")
        fast = simulate_plan(tasks, plan, small_cluster, SimulationConfig(**kw))
        event = simulate_plan(
            tasks, plan, small_cluster, SimulationConfig(fast_path=False, **kw)
        )
        assert fast.total_requests > 0
        assert_reports_identical(fast, event)


class TestDispatch:
    def test_fast_path_engages_by_default(self, small_cluster, small_tasks, solved, monkeypatch):
        """Default runs never construct the event-loop simulator."""

        class Boom:
            def __init__(self):
                raise AssertionError("event loop constructed on the fast path")

        monkeypatch.setattr(runner_mod, "Simulator", Boom)
        rep = simulate_plan(
            small_tasks, solved, small_cluster, SimulationConfig(horizon_s=6.0, seed=14)
        )
        assert rep.total_requests > 0
        with pytest.raises(AssertionError):
            simulate_plan(
                small_tasks, solved, small_cluster,
                SimulationConfig(horizon_s=6.0, seed=14, fast_path=False),
            )

    def test_telemetry_forces_event_loop(self, small_cluster, small_tasks, solved, monkeypatch):
        """Telemetry runs must never take the sweep (gauges need events)."""

        def boom(*a, **k):
            raise AssertionError("fast path taken on a telemetry run")

        monkeypatch.setattr(runner_mod, "sweep_pipeline", boom)
        rep = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(horizon_s=6.0, seed=15, telemetry=True),
        )
        assert rep.timeline is not None
        assert rep.registry is not None

    def test_fast_path_counters_match_event_loop(self, small_cluster, small_tasks, solved):
        """The equivalent event count is what the loop actually executes."""
        cfg = SimulationConfig(horizon_s=8.0, seed=16)
        fast = simulate_plan(small_tasks, solved, small_cluster, cfg)
        event = simulate_plan(
            small_tasks, solved, small_cluster,
            SimulationConfig(horizon_s=8.0, seed=16, fast_path=False),
        )
        assert fast.counters.events == event.counters.events
        assert fast.counters.requests == event.counters.requests
        assert fast.counters.events > 0
