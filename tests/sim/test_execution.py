"""Per-request plan realization."""

import numpy as np
import pytest

from repro.core.plan import SurgeryPlan
from repro.core.surgery import evaluate_plan
from repro.sim.execution import realize_request, sample_exit

RNG = np.random.default_rng(0)


def plan_with_exits(model, cut=None):
    n = len(model.backbone.cut_points)
    return SurgeryPlan(
        kept_exits=(1, model.num_exits - 1),
        thresholds=(0.7, 0.0),
        partition_cut=n - 1 if cut is None else cut,
    )


class TestSampleExit:
    def test_easy_input_exits_early(self, me_resnet18):
        plan = plan_with_exits(me_resnet18)
        assert sample_exit(me_resnet18, plan, 0.0) == 0

    def test_hard_input_reaches_final(self, me_resnet18):
        plan = plan_with_exits(me_resnet18)
        assert sample_exit(me_resnet18, plan, 1.0) == len(plan.kept_exits) - 1

    def test_exit_monotone_in_difficulty(self, me_resnet18):
        plan = SurgeryPlan(
            kept_exits=(0, 1, 2, 3, 4),
            thresholds=(0.7, 0.7, 0.7, 0.7, 0.0),
            partition_cut=len(me_resnet18.backbone.cut_points) - 1,
        )
        exits = [sample_exit(me_resnet18, plan, d) for d in np.linspace(0, 1, 21)]
        assert exits == sorted(exits)


class TestRealizeRequest:
    def test_local_plan_never_offloads(self, me_resnet18):
        plan = plan_with_exits(me_resnet18)  # cut at sink
        for d in (0.1, 0.5, 0.9):
            dem = realize_request(me_resnet18, plan, d, RNG)
            assert not dem.offloaded
            assert dem.srv_flops == 0 and dem.up_bytes == 0

    def test_full_offload_ships_input(self, me_resnet18):
        plan = SurgeryPlan(
            kept_exits=(me_resnet18.num_exits - 1,), thresholds=(0.0,), partition_cut=0
        )
        dem = realize_request(me_resnet18, plan, 0.5, RNG)
        assert dem.offloaded
        assert dem.up_bytes == me_resnet18.input_bytes
        assert dem.down_bytes == me_resnet18.result_bytes
        assert dem.dev_flops == 0

    def test_exit_before_cut_stays_local(self, me_resnet18):
        # cut after exit 1's attach point: easy inputs exit locally
        attach = int(me_resnet18.exit_cut_indices[1])
        plan = SurgeryPlan(
            kept_exits=(1, me_resnet18.num_exits - 1),
            thresholds=(0.7, 0.0),
            partition_cut=attach,
        )
        easy = realize_request(me_resnet18, plan, 0.0, RNG)
        hard = realize_request(me_resnet18, plan, 1.0, RNG)
        assert not easy.offloaded
        assert hard.offloaded

    def test_expectation_matches_features(self, me_resnet18):
        """Averaging realized demands over sampled difficulties reproduces the
        plan's analytic PlanFeatures — the sim and optimizer agree on what a
        plan costs."""
        n = len(me_resnet18.backbone.cut_points)
        plan = SurgeryPlan(
            kept_exits=(1, 3, 4), thresholds=(0.8, 0.8, 0.0), partition_cut=n // 3
        )
        feats = evaluate_plan(me_resnet18, plan)
        rng = np.random.default_rng(42)
        ds = me_resnet18.difficulty.sample(rng, 20000)
        dev, srv, up, off = 0.0, 0.0, 0.0, 0
        for d in ds:
            dem = realize_request(me_resnet18, plan, float(d), rng)
            dev += dem.dev_flops
            srv += dem.srv_flops
            up += dem.up_bytes + dem.down_bytes
            off += dem.offloaded
        m = len(ds)
        assert dev / m == pytest.approx(feats.dev_flops, rel=0.03)
        assert srv / m == pytest.approx(feats.srv_flops, rel=0.05)
        assert up / m == pytest.approx(feats.wire_bytes, rel=0.05)
        assert off / m == pytest.approx(feats.p_offload, abs=0.02)

    def test_correctness_rate_matches_accuracy(self, me_resnet18):
        n = len(me_resnet18.backbone.cut_points)
        plan = SurgeryPlan(
            kept_exits=(1, 4), thresholds=(0.8, 0.0), partition_cut=n - 1
        )
        feats = evaluate_plan(me_resnet18, plan)
        rng = np.random.default_rng(7)
        ds = me_resnet18.difficulty.sample(rng, 20000)
        correct = sum(
            realize_request(me_resnet18, plan, float(d), rng).correct for d in ds
        )
        assert correct / len(ds) == pytest.approx(feats.accuracy, abs=0.02)
